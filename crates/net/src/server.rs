//! The BullFrog TCP server.
//!
//! [`Server::bind`] takes an [`Arc<Bullfrog>`] and a [`ServerConfig`],
//! binds a listener, and serves BFNET1 connections with a
//! **readiness-driven poller**: parked connections are registered with
//! a single poll thread (epoll via the vendored `polling` shim) and
//! consume no CPU while idle. A connection only claims a worker thread
//! from a bounded dynamic pool while it has bytes to process, so ten
//! thousand mostly-idle connections cost ten thousand sockets, not ten
//! thousand spinning peek loops.
//!
//! Each readiness event drains the socket into a per-connection buffer
//! and executes **every complete frame in order** before re-arming the
//! poller. That gives pipelining for free: a client may write N request
//! frames back-to-back and read N responses afterwards, and responses
//! always come back in request order — an error response occupies its
//! slot in the sequence rather than desynchronizing the stream. The
//! engine's locking model still drives each
//! [`Transaction`](bullfrog_txn::Transaction) from a single thread at a
//! time: a connection is processed by at most one worker at once (its
//! state sits behind a mutex), and oneshot poller interest means the
//! poll thread never queues a connection that a worker still owns.
//!
//! `max_connections` is enforced as backpressure at accept time: a
//! connection over the cap is told `server busy` (retryable) and
//! closed — never silently dropped. Accept errors back off
//! exponentially (1ms doubling to 1s) and a persistent run of them
//! stops the server instead of spinning forever; the count is reported
//! as `server.accept_errors` under `STATUS`.
//!
//! Shutdown — via [`Server::shutdown`], dropping the server, or a
//! client's `SHUTDOWN` opcode — is graceful: the listener stops
//! accepting, every session finishes the statement it is executing,
//! open transactions are aborted, worker threads drain, and the WAL is
//! synced. Committed writes are durable when `shutdown` returns;
//! uncommitted ones are gone, which is what a transaction means.
//!
//! If the database was configured with a
//! [`CheckpointPolicy`](bullfrog_engine::CheckpointPolicy), the server
//! also runs the background [`CheckpointScheduler`] for its lifetime
//! and reports its counters under `STATUS`.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use bullfrog_common::Result;
use bullfrog_core::{Bullfrog, ClientAccess, DurabilityStats};
use bullfrog_engine::CheckpointScheduler;
use bytes::Bytes;
use polling::{Event, Events, Poller};

use crate::cluster::{plan_flip, ClusterMember, ClusterReq};
use crate::session::{Session, SessionCounters};
use crate::wire::{self, err_code, Request, Response};

/// Granularity of the stop-flag poll in [`Server::wait_shutdown`] (one
/// sleep per server process, not per connection).
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Upper bound on one poller wait; the poll thread also runs the idle
/// sweep at this cadence, so it shrinks under small idle timeouts.
const POLL_WAIT_CAP: Duration = Duration::from_millis(500);

/// One nonblocking read's scratch size.
const READ_CHUNK: usize = 64 * 1024;

/// Per-connection receive buffer high-water mark: one maximum frame plus
/// header and a read chunk of pipelined follow-on bytes. Reaching it is
/// backpressure, not a violation — the worker stops draining, executes
/// the complete frames already buffered (freeing their bytes), then
/// resumes draining, so a fast pipeliner may legally stream any amount
/// in one burst. Sized so a buffer at the mark always holds at least
/// one complete legal frame, which is what guarantees each
/// drain/execute round makes progress.
const MAX_BUFFERED: usize = wire::MAX_FRAME_BYTES + 4 + READ_CHUNK;

/// How long an above-resident worker lingers idle before exiting.
const WORKER_LINGER: Duration = Duration::from_secs(2);

/// Extra workers beyond `max_connections` so pool bookkeeping never
/// deadlocks the last runnable connection behind parked ones.
const WORKER_SLACK: usize = 4;

/// Accept-error backoff bounds and the consecutive-failure budget after
/// which the server stops instead of spinning on a dead listener.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_secs(1);
const ACCEPT_MAX_CONSECUTIVE: u32 = 32;

/// A DDL action a primary records for its replicas. DDL is not
/// WAL-logged (recovery re-creates the catalog from the caller's
/// schema), so replication carries it out-of-band in a journal; the
/// payloads here are what the journal stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdlEvent {
    /// `CREATE TABLE ...` — the statement text, re-parsed on the replica.
    Create {
        /// Original statement text.
        sql: String,
    },
    /// Migration DDL (`CREATE TABLE ... AS SELECT ...`). `caps` are the
    /// primary's per-statement bitmap tracker dimensions
    /// (`(row_capacity, granule_size)`; `(0, 0)` for hash tracking): the
    /// replica must allocate identically-shaped trackers or the granule
    /// ordinals shipped in the log would not line up.
    Migrate {
        /// Original statement text.
        sql: String,
        /// Primary's tracker dimensions, per plan statement.
        caps: Vec<(u64, u64)>,
    },
    /// `FINALIZE MIGRATION [DROP OLD]` — the statement text.
    Finalize {
        /// Original statement text.
        sql: String,
    },
}

/// Primary-side replication callbacks. Implemented by
/// `bullfrog-repl`'s `ReplicationSender`; kept as a trait here so `net`
/// (which `repl` depends on) never depends back on `repl`.
pub trait ReplicationHooks: Send + Sync {
    /// Runs one DDL statement under the replication DDL-journal lock:
    /// `exec` performs the catalog change and returns the event to
    /// journal; the implementation samples the WAL frontier *before*
    /// calling it (the event's apply point) and appends the event only
    /// if `exec` succeeds. The lock serializes DDL, so journal order
    /// equals catalog-creation order and
    /// [`TableId`](bullfrog_common::TableId)s match on every replica.
    fn journaled_ddl(&self, exec: &mut dyn FnMut() -> Result<DdlEvent>) -> Result<()>;

    /// Encodes a bootstrap snapshot (checkpoint image + DDL journal).
    fn snapshot(&self) -> Result<Bytes>;

    /// Takes over `stream` as a replication subscription: validates
    /// `from_lsn`/`ddl_seq`, answers `OK` or `ERR SNAPSHOT_REQUIRED`
    /// itself, then streams `FRAMES` until the replica disconnects or
    /// `stop()` turns true.
    fn subscribe(
        &self,
        stream: TcpStream,
        from_lsn: u64,
        ddl_seq: u64,
        epoch: u64,
        stop: &dyn Fn() -> bool,
    ) -> std::io::Result<()>;

    /// `repl.*` counters for `STATUS`.
    fn status(&self) -> Vec<(String, i64)>;
}

/// High-availability callbacks. Implemented by `bullfrog-ha`'s member
/// state machine; kept as a trait here so `net` never depends on `ha`.
pub trait HaHooks: Send + Sync {
    /// Answers one `HA` protocol request (lease renew, vote request,
    /// operator promote, state probe) with an `HA_STATE` response.
    fn handle(&self, req: &wire::HaReq) -> Response;

    /// When `Some`, this node must not accept writes or DDL (it is a
    /// fenced ex-leader or a non-leader member); the string names the
    /// current leader for the client's redirect hint.
    fn write_block(&self) -> Option<String>;

    /// `ha.*` counters for `STATUS`.
    fn status(&self) -> Vec<(String, i64)>;
}

/// Marks a server as a read-only replica: sessions accept `SELECT`
/// (and `STATUS`/`CHECKPOINT` plumbing) but reject writes and DDL with
/// a retryable [`err_code::READ_ONLY`] error naming the primary.
#[derive(Clone)]
pub struct ReadOnly {
    /// Primary address, quoted in rejection messages so clients can
    /// redirect.
    pub primary: String,
    /// The replica's apply gate: the log applier holds the write half
    /// around each transaction batch, read sessions hold the read half
    /// per statement — readers never observe a half-applied transaction.
    pub gate: Arc<parking_lot::RwLock<()>>,
    /// Replica-side `repl.*` counters for `STATUS`.
    pub status: Option<StatusFn>,
    /// Flipped to `true` by `Replica::promote()`: existing and new
    /// sessions start accepting writes without a server restart.
    pub writable: Arc<AtomicBool>,
}

/// A pluggable `STATUS` counter source (replica-side `repl.*` pairs).
pub type StatusFn = Arc<dyn Fn() -> Vec<(String, i64)> + Send + Sync>;

impl std::fmt::Debug for ReadOnly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadOnly")
            .field("primary", &self.primary)
            .finish_non_exhaustive()
    }
}

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Concurrent session cap; further connections get a retryable
    /// `server busy` error. Also bounds the worker pool: at most
    /// `max_connections + 4` threads exist even if every connection is
    /// runnable at once.
    pub max_connections: usize,
    /// Close a connection after this long with no complete request.
    pub idle_timeout: Duration,
    /// Abort (never commit) a statement that ran longer than this.
    pub statement_timeout: Duration,
    /// Worker threads kept alive while idle; the pool grows on demand
    /// above this and shrinks back after a couple of idle seconds.
    pub resident_workers: usize,
    /// Primary-side replication: serve `SUBSCRIBE`/`SNAPSHOT` and
    /// journal DDL through these hooks.
    pub replication: Option<Arc<dyn ReplicationHooks>>,
    /// Replica-side read-only mode.
    pub read_only: Option<ReadOnly>,
    /// Shared-nothing cluster membership: serve the `CLUSTER` opcodes
    /// and enforce shard ownership / flip windows on every session.
    pub cluster: Option<Arc<ClusterMember>>,
    /// High-availability membership: serve the `HA` opcode and gate
    /// writes on leadership.
    pub ha: Option<Arc<dyn HaHooks>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            statement_timeout: Duration::from_secs(10),
            resident_workers: 4,
            replication: None,
            read_only: None,
            cluster: None,
            ha: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("max_connections", &self.max_connections)
            .field("idle_timeout", &self.idle_timeout)
            .field("statement_timeout", &self.statement_timeout)
            .field("resident_workers", &self.resident_workers)
            .field("replication", &self.replication.is_some())
            .field("read_only", &self.read_only)
            .field("cluster", &self.cluster.is_some())
            .field("ha", &self.ha.is_some())
            .finish()
    }
}

/// One parked connection: the socket, its session, and the bytes read
/// so far. At most one worker processes a connection at a time (the
/// state mutex); the poll thread and the idle sweep only touch the
/// atomics and `last_activity`.
struct Conn {
    id: usize,
    stream: TcpStream,
    state: Mutex<ConnState>,
    last_activity: Mutex<Instant>,
    /// Set exactly once by whoever closes the connection; guards the
    /// active-slot release against double decrements.
    closed: AtomicBool,
}

struct ConnState {
    session: Session,
    buf: Vec<u8>,
    preamble_ok: bool,
}

/// Dynamic worker pool bookkeeping: the ready queue plus idle/total
/// thread counts. Workers above `resident_workers` exit after
/// [`WORKER_LINGER`] without work.
#[derive(Default)]
struct PoolState {
    queue: VecDeque<usize>,
    idle: usize,
    total: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// State shared between the accept thread, poll thread, workers, and
/// handles. Counters and histograms are handles into the database's
/// [`bullfrog_obs::Registry`], resolved once at bind time so the per
/// frame hot path never takes the registry lock.
struct Shared {
    bf: Arc<Bullfrog>,
    obs: Arc<bullfrog_obs::Registry>,
    config: ServerConfig,
    local_addr: SocketAddr,
    stop: AtomicBool,
    active: AtomicUsize,
    accepted: Arc<bullfrog_obs::Counter>,
    rejected: Arc<bullfrog_obs::Counter>,
    accept_errors: Arc<bullfrog_obs::Counter>,
    counters: Arc<SessionCounters>,
    /// Statement latency by opcode: the first frame of a processing
    /// pass records into `QUERY`/`EXECUTE`/admin; follow-on frames of
    /// the same pass (a pipelined burst) record into `pipelined` —
    /// their wall clock includes queueing behind earlier frames, which
    /// would poison the per-opcode distributions. Counts still sum to
    /// `sessions.statements`.
    hist_query: Arc<bullfrog_obs::Histogram>,
    hist_execute: Arc<bullfrog_obs::Histogram>,
    hist_pipelined: Arc<bullfrog_obs::Histogram>,
    hist_admin: Arc<bullfrog_obs::Histogram>,
    hist_cluster_prepare: Arc<bullfrog_obs::Histogram>,
    hist_cluster_commit: Arc<bullfrog_obs::Histogram>,
    hist_cluster_exchange: Arc<bullfrog_obs::Histogram>,
    /// Registry-clock µs when the last cluster flip committed; the
    /// exchange phase spans from here to `END_EXCHANGE` (0 = no flip
    /// mid-exchange).
    exchange_start_us: AtomicU64,
    /// Interned `wal.shard{i}.*` STATUS keys, one triple per WAL shard,
    /// so [`status_pairs`] never allocates key strings per request.
    wal_shard_keys: Vec<[&'static str; 3]>,
    scheduler: Mutex<Option<CheckpointScheduler>>,
    poller: Poller,
    conns: Mutex<HashMap<usize, Arc<Conn>>>,
    pool: Pool,
    next_conn_id: AtomicUsize,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Requests shutdown and wakes every sleeping thread: the poll
    /// thread via the poller notifier, workers via the condvar, and the
    /// blocking accept thread via a throwaway self-connection.
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.poller.notify();
        self.pool.cv.notify_all();
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
    }
}

/// A running server. Dropping it shuts it down gracefully.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    poll_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `bf`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        bf: Arc<Bullfrog>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let scheduler = CheckpointScheduler::from_config(bf.db());
        let obs = Arc::clone(bf.db().obs());
        let wal_shard_keys = (0..DurabilityStats::capture(bf.db()).shards.len())
            .map(|i| {
                [
                    obs.intern(&format!("wal.shard{i}.flushes")),
                    obs.intern(&format!("wal.shard{i}.flushed_batches")),
                    obs.intern(&format!("wal.shard{i}.flushed_bytes")),
                ]
            })
            .collect();
        let shared = Arc::new(Shared {
            bf,
            config,
            local_addr,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: obs.counter("server.accepted"),
            rejected: obs.counter("server.rejected"),
            accept_errors: obs.counter("server.accept_errors"),
            counters: Arc::new(SessionCounters::new(&obs)),
            hist_query: obs.histogram("net.query_us"),
            hist_execute: obs.histogram("net.execute_us"),
            hist_pipelined: obs.histogram("net.pipelined_us"),
            hist_admin: obs.histogram("net.admin_us"),
            hist_cluster_prepare: obs.histogram("cluster.prepare_us"),
            hist_cluster_commit: obs.histogram("cluster.commit_us"),
            hist_cluster_exchange: obs.histogram("cluster.exchange_us"),
            exchange_start_us: AtomicU64::new(0),
            wal_shard_keys,
            obs,
            scheduler: Mutex::new(scheduler),
            poller: Poller::new()?,
            conns: Mutex::new(HashMap::new()),
            pool: Pool {
                state: Mutex::new(PoolState::default()),
                cv: Condvar::new(),
            },
            next_conn_id: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("bf-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        let poll_shared = Arc::clone(&shared);
        let poll_thread = std::thread::Builder::new()
            .name("bf-net-poll".into())
            .spawn(move || poll_loop(poll_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            poll_thread: Some(poll_thread),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Sessions currently connected.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// True once shutdown has been requested (locally or via the
    /// `SHUTDOWN` opcode).
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping()
    }

    /// The shared per-session counters.
    pub fn session_counters(&self) -> Arc<SessionCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// Blocks until shutdown is requested (e.g. by a remote `SHUTDOWN`),
    /// then drains. For server main loops.
    pub fn wait_shutdown(&mut self) {
        while !self.is_stopping() {
            std::thread::sleep(POLL_SLICE);
        }
        self.shutdown();
    }

    /// Gracefully shuts down: stop accepting, drain in-flight work,
    /// close parked connections (aborting their open transactions),
    /// stop the checkpoint scheduler, and sync the WAL so every
    /// committed write is on disk. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.request_stop();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.poll_thread.take() {
            let _ = t.join();
        }
        // Close every parked connection. Taking the state lock waits
        // for any worker mid-statement on that connection, so sessions
        // finish the statement they are executing before the abort.
        let parked: Vec<Arc<Conn>> = self
            .shared
            .conns
            .lock()
            .unwrap()
            .values()
            .cloned()
            .collect();
        for conn in parked {
            let mut st = conn.state.lock().unwrap();
            close_conn(&conn, &mut st, &self.shared);
        }
        // Drain the worker pool; stopped workers decrement `total`.
        loop {
            if self.shared.pool.state.lock().unwrap().total == 0 {
                break;
            }
            self.shared.pool.cv.notify_all();
            std::thread::sleep(Duration::from_millis(2));
        }
        // Replication subscriptions hold active slots outside the
        // registry; their stop() closures read the flag and exit.
        while self.shared.active.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        if let Some(mut s) = self.shared.scheduler.lock().unwrap().take() {
            s.stop();
        }
        self.shared.bf.db().wal().sync();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// True for accept errors that say nothing about the listener's health:
/// the peer gave up or the kernel hiccuped, and the very next accept
/// can succeed. These neither count toward the failure budget nor
/// back off.
fn transient_accept_error(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::TimedOut
    )
}

/// Blocking accept loop. Serious errors (EMFILE, ENOMEM, a dead
/// listener) back off exponentially instead of retrying at a fixed
/// beat, and a long unbroken run of them stops the server: better a
/// clean shutdown operators can see than a silent accept-nothing spin.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut backoff = ACCEPT_BACKOFF_START;
    let mut consecutive = 0u32;
    loop {
        if shared.stopping() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_START;
                consecutive = 0;
                if shared.stopping() {
                    // The shutdown wake-up connection (or a client that
                    // raced it); either way we are no longer serving.
                    return;
                }
                shared.accepted.inc();
                admit(stream, &shared);
            }
            Err(e) if transient_accept_error(e.kind()) => continue,
            Err(_) => {
                shared.accept_errors.inc();
                consecutive += 1;
                if consecutive >= ACCEPT_MAX_CONSECUTIVE {
                    shared.request_stop();
                    return;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_CAP);
            }
        }
    }
}

/// Admits one accepted connection: claim an active slot (or answer
/// `server busy`), build its session, and park it with the poller.
fn admit(mut stream: TcpStream, shared: &Arc<Shared>) {
    // Claim a slot before registering so the cap is enforced at accept
    // time, not after poller state already exists.
    let prev = shared.active.fetch_add(1, Ordering::AcqRel);
    if prev >= shared.config.max_connections {
        shared.active.fetch_sub(1, Ordering::AcqRel);
        shared.rejected.inc();
        let busy = Response::Err {
            retryable: true,
            code: err_code::BUSY,
            message: format!(
                "server busy: {} connections (max {})",
                prev, shared.config.max_connections
            ),
        };
        let _ = wire::write_frame(&mut stream, &busy.encode());
        return;
    }
    stream.set_nodelay(true).ok();
    // Response writes happen in blocking mode; bound them so a client
    // that stops reading cannot pin a worker forever.
    stream.set_write_timeout(Some(Duration::from_secs(5))).ok();
    if stream.set_nonblocking(true).is_err() {
        shared.active.fetch_sub(1, Ordering::AcqRel);
        return;
    }
    let mut session = Session::new(
        Arc::clone(&shared.bf),
        Arc::clone(&shared.counters),
        shared.config.statement_timeout,
    );
    if let Some(hooks) = &shared.config.replication {
        session = session.with_ddl_hooks(Arc::clone(hooks));
    }
    if let Some(ro) = &shared.config.read_only {
        session = session.with_read_only(ro.clone());
    }
    if let Some(member) = &shared.config.cluster {
        session = session.with_cluster(Arc::clone(member));
    }
    if let Some(ha) = &shared.config.ha {
        session = session.with_ha(Arc::clone(ha));
    }
    let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    let conn = Arc::new(Conn {
        id,
        stream,
        state: Mutex::new(ConnState {
            session,
            buf: Vec::new(),
            preamble_ok: false,
        }),
        last_activity: Mutex::new(Instant::now()),
        closed: AtomicBool::new(false),
    });
    shared.conns.lock().unwrap().insert(id, Arc::clone(&conn));
    if shared
        .poller
        .add(&conn.stream, Event::readable(id))
        .is_err()
    {
        shared.conns.lock().unwrap().remove(&id);
        shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The poll thread: waits for readiness, hands ready connections to the
/// worker pool, and sweeps idle connections. Oneshot poller interest
/// guarantees a connection is never queued twice concurrently.
fn poll_loop(shared: Arc<Shared>) {
    let wait = (shared.config.idle_timeout / 4)
        .max(Duration::from_millis(10))
        .min(POLL_WAIT_CAP);
    let mut events = Events::new();
    let mut last_sweep = Instant::now();
    while !shared.stopping() {
        events.clear();
        if shared.poller.wait(&mut events, Some(wait)).is_err() {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        for ev in events.iter() {
            if let Some(conn) = shared.conns.lock().unwrap().get(&ev.key) {
                *conn.last_activity.lock().unwrap() = Instant::now();
            }
            enqueue(&shared, ev.key);
        }
        // Sweeping walks the whole registry, so a busy poll loop over a
        // large parked herd must not pay that O(connections) on every
        // wakeup; `wait` is the sweep's precision anyway.
        if last_sweep.elapsed() >= wait {
            sweep_idle(&shared);
            last_sweep = Instant::now();
        }
    }
}

/// Closes connections that have gone `idle_timeout` without activity.
/// `try_lock` skips connections a worker currently owns — those are by
/// definition not idle.
fn sweep_idle(shared: &Arc<Shared>) {
    let now = Instant::now();
    let parked: Vec<Arc<Conn>> = shared.conns.lock().unwrap().values().cloned().collect();
    for conn in parked {
        let idle = now.duration_since(*conn.last_activity.lock().unwrap());
        if idle < shared.config.idle_timeout {
            continue;
        }
        if let Ok(mut st) = conn.state.try_lock() {
            close_conn(&conn, &mut st, shared);
        }
    }
}

/// Queues a ready connection for a worker, growing the pool when every
/// worker is busy and the cap (`max_connections + slack`) allows. The
/// growth matters for liveness, not just latency: under 2PL a parked
/// session can hold locks a runnable one needs, so the pool must be
/// able to run every admitted connection at once in the worst case.
fn enqueue(shared: &Arc<Shared>, id: usize) {
    let cap = shared.config.max_connections + WORKER_SLACK;
    let mut pool = shared.pool.state.lock().unwrap();
    pool.queue.push_back(id);
    if pool.idle == 0 && pool.total < cap {
        pool.total += 1;
        drop(pool);
        let worker_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("bf-net-worker".into())
            .spawn(move || worker_loop(worker_shared));
        if spawned.is_err() {
            shared.pool.state.lock().unwrap().total -= 1;
        }
    } else {
        shared.pool.cv.notify_one();
    }
}

/// One pool worker: pop a ready connection, process it, repeat. Workers
/// above the resident count exit after lingering idle; resident ones
/// stay for the server's lifetime.
fn worker_loop(shared: Arc<Shared>) {
    let mut pool = shared.pool.state.lock().unwrap();
    loop {
        if let Some(id) = pool.queue.pop_front() {
            drop(pool);
            let conn = shared.conns.lock().unwrap().get(&id).cloned();
            if let Some(conn) = conn {
                process_conn(&conn, &shared);
            }
            pool = shared.pool.state.lock().unwrap();
            continue;
        }
        if shared.stopping() {
            pool.total -= 1;
            return;
        }
        pool.idle += 1;
        let (guard, timeout) = shared.pool.cv.wait_timeout(pool, WORKER_LINGER).unwrap();
        pool = guard;
        pool.idle -= 1;
        if timeout.timed_out()
            && pool.queue.is_empty()
            && pool.total > shared.config.resident_workers
        {
            pool.total -= 1;
            return;
        }
    }
}

/// Closes a connection exactly once: abort its open transaction, drop
/// the poller registration, remove it from the registry, and release
/// the active slot. Callers hold the state lock, which serializes the
/// close against any worker mid-statement.
fn close_conn(conn: &Conn, st: &mut MutexGuard<'_, ConnState>, shared: &Shared) {
    if conn.closed.swap(true, Ordering::AcqRel) {
        return;
    }
    st.session.abort_open();
    let _ = shared.poller.delete(&conn.stream);
    shared.conns.lock().unwrap().remove(&conn.id);
    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
    shared.active.fetch_sub(1, Ordering::AcqRel);
}

/// Re-arms oneshot poller interest after a processing pass. Interest is
/// level-triggered, so bytes that arrived while the worker held the
/// connection surface as an immediate new event.
fn rearm(conn: &Conn, st: &mut MutexGuard<'_, ConnState>, shared: &Shared) {
    if shared
        .poller
        .modify(&conn.stream, Event::readable(conn.id))
        .is_err()
    {
        close_conn(conn, st, shared);
    }
}

/// Writes one response in blocking mode, restoring nonblocking mode for
/// the poller afterwards. Large `ROWS` results are chunked across
/// frames by [`wire::write_response`].
fn respond(conn: &Conn, response: &Response) -> std::io::Result<()> {
    conn.stream.set_nonblocking(false)?;
    let wrote = wire::write_response(&mut &conn.stream, response);
    let restored = conn.stream.set_nonblocking(true);
    wrote?;
    restored
}

/// Responses coalesced past this size flush mid-batch, bounding the
/// worker's buffer while a long pipeline drains.
const RESPOND_COALESCE_MAX: usize = 256 << 10;

/// Row counts at or above this stream straight to the socket instead of
/// through the coalescing buffer — a large scan is already one frame
/// sequence, and buffering it would double its memory.
const STREAM_ROWS_THRESHOLD: usize = 256;

/// Flushes coalesced response bytes in blocking mode, restoring
/// nonblocking mode for the poller afterwards. One write (and one
/// blocking-mode toggle) per batch of pipelined responses is a large
/// part of what pipelining buys server-side.
fn flush_out(conn: &Conn, out: &mut Vec<u8>) -> std::io::Result<()> {
    if out.is_empty() {
        return Ok(());
    }
    conn.stream.set_nonblocking(false)?;
    let wrote = (&conn.stream).write_all(out);
    let restored = conn.stream.set_nonblocking(true);
    out.clear();
    wrote?;
    restored
}

/// Extracts the next complete frame from the receive buffer, or `None`
/// if more bytes are needed. `Err` means the peer announced a frame
/// over the cap — a protocol violation that closes the connection.
fn take_frame(buf: &mut Vec<u8>) -> std::result::Result<Option<Bytes>, ()> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > wire::MAX_FRAME_BYTES {
        return Err(());
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let payload = Bytes::copy_from_slice(&buf[4..4 + len]);
    buf.drain(..4 + len);
    Ok(Some(payload))
}

/// One processing pass over a ready connection: drain the socket,
/// validate the preamble, then execute every complete frame **in
/// order**, emitting responses in that same order (coalesced into
/// batched writes). That ordering is the pipelining contract: N
/// requests written back-to-back produce N responses in the same
/// order, and a failed statement produces an `ERR` in its slot without
/// desynchronizing the stream.
///
/// Draining and executing alternate: once the receive buffer reaches
/// [`MAX_BUFFERED`], buffered frames are executed (freeing their
/// bytes) before draining resumes, so a burst of any size is absorbed
/// with bounded memory. The only framing offense that closes the
/// connection is a single frame announcing more than
/// [`wire::MAX_FRAME_BYTES`]. EOF means "no more requests", not abort:
/// frames already buffered still execute and their responses still
/// flush before the connection closes.
fn process_conn(conn: &Arc<Conn>, shared: &Arc<Shared>) {
    if conn.closed.load(Ordering::Acquire) {
        return;
    }
    let mut st = conn.state.lock().unwrap();
    if conn.closed.load(Ordering::Acquire) {
        return;
    }

    let mut chunk = [0u8; READ_CHUNK];
    // Responses coalesce here across drain/execute rounds and flush in
    // batched blocking writes — the pipelining contract only requires
    // *order*, not a write per statement.
    let mut out: Vec<u8> = Vec::new();
    let (mut dry, mut eof);
    loop {
        // Drain phase: pull bytes until the socket is dry, the peer is
        // done writing, or the buffer holds a full burst's worth;
        // nonblocking reads never stall the worker.
        dry = false;
        eof = false;
        while st.buf.len() < MAX_BUFFERED {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => st.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    dry = true;
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    let _ = flush_out(conn, &mut out);
                    return close_conn(conn, &mut st, shared);
                }
            }
        }
        *conn.last_activity.lock().unwrap() = Instant::now();

        // Preamble first: reject strangers before touching the database.
        if !st.preamble_ok {
            if st.buf.len() < wire::PREAMBLE.len() {
                if eof {
                    return close_conn(conn, &mut st, shared);
                }
                return rearm(conn, &mut st, shared);
            }
            if st.buf[..wire::PREAMBLE.len()] != wire::PREAMBLE {
                return close_conn(conn, &mut st, shared);
            }
            st.buf.drain(..wire::PREAMBLE.len());
            st.preamble_ok = true;
        }

        if !execute_buffered(conn, shared, &mut st, &mut out) {
            return;
        }

        if eof {
            // The peer shut down its write side after pipelining: no
            // more requests will come, but every response already owed
            // goes out before the connection closes.
            let _ = flush_out(conn, &mut out);
            return close_conn(conn, &mut st, shared);
        }
        if dry {
            break;
        }
        // Neither dry nor EOF: the buffer hit its high-water mark with
        // the socket still readable. Executing just freed at least one
        // frame's bytes, so the next drain round makes progress.
    }
    if flush_out(conn, &mut out).is_err() {
        return close_conn(conn, &mut st, shared);
    }
    *conn.last_activity.lock().unwrap() = Instant::now();
    rearm(conn, &mut st, shared);
}

/// Execute phase of [`process_conn`]: runs every complete buffered
/// frame in order, coalescing responses into `out`. Returns `false` if
/// the connection was closed or handed off (the caller must return
/// without touching it again), `true` if the pass completed and the
/// connection is still owned by the caller.
fn execute_buffered(
    conn: &Arc<Conn>,
    shared: &Arc<Shared>,
    st: &mut MutexGuard<'_, ConnState>,
    out: &mut Vec<u8>,
) -> bool {
    // Frames executed after the first in this pass arrived pipelined;
    // their latency goes to `net.pipelined_us` (see `Shared`).
    let mut nth_frame = 0usize;
    loop {
        // A shutdown requested elsewhere stops this connection between
        // frames; the statement that was already running has finished.
        if shared.stopping() {
            let _ = flush_out(conn, out);
            close_conn(conn, st, shared);
            return false;
        }
        let payload = match take_frame(&mut st.buf) {
            Ok(Some(p)) => p,
            Ok(None) => break,
            Err(()) => {
                let _ = flush_out(conn, out);
                close_conn(conn, st, shared);
                return false;
            }
        };
        nth_frame += 1;
        let frame_started = Instant::now();
        let response = match Request::decode(payload) {
            Err(e) => Response::from_error(&e),
            Ok(Request::Query(sql)) => {
                let r = st.session.execute(&sql);
                record_stmt(shared, &shared.hist_query, nth_frame, frame_started);
                r
            }
            Ok(Request::Prepare { id, sql }) => {
                let r = st.session.prepare(id, &sql);
                record_stmt(shared, &shared.hist_admin, nth_frame, frame_started);
                r
            }
            Ok(Request::Execute { id, params }) => {
                let r = st.session.execute_prepared(id, &params);
                record_stmt(shared, &shared.hist_execute, nth_frame, frame_started);
                r
            }
            Ok(Request::CloseStmt { id }) => {
                let r = st.session.close_stmt(id);
                record_stmt(shared, &shared.hist_admin, nth_frame, frame_started);
                r
            }
            Ok(Request::Checkpoint) => match shared.bf.db().checkpoint() {
                Ok(stats) => Response::Ok {
                    affected: stats.absorbed_records as u64,
                },
                Err(e) => Response::from_error(&e),
            },
            Ok(Request::Status) => {
                // STATUS encodes straight into the output buffer from
                // interned keys — the common poll opcode allocates no
                // key strings and builds no `Response`.
                let payload = wire::encode_stats(&status_pairs(shared));
                out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                out.extend_from_slice(&payload);
                if out.len() >= RESPOND_COALESCE_MAX && flush_out(conn, out).is_err() {
                    close_conn(conn, st, shared);
                    return false;
                }
                continue;
            }
            Ok(Request::Metrics) => Response::Metrics(metrics_snapshot(shared)),
            Ok(Request::Shutdown) => {
                let _ = wire::write_response(out, &Response::Ok { affected: 0 });
                let _ = flush_out(conn, out);
                close_conn(conn, st, shared);
                shared.request_stop();
                return false;
            }
            Ok(Request::Subscribe {
                from_lsn,
                ddl_seq,
                epoch,
            }) => match &shared.config.replication {
                Some(hooks) => {
                    // Hand the socket to the replication sender; it owns
                    // framing from here until the replica disconnects or
                    // the server stops. The active slot stays claimed,
                    // so shutdown drains subscriptions like any session.
                    // Responses owed for earlier pipelined frames go out
                    // first, before the sender takes over framing.
                    if flush_out(conn, out).is_err() {
                        close_conn(conn, st, shared);
                        return false;
                    }
                    subscribe_handoff(conn, st, shared, hooks, from_lsn, ddl_seq, epoch);
                    return false;
                }
                None => Response::Err {
                    retryable: false,
                    code: err_code::GENERAL,
                    message: "replication is not enabled on this server".into(),
                },
            },
            Ok(Request::Snapshot) => match &shared.config.replication {
                Some(hooks) => match hooks.snapshot() {
                    Ok(payload) => Response::Snapshot { payload },
                    Err(e) => Response::from_error(&e),
                },
                None => Response::Err {
                    retryable: false,
                    code: err_code::GENERAL,
                    message: "replication is not enabled on this server".into(),
                },
            },
            Ok(Request::ReplAck { .. }) => Response::Err {
                retryable: false,
                code: err_code::GENERAL,
                message: "REPL_ACK is only valid on a subscribed connection".into(),
            },
            Ok(Request::Cluster(op)) => match &shared.config.cluster {
                Some(member) => {
                    if !matches!(op, ClusterReq::GetMap) {
                        st.session.set_cluster_admin();
                    }
                    handle_cluster(op, member, shared, &mut st.session)
                }
                None => Response::Err {
                    retryable: false,
                    code: err_code::GENERAL,
                    message: "clustering is not enabled on this server".into(),
                },
            },
            Ok(Request::Ha(req)) => match &shared.config.ha {
                Some(hooks) => hooks.handle(&req),
                None => Response::Err {
                    retryable: false,
                    code: err_code::GENERAL,
                    message: "high availability is not enabled on this server".into(),
                },
            },
        };
        // Large scans stream straight to the socket (they are their own
        // frame sequence and would only bloat the buffer); everything
        // else coalesces, flushing once the buffer grows past the cap.
        let stream_directly =
            matches!(&response, Response::Rows { rows, .. } if rows.len() >= STREAM_ROWS_THRESHOLD);
        let wrote = if stream_directly {
            flush_out(conn, out).and_then(|()| respond(conn, &response))
        } else {
            // Writes to a Vec are infallible; size errors (a row over
            // the frame cap) are encoded as an ERR response instead.
            let _ = wire::write_response(out, &response);
            if out.len() >= RESPOND_COALESCE_MAX {
                flush_out(conn, out)
            } else {
                Ok(())
            }
        };
        if wrote.is_err() {
            close_conn(conn, st, shared);
            return false;
        }
    }
    true
}

/// Records one statement frame's service latency: the first frame of a
/// pass into its opcode histogram, pipelined followers into
/// `net.pipelined_us` — their wall clock includes queueing behind the
/// frames ahead of them, which must not skew the opcode distributions.
fn record_stmt(shared: &Shared, hist: &bullfrog_obs::Histogram, nth: usize, started: Instant) {
    let h = if nth > 1 {
        &*shared.hist_pipelined
    } else {
        hist
    };
    h.record_micros(started.elapsed());
}

/// Builds the `METRICS` payload: refreshes the point-in-time gauges the
/// registry cannot observe passively (session counts, durability
/// horizon, migration progress), then snapshots everything.
fn metrics_snapshot(shared: &Shared) -> bullfrog_obs::MetricsSnapshot {
    let obs = &shared.obs;
    obs.gauge("server.active_sessions")
        .set(shared.active.load(Ordering::Acquire) as i64);
    obs.gauge("server.parked_connections")
        .set(shared.conns.lock().unwrap().len() as i64);
    let d = DurabilityStats::capture(shared.bf.db());
    obs.gauge("wal.durable_lsn").set(d.durable_lsn as i64);
    obs.gauge("wal.log_len").set(d.log_len as i64);
    obs.gauge("mvcc.versions")
        .set(shared.bf.db().version_count() as i64);
    match shared.bf.progress() {
        Some(p) => {
            obs.gauge("migration.active").set(1);
            obs.gauge("migration.complete").set(i64::from(p.complete));
            obs.gauge("migration.granules_done")
                .set(p.granules_done as i64);
            obs.gauge("migration.granules_total")
                .set(p.granules_total as i64);
        }
        None => obs.gauge("migration.active").set(0),
    }
    obs.snapshot()
}

/// Converts a parked connection into a replication subscription: the
/// poller and registry forget it, a dedicated thread runs the sender's
/// blocking stream loop, and the active slot is released only when that
/// loop ends — shutdown drains subscriptions like any session.
fn subscribe_handoff(
    conn: &Arc<Conn>,
    st: &mut MutexGuard<'_, ConnState>,
    shared: &Arc<Shared>,
    hooks: &Arc<dyn ReplicationHooks>,
    from_lsn: u64,
    ddl_seq: u64,
    epoch: u64,
) {
    st.session.abort_open();
    if conn.closed.swap(true, Ordering::AcqRel) {
        return;
    }
    let _ = shared.poller.delete(&conn.stream);
    shared.conns.lock().unwrap().remove(&conn.id);
    let stream = conn
        .stream
        .try_clone()
        .and_then(|s| s.set_nonblocking(false).map(|()| s));
    let stream = match stream {
        Ok(s) => s,
        Err(_) => {
            shared.active.fetch_sub(1, Ordering::AcqRel);
            return;
        }
    };
    let hooks = Arc::clone(hooks);
    let thread_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("bf-net-subscribe".into())
        .spawn(move || {
            let stop = || thread_shared.stopping();
            let _ = hooks.subscribe(stream, from_lsn, ddl_seq, epoch, &stop);
            thread_shared.active.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Executes one cluster-control operation against this node's member
/// state. The session is already marked admin for mutating ops, so the
/// `Commit` arm's DDL runs through the normal session path (including
/// any replication journal hooks) without tripping the member's own
/// enforcement.
fn handle_cluster(
    op: ClusterReq,
    member: &Arc<ClusterMember>,
    shared: &Shared,
    session: &mut Session,
) -> Response {
    match op {
        ClusterReq::GetMap => match member.map() {
            Some(map) => Response::ShardMap(map),
            None => Response::Err {
                retryable: false,
                code: err_code::GENERAL,
                message: "no shard map installed on this node".into(),
            },
        },
        ClusterReq::SetMap { self_index, map } => {
            match member.install_map(map, self_index as usize) {
                Ok(()) => Response::Ok { affected: 0 },
                Err(e) => Response::from_error(&e),
            }
        }
        ClusterReq::Prepare { sql } => {
            let started = Instant::now();
            let t0 = shared.obs.now_us();
            let resp = cluster_prepare(&sql, member, shared);
            if matches!(resp, Response::Prepared { .. }) {
                shared
                    .obs
                    .tracer()
                    .record("cluster.prepare", 0, t0, shared.obs.now_us());
                shared.hist_cluster_prepare.record_micros(started.elapsed());
            }
            resp
        }
        ClusterReq::Commit => {
            let sql = match member.commit_sql() {
                Ok(sql) => sql,
                Err(e) => return Response::from_error(&e),
            };
            let started = Instant::now();
            let t0 = shared.obs.now_us();
            match session.execute(&sql) {
                Response::Ok { .. } => {
                    member.mark_committed();
                    let now = shared.obs.now_us();
                    shared.obs.tracer().record("cluster.commit", 0, t0, now);
                    shared.hist_cluster_commit.record_micros(started.elapsed());
                    // The exchange phase (cross-node partial-aggregate
                    // merge) runs from here to END_EXCHANGE; `max(1)`
                    // keeps 0 meaning "no exchange in flight".
                    shared
                        .exchange_start_us
                        .store(now.max(1), Ordering::Relaxed);
                    Response::Ok { affected: 0 }
                }
                err => err,
            }
        }
        ClusterReq::Abort => {
            member.abort_flip();
            shared.exchange_start_us.store(0, Ordering::Relaxed);
            Response::Ok { affected: 0 }
        }
        ClusterReq::EndExchange => match member.end_exchange() {
            Ok(()) => {
                let t0 = shared.exchange_start_us.swap(0, Ordering::Relaxed);
                if t0 != 0 {
                    let now = shared.obs.now_us();
                    shared.obs.tracer().record("cluster.exchange", 0, t0, now);
                    shared.hist_cluster_exchange.record(now.saturating_sub(t0));
                }
                Response::Ok { affected: 0 }
            }
            Err(e) => Response::from_error(&e),
        },
    }
}

/// Phase one of the two-phase flip: parse and resolve the migration DDL
/// against the local catalog (every node resolves the same plan — the
/// coordinator keeps catalogs identical), derive the flip windows and
/// exchange work, and stage it. Nothing executes yet.
fn cluster_prepare(sql: &str, member: &Arc<ClusterMember>, shared: &Shared) -> Response {
    use bullfrog_sql::{parse_statement, Statement};
    let stmt = match parse_statement(sql) {
        Ok(stmt) => stmt,
        Err(e) => return Response::from_error(&e),
    };
    let Statement::CreateTableAs {
        name,
        select,
        primary_key,
    } = stmt
    else {
        return Response::Err {
            retryable: false,
            code: err_code::GENERAL,
            message: "cluster PREPARE expects migration DDL (CREATE TABLE ... AS SELECT)".into(),
        };
    };
    let flip = (|| {
        let mut plan =
            crate::session::build_migration_plan(&shared.bf, name, &select, primary_key)?;
        plan.resolve(shared.bf.db())?;
        let multi_node = member.map().is_some_and(|m| m.nodes.len() > 1);
        plan_flip(&plan, multi_node)
    })();
    match flip {
        Ok(flip) => {
            let exchange = flip.exchange.clone();
            match member.begin_prepare(sql.to_string(), flip) {
                Ok(()) => Response::Prepared { exchange },
                Err(e) => Response::from_error(&e),
            }
        }
        Err(e) => Response::from_error(&e),
    }
}

/// Assembles the `STATUS` report: server, session, migration,
/// durability, and checkpoint-scheduler counters as ordered pairs.
/// Keys are `&'static` (literals, or interned once on the registry), so
/// serving `STATUS` allocates no key strings — the report encodes
/// straight off this slice.
fn status_pairs(shared: &Shared) -> Vec<(&'static str, i64)> {
    let mut out: Vec<(&'static str, i64)> = Vec::with_capacity(64);
    let mut push = |k: &'static str, v: i64| out.push((k, v));

    push(
        "server.active_sessions",
        shared.active.load(Ordering::Acquire) as i64,
    );
    push("server.accepted", shared.accepted.get() as i64);
    push("server.rejected", shared.rejected.get() as i64);
    push("server.accept_errors", shared.accept_errors.get() as i64);
    push(
        "server.parked_connections",
        shared.conns.lock().unwrap().len() as i64,
    );
    {
        let pool = shared.pool.state.lock().unwrap();
        push("server.pool_workers", pool.total as i64);
        push("server.pool_idle", pool.idle as i64);
    }

    let c = &shared.counters;
    push("sessions.statements", c.statements.get() as i64);
    push("sessions.errors", c.errors.get() as i64);
    push("sessions.rows_returned", c.rows_returned.get() as i64);
    push("sessions.rows_written", c.rows_written.get() as i64);
    push("sessions.commits", c.commits.get() as i64);
    push("sessions.aborts", c.aborts.get() as i64);

    // Engine mode and MVCC health. `engine.mode` is 0 under 2PL and 1
    // under snapshot isolation; the mvcc.* gauges are always reported
    // (all zero under 2PL) so pollers need not branch on the mode.
    let db = shared.bf.db();
    push("engine.mode", i64::from(db.config().mode.is_snapshot()));
    push("mvcc.versions", db.version_count() as i64);
    push("mvcc.gc_horizon", db.wal().oracle().gc_horizon() as i64);
    push("mvcc.gc_reclaimed", db.gc_reclaimed() as i64);

    match shared.bf.progress() {
        Some(p) => {
            push("migration.active", 1);
            push("migration.complete", i64::from(p.complete));
            push("migration.statements", p.statements as i64);
            push(
                "migration.statements_complete",
                p.statements_complete as i64,
            );
            push(
                "migration.granules_migrated",
                p.stats.granules_migrated as i64,
            );
            push("migration.rows_migrated", p.stats.rows_migrated as i64);
            push("migration.txns", p.stats.migration_txns as i64);
            push("migration.aborts", p.stats.migration_aborts as i64);
            push("migration.skips", p.stats.skips as i64);
            push("migration.waits", p.stats.waits as i64);
            push("migration.rows_dropped", p.stats.rows_dropped as i64);
            push("migration.conflict_skips", p.stats.conflict_skips as i64);
            push(
                "migration.background_granules",
                p.stats.background_granules as i64,
            );
            push("migration.granules_done", p.granules_done as i64);
            push("migration.granules_total", p.granules_total as i64);
        }
        None => push("migration.active", 0),
    }

    let d = DurabilityStats::capture(shared.bf.db());
    push("wal.log_len", d.log_len as i64);
    push("wal.resident_records", d.resident_records as i64);
    push("wal.durable_lsn", d.durable_lsn as i64);
    push("wal.flushes", d.wal.flushes as i64);
    push("wal.flushed_batches", d.wal.flushed_batches as i64);
    push("wal.flushed_bytes", d.wal.flushed_bytes as i64);
    push("wal.checkpoints", d.wal.checkpoints as i64);
    push("wal.truncated_records", d.wal.truncated_records as i64);
    push("wal.shards", d.shards.len() as i64);
    for (s, keys) in d.shards.iter().zip(&shared.wal_shard_keys) {
        push(keys[0], s.flushes as i64);
        push(keys[1], s.flushed_batches as i64);
        push(keys[2], s.flushed_bytes as i64);
    }

    if let Some(s) = shared.scheduler.lock().unwrap().as_ref() {
        let st = s.status();
        push("scheduler.enabled", 1);
        push("scheduler.checkpoints", st.checkpoints as i64);
        push("scheduler.errors", st.errors as i64);
        push("scheduler.last_cut_lsn", st.last_cut_lsn as i64);
        push("scheduler.last_absorbed", st.last_absorbed as i64);
    } else {
        push("scheduler.enabled", 0);
    }

    // Replication: the primary's sender hooks or the replica's local
    // counters, whichever side this server is. Hook keys are interned —
    // a lookup per key on repeat requests, an allocation only the first
    // time a name appears.
    let mut extend = |pairs: Vec<(String, i64)>| {
        out.extend(pairs.into_iter().map(|(k, v)| (shared.obs.intern(&k), v)));
    };
    if let Some(hooks) = &shared.config.replication {
        extend(hooks.status());
    }
    if let Some(f) = shared
        .config
        .read_only
        .as_ref()
        .and_then(|ro| ro.status.as_ref())
    {
        extend(f());
    }
    if let Some(member) = &shared.config.cluster {
        extend(member.status());
    }
    if let Some(ha) = &shared.config.ha {
        extend(ha.status());
    }

    // Synchronous-replication gate gauges; all zero when SYNC_REPLICAS
    // is off, so pollers need not branch on the HA configuration.
    let gate = db.wal().sync_gate();
    out.extend([
        ("repl.sync_replicas", gate.required() as i64),
        ("repl.sync_peers", gate.peer_count() as i64),
        ("repl.sync_replicated_lsn", gate.replicated_lsn() as i64),
        ("repl.sync_degraded", gate.degraded_commits() as i64),
        ("repl.sync_fenced", gate.fenced_commits() as i64),
        ("repl.fenced", i64::from(gate.is_fenced())),
    ]);
    out
}
