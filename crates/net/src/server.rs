//! The BullFrog TCP server.
//!
//! [`Server::bind`] takes an [`Arc<Bullfrog>`] and a [`ServerConfig`],
//! binds a listener, and serves BFNET1 connections with one thread per
//! session (the engine's locking model drives each
//! [`Transaction`](bullfrog_txn::Transaction) from a single thread, so
//! thread-per-connection is the honest architecture, not a shortcut).
//! The accept loop enforces `max_connections` as backpressure: a
//! connection over the cap is told `server busy` (retryable) and
//! closed — never silently dropped.
//!
//! Shutdown — via [`Server::shutdown`], dropping the server, or a
//! client's `SHUTDOWN` opcode — is graceful: the listener stops
//! accepting, every session finishes the statement it is executing,
//! in-flight sessions are joined, open transactions are aborted, and
//! the WAL is synced. Committed writes are durable when `shutdown`
//! returns; uncommitted ones are gone, which is what a transaction
//! means.
//!
//! If the database was configured with a
//! [`CheckpointPolicy`](bullfrog_engine::CheckpointPolicy), the server
//! also runs the background [`CheckpointScheduler`] for its lifetime
//! and reports its counters under `STATUS`.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bullfrog_common::Result;
use bullfrog_core::{Bullfrog, ClientAccess, DurabilityStats};
use bullfrog_engine::CheckpointScheduler;
use bytes::Bytes;

use crate::cluster::{plan_flip, ClusterMember, ClusterReq};
use crate::session::{Session, SessionCounters};
use crate::wire::{self, err_code, Request, Response};

/// Granularity of the idle/stop polling slice.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// A DDL action a primary records for its replicas. DDL is not
/// WAL-logged (recovery re-creates the catalog from the caller's
/// schema), so replication carries it out-of-band in a journal; the
/// payloads here are what the journal stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdlEvent {
    /// `CREATE TABLE ...` — the statement text, re-parsed on the replica.
    Create {
        /// Original statement text.
        sql: String,
    },
    /// Migration DDL (`CREATE TABLE ... AS SELECT ...`). `caps` are the
    /// primary's per-statement bitmap tracker dimensions
    /// (`(row_capacity, granule_size)`; `(0, 0)` for hash tracking): the
    /// replica must allocate identically-shaped trackers or the granule
    /// ordinals shipped in the log would not line up.
    Migrate {
        /// Original statement text.
        sql: String,
        /// Primary's tracker dimensions, per plan statement.
        caps: Vec<(u64, u64)>,
    },
    /// `FINALIZE MIGRATION [DROP OLD]` — the statement text.
    Finalize {
        /// Original statement text.
        sql: String,
    },
}

/// Primary-side replication callbacks. Implemented by
/// `bullfrog-repl`'s `ReplicationSender`; kept as a trait here so `net`
/// (which `repl` depends on) never depends back on `repl`.
pub trait ReplicationHooks: Send + Sync {
    /// Runs one DDL statement under the replication DDL-journal lock:
    /// `exec` performs the catalog change and returns the event to
    /// journal; the implementation samples the WAL frontier *before*
    /// calling it (the event's apply point) and appends the event only
    /// if `exec` succeeds. The lock serializes DDL, so journal order
    /// equals catalog-creation order and
    /// [`TableId`](bullfrog_common::TableId)s match on every replica.
    fn journaled_ddl(&self, exec: &mut dyn FnMut() -> Result<DdlEvent>) -> Result<()>;

    /// Encodes a bootstrap snapshot (checkpoint image + DDL journal).
    fn snapshot(&self) -> Result<Bytes>;

    /// Takes over `stream` as a replication subscription: validates
    /// `from_lsn`/`ddl_seq`, answers `OK` or `ERR SNAPSHOT_REQUIRED`
    /// itself, then streams `FRAMES` until the replica disconnects or
    /// `stop()` turns true.
    fn subscribe(
        &self,
        stream: TcpStream,
        from_lsn: u64,
        ddl_seq: u64,
        epoch: u64,
        stop: &dyn Fn() -> bool,
    ) -> std::io::Result<()>;

    /// `repl.*` counters for `STATUS`.
    fn status(&self) -> Vec<(String, i64)>;
}

/// High-availability callbacks. Implemented by `bullfrog-ha`'s member
/// state machine; kept as a trait here so `net` never depends on `ha`.
pub trait HaHooks: Send + Sync {
    /// Answers one `HA` protocol request (lease renew, vote request,
    /// operator promote, state probe) with an `HA_STATE` response.
    fn handle(&self, req: &wire::HaReq) -> Response;

    /// When `Some`, this node must not accept writes or DDL (it is a
    /// fenced ex-leader or a non-leader member); the string names the
    /// current leader for the client's redirect hint.
    fn write_block(&self) -> Option<String>;

    /// `ha.*` counters for `STATUS`.
    fn status(&self) -> Vec<(String, i64)>;
}

/// Marks a server as a read-only replica: sessions accept `SELECT`
/// (and `STATUS`/`CHECKPOINT` plumbing) but reject writes and DDL with
/// a retryable [`err_code::READ_ONLY`] error naming the primary.
#[derive(Clone)]
pub struct ReadOnly {
    /// Primary address, quoted in rejection messages so clients can
    /// redirect.
    pub primary: String,
    /// The replica's apply gate: the log applier holds the write half
    /// around each transaction batch, read sessions hold the read half
    /// per statement — readers never observe a half-applied transaction.
    pub gate: Arc<parking_lot::RwLock<()>>,
    /// Replica-side `repl.*` counters for `STATUS`.
    pub status: Option<StatusFn>,
    /// Flipped to `true` by `Replica::promote()`: existing and new
    /// sessions start accepting writes without a server restart.
    pub writable: Arc<AtomicBool>,
}

/// A pluggable `STATUS` counter source (replica-side `repl.*` pairs).
pub type StatusFn = Arc<dyn Fn() -> Vec<(String, i64)> + Send + Sync>;

impl std::fmt::Debug for ReadOnly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadOnly")
            .field("primary", &self.primary)
            .finish_non_exhaustive()
    }
}

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServerConfig {
    /// Concurrent session cap; further connections get a retryable
    /// `server busy` error.
    pub max_connections: usize,
    /// Close a connection after this long with no complete request.
    pub idle_timeout: Duration,
    /// Abort (never commit) a statement that ran longer than this.
    pub statement_timeout: Duration,
    /// Primary-side replication: serve `SUBSCRIBE`/`SNAPSHOT` and
    /// journal DDL through these hooks.
    pub replication: Option<Arc<dyn ReplicationHooks>>,
    /// Replica-side read-only mode.
    pub read_only: Option<ReadOnly>,
    /// Shared-nothing cluster membership: serve the `CLUSTER` opcodes
    /// and enforce shard ownership / flip windows on every session.
    pub cluster: Option<Arc<ClusterMember>>,
    /// High-availability membership: serve the `HA` opcode and gate
    /// writes on leadership.
    pub ha: Option<Arc<dyn HaHooks>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            statement_timeout: Duration::from_secs(10),
            replication: None,
            read_only: None,
            cluster: None,
            ha: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("max_connections", &self.max_connections)
            .field("idle_timeout", &self.idle_timeout)
            .field("statement_timeout", &self.statement_timeout)
            .field("replication", &self.replication.is_some())
            .field("read_only", &self.read_only)
            .field("cluster", &self.cluster.is_some())
            .field("ha", &self.ha.is_some())
            .finish()
    }
}

/// State shared between the accept loop, session threads, and handles.
struct Shared {
    bf: Arc<Bullfrog>,
    config: ServerConfig,
    stop: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
    counters: Arc<SessionCounters>,
    scheduler: Mutex<Option<CheckpointScheduler>>,
}

/// A running server. Dropping it shuts it down gracefully.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `bf`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        bf: Arc<Bullfrog>,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let scheduler = CheckpointScheduler::from_config(bf.db());
        let shared = Arc::new(Shared {
            bf,
            config,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            counters: Arc::new(SessionCounters::default()),
            scheduler: Mutex::new(scheduler),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("bf-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Sessions currently connected.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// True once shutdown has been requested (locally or via the
    /// `SHUTDOWN` opcode).
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// The shared per-session counters.
    pub fn session_counters(&self) -> Arc<SessionCounters> {
        Arc::clone(&self.shared.counters)
    }

    /// Blocks until shutdown is requested (e.g. by a remote `SHUTDOWN`),
    /// then drains. For server main loops.
    pub fn wait_shutdown(&mut self) {
        while !self.is_stopping() {
            std::thread::sleep(POLL_SLICE);
        }
        self.shutdown();
    }

    /// Gracefully shuts down: stop accepting, drain in-flight sessions,
    /// stop the checkpoint scheduler, and sync the WAL so every
    /// committed write is on disk. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Session threads poll the stop flag between frames and exit on
        // their own; wait for the drain.
        while self.shared.active.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        if let Some(mut s) = self.shared.scheduler.lock().unwrap().take() {
            s.stop();
        }
        self.shared.bf.db().wal().sync();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                spawn_session(stream, Arc::clone(&shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn spawn_session(mut stream: TcpStream, shared: Arc<Shared>) {
    // Claim a slot before spawning so the cap is enforced at accept
    // time, not after a thread already exists.
    let prev = shared.active.fetch_add(1, Ordering::AcqRel);
    if prev >= shared.config.max_connections {
        shared.active.fetch_sub(1, Ordering::AcqRel);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        let busy = Response::Err {
            retryable: true,
            code: err_code::BUSY,
            message: format!(
                "server busy: {} connections (max {})",
                prev, shared.config.max_connections
            ),
        };
        let _ = wire::write_frame(&mut stream, &busy.encode());
        return;
    }
    let spawned = std::thread::Builder::new()
        .name("bf-net-session".into())
        .spawn({
            let shared = Arc::clone(&shared);
            move || {
                let _ = serve_connection(stream, &shared);
                shared.active.fetch_sub(1, Ordering::AcqRel);
            }
        });
    if spawned.is_err() {
        // Spawn failure: release the slot; the dropped stream reads as a
        // disconnect on the client side.
        shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// What the readability poll observed.
enum Readiness {
    /// Bytes are waiting; a blocking read will not stall.
    Ready,
    /// The peer closed the connection.
    Eof,
    /// No complete request arrived within the idle timeout.
    Idle,
    /// The server is shutting down.
    Stopping,
}

/// Polls `stream` for readability in short slices so the thread notices
/// both the idle timeout and the server stop flag without consuming any
/// stream bytes (peek never desynchronizes framing, unlike a timed-out
/// `read_exact`).
fn wait_readable(stream: &TcpStream, shared: &Shared) -> Readiness {
    let mut idle = Duration::ZERO;
    let mut probe = [0u8; 1];
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return Readiness::Stopping;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return Readiness::Eof,
            Ok(_) => return Readiness::Ready,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                idle += POLL_SLICE;
                if idle >= shared.config.idle_timeout {
                    return Readiness::Idle;
                }
            }
            Err(_) => return Readiness::Eof,
        }
    }
}

/// Serves one connection until EOF, error, idle timeout, or shutdown.
fn serve_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL_SLICE))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream.try_clone()?;

    // Preamble first: reject strangers before touching the database.
    if !matches!(wait_readable(&stream, shared), Readiness::Ready) {
        return Ok(());
    }
    // A peer that started writing gets a generous transport timeout for
    // the rest of each message; idle gaps are detected between frames.
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut preamble = [0u8; 8];
    if reader.read_exact(&mut preamble).is_err()
        || wire::read_preamble(&mut std::io::Cursor::new(preamble.to_vec())).is_err()
    {
        return Ok(());
    }

    let mut session = Session::new(
        Arc::clone(&shared.bf),
        Arc::clone(&shared.counters),
        shared.config.statement_timeout,
    );
    if let Some(hooks) = &shared.config.replication {
        session = session.with_ddl_hooks(Arc::clone(hooks));
    }
    if let Some(ro) = &shared.config.read_only {
        session = session.with_read_only(ro.clone());
    }
    if let Some(member) = &shared.config.cluster {
        session = session.with_cluster(Arc::clone(member));
    }
    if let Some(ha) = &shared.config.ha {
        session = session.with_ha(Arc::clone(ha));
    }
    loop {
        stream.set_read_timeout(Some(POLL_SLICE))?;
        match wait_readable(&stream, shared) {
            Readiness::Ready => {}
            Readiness::Eof | Readiness::Idle | Readiness::Stopping => {
                session.abort_open();
                return Ok(());
            }
        }
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let payload = match wire::read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => {
                session.abort_open();
                return Ok(());
            }
        };
        let response = match Request::decode(payload) {
            Err(e) => Response::from_error(&e),
            Ok(Request::Query(sql)) => session.execute(&sql),
            Ok(Request::Checkpoint) => match shared.bf.db().checkpoint() {
                Ok(stats) => Response::Ok {
                    affected: stats.absorbed_records as u64,
                },
                Err(e) => Response::from_error(&e),
            },
            Ok(Request::Status) => Response::Stats(status_pairs(shared)),
            Ok(Request::Shutdown) => {
                let _ = wire::write_frame(&mut writer, &Response::Ok { affected: 0 }.encode());
                session.abort_open();
                shared.stop.store(true, Ordering::Release);
                return Ok(());
            }
            Ok(Request::Subscribe {
                from_lsn,
                ddl_seq,
                epoch,
            }) => match &shared.config.replication {
                Some(hooks) => {
                    // Hand the socket to the replication sender; it owns
                    // framing from here until the replica disconnects or
                    // the server stops. The session slot stays claimed,
                    // so shutdown drains subscriptions like any session.
                    session.abort_open();
                    let stop = || shared.stop.load(Ordering::Acquire);
                    let _ = hooks.subscribe(stream, from_lsn, ddl_seq, epoch, &stop);
                    return Ok(());
                }
                None => Response::Err {
                    retryable: false,
                    code: err_code::GENERAL,
                    message: "replication is not enabled on this server".into(),
                },
            },
            Ok(Request::Snapshot) => match &shared.config.replication {
                Some(hooks) => match hooks.snapshot() {
                    Ok(payload) => Response::Snapshot { payload },
                    Err(e) => Response::from_error(&e),
                },
                None => Response::Err {
                    retryable: false,
                    code: err_code::GENERAL,
                    message: "replication is not enabled on this server".into(),
                },
            },
            Ok(Request::ReplAck { .. }) => Response::Err {
                retryable: false,
                code: err_code::GENERAL,
                message: "REPL_ACK is only valid on a subscribed connection".into(),
            },
            Ok(Request::Cluster(op)) => match &shared.config.cluster {
                Some(member) => {
                    if !matches!(op, ClusterReq::GetMap) {
                        session.set_cluster_admin();
                    }
                    handle_cluster(op, member, shared, &mut session)
                }
                None => Response::Err {
                    retryable: false,
                    code: err_code::GENERAL,
                    message: "clustering is not enabled on this server".into(),
                },
            },
            Ok(Request::Ha(req)) => match &shared.config.ha {
                Some(hooks) => hooks.handle(&req),
                None => Response::Err {
                    retryable: false,
                    code: err_code::GENERAL,
                    message: "high availability is not enabled on this server".into(),
                },
            },
        };
        wire::write_frame(&mut writer, &response.encode())?;
    }
}

/// Executes one cluster-control operation against this node's member
/// state. The session is already marked admin for mutating ops, so the
/// `Commit` arm's DDL runs through the normal session path (including
/// any replication journal hooks) without tripping the member's own
/// enforcement.
fn handle_cluster(
    op: ClusterReq,
    member: &Arc<ClusterMember>,
    shared: &Shared,
    session: &mut Session,
) -> Response {
    match op {
        ClusterReq::GetMap => match member.map() {
            Some(map) => Response::ShardMap(map),
            None => Response::Err {
                retryable: false,
                code: err_code::GENERAL,
                message: "no shard map installed on this node".into(),
            },
        },
        ClusterReq::SetMap { self_index, map } => {
            match member.install_map(map, self_index as usize) {
                Ok(()) => Response::Ok { affected: 0 },
                Err(e) => Response::from_error(&e),
            }
        }
        ClusterReq::Prepare { sql } => cluster_prepare(&sql, member, shared),
        ClusterReq::Commit => {
            let sql = match member.commit_sql() {
                Ok(sql) => sql,
                Err(e) => return Response::from_error(&e),
            };
            match session.execute(&sql) {
                Response::Ok { .. } => {
                    member.mark_committed();
                    Response::Ok { affected: 0 }
                }
                err => err,
            }
        }
        ClusterReq::Abort => {
            member.abort_flip();
            Response::Ok { affected: 0 }
        }
        ClusterReq::EndExchange => match member.end_exchange() {
            Ok(()) => Response::Ok { affected: 0 },
            Err(e) => Response::from_error(&e),
        },
    }
}

/// Phase one of the two-phase flip: parse and resolve the migration DDL
/// against the local catalog (every node resolves the same plan — the
/// coordinator keeps catalogs identical), derive the flip windows and
/// exchange work, and stage it. Nothing executes yet.
fn cluster_prepare(sql: &str, member: &Arc<ClusterMember>, shared: &Shared) -> Response {
    use bullfrog_sql::{parse_statement, Statement};
    let stmt = match parse_statement(sql) {
        Ok(stmt) => stmt,
        Err(e) => return Response::from_error(&e),
    };
    let Statement::CreateTableAs {
        name,
        select,
        primary_key,
    } = stmt
    else {
        return Response::Err {
            retryable: false,
            code: err_code::GENERAL,
            message: "cluster PREPARE expects migration DDL (CREATE TABLE ... AS SELECT)".into(),
        };
    };
    let flip = (|| {
        let mut plan =
            crate::session::build_migration_plan(&shared.bf, name, &select, primary_key)?;
        plan.resolve(shared.bf.db())?;
        let multi_node = member.map().is_some_and(|m| m.nodes.len() > 1);
        plan_flip(&plan, multi_node)
    })();
    match flip {
        Ok(flip) => {
            let exchange = flip.exchange.clone();
            match member.begin_prepare(sql.to_string(), flip) {
                Ok(()) => Response::Prepared { exchange },
                Err(e) => Response::from_error(&e),
            }
        }
        Err(e) => Response::from_error(&e),
    }
}

/// Assembles the `STATUS` report: server, session, migration,
/// durability, and checkpoint-scheduler counters as ordered pairs.
fn status_pairs(shared: &Shared) -> Vec<(String, i64)> {
    let mut out: Vec<(String, i64)> = Vec::new();
    let mut push = |k: &str, v: i64| out.push((k.to_string(), v));

    push(
        "server.active_sessions",
        shared.active.load(Ordering::Acquire) as i64,
    );
    push(
        "server.accepted",
        shared.accepted.load(Ordering::Relaxed) as i64,
    );
    push(
        "server.rejected",
        shared.rejected.load(Ordering::Relaxed) as i64,
    );

    let c = &shared.counters;
    push(
        "sessions.statements",
        c.statements.load(Ordering::Relaxed) as i64,
    );
    push("sessions.errors", c.errors.load(Ordering::Relaxed) as i64);
    push(
        "sessions.rows_returned",
        c.rows_returned.load(Ordering::Relaxed) as i64,
    );
    push(
        "sessions.rows_written",
        c.rows_written.load(Ordering::Relaxed) as i64,
    );
    push("sessions.commits", c.commits.load(Ordering::Relaxed) as i64);
    push("sessions.aborts", c.aborts.load(Ordering::Relaxed) as i64);

    // Engine mode and MVCC health. `engine.mode` is 0 under 2PL and 1
    // under snapshot isolation; the mvcc.* gauges are always reported
    // (all zero under 2PL) so pollers need not branch on the mode.
    let db = shared.bf.db();
    push("engine.mode", i64::from(db.config().mode.is_snapshot()));
    push("mvcc.versions", db.version_count() as i64);
    push("mvcc.gc_horizon", db.wal().oracle().gc_horizon() as i64);
    push("mvcc.gc_reclaimed", db.gc_reclaimed() as i64);

    match shared.bf.progress() {
        Some(p) => {
            push("migration.active", 1);
            push("migration.complete", i64::from(p.complete));
            push("migration.statements", p.statements as i64);
            push(
                "migration.statements_complete",
                p.statements_complete as i64,
            );
            push(
                "migration.granules_migrated",
                p.stats.granules_migrated as i64,
            );
            push("migration.rows_migrated", p.stats.rows_migrated as i64);
            push("migration.txns", p.stats.migration_txns as i64);
            push("migration.aborts", p.stats.migration_aborts as i64);
            push("migration.skips", p.stats.skips as i64);
            push("migration.waits", p.stats.waits as i64);
            push("migration.rows_dropped", p.stats.rows_dropped as i64);
            push("migration.conflict_skips", p.stats.conflict_skips as i64);
            push(
                "migration.background_granules",
                p.stats.background_granules as i64,
            );
            push("migration.granules_done", p.granules_done as i64);
            push("migration.granules_total", p.granules_total as i64);
        }
        None => push("migration.active", 0),
    }

    let d = DurabilityStats::capture(shared.bf.db());
    push("wal.log_len", d.log_len as i64);
    push("wal.resident_records", d.resident_records as i64);
    push("wal.durable_lsn", d.durable_lsn as i64);
    push("wal.flushes", d.wal.flushes as i64);
    push("wal.flushed_batches", d.wal.flushed_batches as i64);
    push("wal.flushed_bytes", d.wal.flushed_bytes as i64);
    push("wal.checkpoints", d.wal.checkpoints as i64);
    push("wal.truncated_records", d.wal.truncated_records as i64);
    push("wal.shards", d.shards.len() as i64);
    for (i, s) in d.shards.iter().enumerate() {
        push(&format!("wal.shard{i}.flushes"), s.flushes as i64);
        push(
            &format!("wal.shard{i}.flushed_batches"),
            s.flushed_batches as i64,
        );
        push(
            &format!("wal.shard{i}.flushed_bytes"),
            s.flushed_bytes as i64,
        );
    }

    if let Some(s) = shared.scheduler.lock().unwrap().as_ref() {
        let st = s.status();
        push("scheduler.enabled", 1);
        push("scheduler.checkpoints", st.checkpoints as i64);
        push("scheduler.errors", st.errors as i64);
        push("scheduler.last_cut_lsn", st.last_cut_lsn as i64);
        push("scheduler.last_absorbed", st.last_absorbed as i64);
    } else {
        push("scheduler.enabled", 0);
    }

    // Replication: the primary's sender hooks or the replica's local
    // counters, whichever side this server is.
    if let Some(hooks) = &shared.config.replication {
        out.extend(hooks.status());
    }
    if let Some(f) = shared
        .config
        .read_only
        .as_ref()
        .and_then(|ro| ro.status.as_ref())
    {
        out.extend(f());
    }
    if let Some(member) = &shared.config.cluster {
        out.extend(member.status());
    }
    if let Some(ha) = &shared.config.ha {
        out.extend(ha.status());
    }

    // Synchronous-replication gate gauges; all zero when SYNC_REPLICAS
    // is off, so pollers need not branch on the HA configuration.
    let gate = db.wal().sync_gate();
    let gauges: [(&str, i64); 6] = [
        ("repl.sync_replicas", gate.required() as i64),
        ("repl.sync_peers", gate.peer_count() as i64),
        ("repl.sync_replicated_lsn", gate.replicated_lsn() as i64),
        ("repl.sync_degraded", gate.degraded_commits() as i64),
        ("repl.sync_fenced", gate.fenced_commits() as i64),
        ("repl.fenced", i64::from(gate.is_fenced())),
    ];
    out.extend(gauges.iter().map(|(k, v)| (k.to_string(), *v)));
    out
}
