//! Cluster-side state of a shared-nothing BullFrog node.
//!
//! A cluster hash-partitions every table's rows across N nodes by
//! primary key, and each node runs the ordinary single-node lazy
//! migration machinery over its own partition. This module holds what a
//! *member* needs for that to be safe:
//!
//! - [`ShardMap`] — the versioned `hash(key) % nodes` routing table,
//!   installed on every node and fetched by clients over the
//!   `CLUSTER GetMap` opcode;
//! - [`ClusterReq`] — the cluster-control sub-operations carried by the
//!   BFNET1 `CLUSTER` request (map distribution plus the two-phase
//!   schema flip: prepare / commit / abort / end-exchange);
//! - [`ClusterMember`] — the node's enforcement state: statements whose
//!   shard key hashes to another node are refused with
//!   [`err_code::WRONG_SHARD`], and statements touching a table caught
//!   in a flip window are refused with [`err_code::FLIP_PENDING`], both
//!   retryable so clients re-route / back off;
//! - [`ExchangeSpec`] — for n:1 migrations (GROUP BY), the description
//!   of the cross-node merge the coordinator performs after every node
//!   has flipped: each node's lazy migration produces *partial*
//!   aggregates for groups whose rows live locally, and the exchange
//!   ships those partials to the group key's owning node and merges
//!   them (`SUM`/`COUNT` add, `MIN`/`MAX` fold).
//!
//! The flip itself is the paper's O(statements) logical switch, done
//! per node; the two-phase protocol only ensures no client can observe
//! one node pre-flip and another post-flip: from `Prepare` until that
//! node's `Commit`, the affected tables answer `FLIP_PENDING`, and for
//! exchange outputs the hold extends until `EndExchange` so no client
//! reads a group's partial (pre-merge) aggregate.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use bullfrog_common::{Error, Result, Value};
use bullfrog_core::{MigrationPlan, Tracking};
use bullfrog_engine::db::Database;
use bullfrog_query::{conjuncts, AggFunc, CmpOp, Expr, OutputColumn};
use bullfrog_sql::Statement;
use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use crate::wire::{self, err_code, Response};

/// The versioned routing table: a key owned by slot
/// `fnv(key) % nodes.len()` lives on `nodes[slot]`.
///
/// Versioning exists so a client holding a stale map can tell (from the
/// `WRONG_SHARD` it earns) that re-fetching is worthwhile; within one
/// map version ownership is deterministic on every node and client
/// because the hash is the repo's seedless FNV-1a.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Monotonic map version (starts at 1).
    pub version: u64,
    /// Node addresses, indexed by hash slot.
    pub nodes: Vec<String>,
}

impl ShardMap {
    /// A version-1 map over `nodes`.
    pub fn new(nodes: Vec<String>) -> ShardMap {
        ShardMap { version: 1, nodes }
    }

    /// The slot (node index) owning `key`.
    pub fn owner_of(&self, key: &[Value]) -> usize {
        debug_assert!(!self.nodes.is_empty());
        (bullfrog_common::fnv_hash_one(key) % self.nodes.len() as u64) as usize
    }

    /// Wire encoding (u64 version, then the node address list).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64(self.version);
        buf.put_u32(self.nodes.len() as u32);
        for n in &self.nodes {
            wire::put_str(buf, n);
        }
    }

    /// Wire decoding.
    pub fn decode(buf: &mut Bytes) -> Result<ShardMap> {
        let version = bullfrog_txn::wal::codec::get_u64(buf)?;
        let n = bullfrog_txn::wal::codec::get_u32(buf)? as usize;
        let mut nodes = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            nodes.push(wire::get_str(buf)?);
        }
        if nodes.is_empty() {
            return Err(Error::Eval("shard map with zero nodes".into()));
        }
        Ok(ShardMap { version, nodes })
    }
}

/// Cluster-control sub-operations of the BFNET1 `CLUSTER` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterReq {
    /// Fetch the node's installed [`ShardMap`]. The only sub-operation
    /// that does *not* mark the connection as a coordinator.
    GetMap,
    /// Install `map` on this node, which owns slot `self_index`.
    SetMap {
        /// This node's slot in `map.nodes`.
        self_index: u32,
        /// The map to install.
        map: ShardMap,
    },
    /// Phase one of a schema flip: validate the migration DDL, stage
    /// it, and start refusing statements on its tables with
    /// `FLIP_PENDING`. Replies [`Response::Prepared`] listing any
    /// cross-node exchange work.
    Prepare {
        /// The migration DDL (`CREATE TABLE ... AS SELECT ...`).
        sql: String,
    },
    /// Phase two: execute the staged DDL (the local logical flip; lazy
    /// migration of the local partition starts). Non-exchange tables
    /// unblock here; exchange outputs stay held until [`Self::EndExchange`].
    Commit,
    /// Drop the staged flip (coordinator saw a prepare/commit failure
    /// elsewhere) and unblock everything.
    Abort,
    /// The coordinator finished merging partial aggregates; release the
    /// exchange outputs to clients.
    EndExchange,
}

mod sub {
    pub const GET_MAP: u8 = 0;
    pub const SET_MAP: u8 = 1;
    pub const PREPARE: u8 = 2;
    pub const COMMIT: u8 = 3;
    pub const ABORT: u8 = 4;
    pub const END_EXCHANGE: u8 = 5;
}

impl ClusterReq {
    /// Wire encoding (sub-op byte + fields), appended to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            ClusterReq::GetMap => buf.put_u8(sub::GET_MAP),
            ClusterReq::SetMap { self_index, map } => {
                buf.put_u8(sub::SET_MAP);
                buf.put_u32(*self_index);
                map.encode_into(buf);
            }
            ClusterReq::Prepare { sql } => {
                buf.put_u8(sub::PREPARE);
                wire::put_str(buf, sql);
            }
            ClusterReq::Commit => buf.put_u8(sub::COMMIT),
            ClusterReq::Abort => buf.put_u8(sub::ABORT),
            ClusterReq::EndExchange => buf.put_u8(sub::END_EXCHANGE),
        }
    }

    /// Wire decoding.
    pub fn decode(buf: &mut Bytes) -> Result<ClusterReq> {
        match wire::get_u8(buf)? {
            sub::GET_MAP => Ok(ClusterReq::GetMap),
            sub::SET_MAP => Ok(ClusterReq::SetMap {
                self_index: bullfrog_txn::wal::codec::get_u32(buf)?,
                map: ShardMap::decode(buf)?,
            }),
            sub::PREPARE => Ok(ClusterReq::Prepare {
                sql: wire::get_str(buf)?,
            }),
            sub::COMMIT => Ok(ClusterReq::Commit),
            sub::ABORT => Ok(ClusterReq::Abort),
            sub::END_EXCHANGE => Ok(ClusterReq::EndExchange),
            other => Err(Error::Eval(format!("unknown cluster sub-op {other}"))),
        }
    }
}

/// Cross-node merge work for one n:1 output table: after every node's
/// local flip, each node holds partial aggregates for each group key
/// that has local input rows; the coordinator ships every partial whose
/// group key hashes elsewhere to the owning node and folds it in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeSpec {
    /// The output (aggregate) table.
    pub table: String,
    /// Group-key columns, in output-schema order — also the table's
    /// shard key for routing the merged groups.
    pub key_cols: Vec<String>,
    /// Aggregate columns with their fold function. Only the mergeable
    /// aggregates appear; `COUNT(DISTINCT ...)` is rejected at prepare.
    pub aggs: Vec<(String, AggFunc)>,
}

fn agg_to_byte(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::CountDistinct => 4,
    }
}

fn agg_from_byte(b: u8) -> Result<AggFunc> {
    Ok(match b {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::CountDistinct,
        other => return Err(Error::Eval(format!("unknown aggregate code {other}"))),
    })
}

impl ExchangeSpec {
    /// Wire encoding, appended to `buf`.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        wire::put_str(buf, &self.table);
        buf.put_u32(self.key_cols.len() as u32);
        for k in &self.key_cols {
            wire::put_str(buf, k);
        }
        buf.put_u32(self.aggs.len() as u32);
        for (name, func) in &self.aggs {
            wire::put_str(buf, name);
            buf.put_u8(agg_to_byte(*func));
        }
    }

    /// Wire decoding.
    pub fn decode(buf: &mut Bytes) -> Result<ExchangeSpec> {
        let table = wire::get_str(buf)?;
        let n = bullfrog_txn::wal::codec::get_u32(buf)? as usize;
        let mut key_cols = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            key_cols.push(wire::get_str(buf)?);
        }
        let n = bullfrog_txn::wal::codec::get_u32(buf)? as usize;
        let mut aggs = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = wire::get_str(buf)?;
            aggs.push((name, agg_from_byte(wire::get_u8(buf)?)?));
        }
        Ok(ExchangeSpec {
            table,
            key_cols,
            aggs,
        })
    }
}

/// What a resolved migration plan means for the flip protocol on a
/// member: which tables to hold in the `FLIP_PENDING` window, which to
/// keep holding after commit, and what exchange work the coordinator
/// owes. Computed at `Prepare` on every node (deterministically — every
/// node resolves the same plan against the same catalog).
#[derive(Debug, Clone)]
pub struct FlipPlan {
    /// Tables refused from `Prepare` until this node's `Commit`: every
    /// input and every output of the plan.
    pub blocked: HashSet<String>,
    /// Output tables still refused after `Commit`, until `EndExchange`
    /// (n:1 outputs whose groups may hold pre-merge partials).
    pub holdback: HashSet<String>,
    /// The coordinator's post-commit merge work.
    pub exchange: Vec<ExchangeSpec>,
}

/// Derives the [`FlipPlan`] from a resolved migration plan.
/// `multi_node` gates the exchange: a 1-node cluster never ships
/// partials. Errors on migrations whose cross-node semantics are not
/// supported (pair-hash join tracking, non-mergeable aggregates).
pub fn plan_flip(plan: &MigrationPlan, multi_node: bool) -> Result<FlipPlan> {
    let mut blocked: HashSet<String> = plan.input_tables().into_iter().collect();
    blocked.extend(plan.output_tables());
    let mut holdback = HashSet::new();
    let mut exchange = Vec::new();
    for st in &plan.statements {
        match st.tracking() {
            Tracking::Bitmap { .. } => {}
            Tracking::Hash { .. } if !multi_node => {}
            Tracking::Hash { .. } => {
                let mut key_cols = Vec::new();
                let mut aggs = Vec::new();
                for col in &st.spec.columns {
                    match col {
                        OutputColumn::Scalar { name, .. } => key_cols.push(name.clone()),
                        OutputColumn::Agg { func, .. } if *func == AggFunc::CountDistinct => {
                            return Err(Error::InvalidMigration(format!(
                                "{}: COUNT(DISTINCT) partials cannot be merged across nodes",
                                st.output.name
                            )));
                        }
                        OutputColumn::Agg { name, func, .. } => aggs.push((name.clone(), *func)),
                    }
                }
                holdback.insert(st.output.name.clone());
                exchange.push(ExchangeSpec {
                    table: st.output.name.clone(),
                    key_cols,
                    aggs,
                });
            }
            Tracking::PairHash { .. } => {
                return Err(Error::InvalidMigration(format!(
                    "{}: pair-hash join tracking is not supported across cluster nodes",
                    st.output.name
                )));
            }
        }
    }
    Ok(FlipPlan {
        blocked,
        holdback,
        exchange,
    })
}

/// A staged two-phase flip on one member.
#[derive(Debug)]
struct PendingFlip {
    /// The migration DDL, executed at `Commit`.
    sql: String,
    flip: FlipPlan,
    /// Set once the local DDL ran; from then on only `flip.holdback`
    /// stays refused.
    committed: bool,
}

#[derive(Debug, Default)]
struct MemberInner {
    map: Option<ShardMap>,
    self_index: usize,
    pending: Option<PendingFlip>,
}

/// The cluster state of one server node, shared between its sessions.
#[derive(Debug, Default)]
pub struct ClusterMember {
    inner: Mutex<MemberInner>,
    /// Statements refused because the key hashes to another node.
    pub wrong_shard_rejects: AtomicU64,
    /// Statements refused because a flip window held their table.
    pub flip_pending_rejects: AtomicU64,
}

impl ClusterMember {
    /// A member with no map installed (accepts everything locally until
    /// the coordinator calls `SetMap`).
    pub fn new() -> ClusterMember {
        ClusterMember::default()
    }

    /// Installs the routing map; this node owns slot `self_index`.
    pub fn install_map(&self, map: ShardMap, self_index: usize) -> Result<()> {
        if self_index >= map.nodes.len() {
            return Err(Error::Eval(format!(
                "self index {self_index} out of range for {} nodes",
                map.nodes.len()
            )));
        }
        let mut inner = self.inner.lock();
        inner.map = Some(map);
        inner.self_index = self_index;
        Ok(())
    }

    /// The installed map, if any.
    pub fn map(&self) -> Option<ShardMap> {
        self.inner.lock().map.clone()
    }

    /// Stages a flip; fails if one is already pending.
    pub fn begin_prepare(&self, sql: String, flip: FlipPlan) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.pending.is_some() {
            return Err(Error::Eval("a schema flip is already pending".into()));
        }
        inner.pending = Some(PendingFlip {
            sql,
            flip,
            committed: false,
        });
        Ok(())
    }

    /// The staged DDL to execute at `Commit`.
    pub fn commit_sql(&self) -> Result<String> {
        let inner = self.inner.lock();
        match &inner.pending {
            Some(p) if !p.committed => Ok(p.sql.clone()),
            Some(_) => Err(Error::Eval("flip already committed".into())),
            None => Err(Error::Eval("no prepared flip to commit".into())),
        }
    }

    /// Marks the staged flip committed (its DDL ran). If nothing is
    /// held back for an exchange the flip is complete and cleared.
    pub fn mark_committed(&self) {
        let mut inner = self.inner.lock();
        if let Some(p) = &mut inner.pending {
            p.committed = true;
            if p.flip.holdback.is_empty() {
                inner.pending = None;
            }
        }
    }

    /// Drops any staged flip and unblocks everything.
    pub fn abort_flip(&self) {
        self.inner.lock().pending = None;
    }

    /// Ends the post-commit exchange hold.
    pub fn end_exchange(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        match &inner.pending {
            Some(p) if p.committed => {
                inner.pending = None;
                Ok(())
            }
            Some(_) => Err(Error::Eval("flip not committed yet".into())),
            None => Ok(()), // idempotent: no exchange hold to release
        }
    }

    /// `cluster.*` gauges for `STATUS`.
    pub fn status(&self) -> Vec<(String, i64)> {
        let inner = self.inner.lock();
        vec![
            (
                "cluster.nodes".into(),
                inner.map.as_ref().map_or(0, |m| m.nodes.len()) as i64,
            ),
            (
                "cluster.shardmap_version".into(),
                inner.map.as_ref().map_or(0, |m| m.version) as i64,
            ),
            ("cluster.self_index".into(), inner.self_index as i64),
            (
                "cluster.flip_pending".into(),
                match &inner.pending {
                    None => 0,
                    Some(p) if !p.committed => 1,
                    Some(_) => 2, // committed, exchange hold
                },
            ),
            (
                "cluster.wrong_shard_rejects".into(),
                self.wrong_shard_rejects.load(Ordering::Relaxed) as i64,
            ),
            (
                "cluster.flip_pending_rejects".into(),
                self.flip_pending_rejects.load(Ordering::Relaxed) as i64,
            ),
        ]
    }

    /// The enforcement hook, called on every non-coordinator statement
    /// before it executes. `Some(resp)` refuses the statement:
    ///
    /// - `FLIP_PENDING` when the statement touches a table inside a
    ///   flip window (retry after backoff);
    /// - `WRONG_SHARD` when a single-key statement's key hashes to
    ///   another node (re-fetch the map and re-route);
    /// - a plain error for migration DDL, which on a member must come
    ///   through the coordinator's two-phase opcodes.
    ///
    /// Statements without a fully-bound shard key (scans, multi-row
    /// predicates) run locally — that is the scatter leg of a
    /// scatter-gather, and each node answering from its own partition
    /// is exactly the intent.
    pub fn reject(&self, db: &Database, stmt: &Statement) -> Option<Response> {
        if let Some(resp) = self.flip_gate(stmt) {
            return Some(resp);
        }
        if matches!(
            stmt,
            Statement::CreateTableAs { .. } | Statement::FinalizeMigration { .. }
        ) {
            return Some(Response::Err {
                retryable: false,
                code: err_code::GENERAL,
                message: "migration DDL on a cluster member must go through the flip coordinator"
                    .into(),
            });
        }
        let (map, self_index) = {
            let inner = self.inner.lock();
            (inner.map.clone()?, inner.self_index)
        };
        if map.nodes.len() <= 1 {
            return None;
        }
        let keys = match stmt {
            Statement::Insert {
                table,
                columns,
                rows,
            } => insert_keys(db, table, columns, rows)?,
            Statement::Update {
                table, predicate, ..
            }
            | Statement::Delete { table, predicate } => {
                vec![(table.clone(), predicate_key(db, table, predicate.as_ref())?)]
            }
            Statement::Select(spec) if spec.inputs.len() == 1 => {
                let table = spec.inputs[0].table.clone();
                let key = predicate_key(db, &table, spec.filter.as_ref())?;
                vec![(table, key)]
            }
            _ => return None,
        };
        for (table, key) in keys {
            let owner = map.owner_of(&key);
            if owner != self_index {
                self.wrong_shard_rejects.fetch_add(1, Ordering::Relaxed);
                return Some(Response::Err {
                    retryable: true,
                    code: err_code::WRONG_SHARD,
                    message: format!(
                        "wrong shard: key {key:?} of {table} is owned by {} (map v{})",
                        map.nodes[owner], map.version
                    ),
                });
            }
        }
        None
    }

    /// The `FLIP_PENDING` half of [`ClusterMember::reject`].
    fn flip_gate(&self, stmt: &Statement) -> Option<Response> {
        let inner = self.inner.lock();
        let p = inner.pending.as_ref()?;
        let gate = if p.committed {
            &p.flip.holdback
        } else {
            &p.flip.blocked
        };
        let t = stmt_tables(stmt).into_iter().find(|t| gate.contains(t))?;
        self.flip_pending_rejects.fetch_add(1, Ordering::Relaxed);
        Some(Response::Err {
            retryable: true,
            code: err_code::FLIP_PENDING,
            message: format!("schema flip in progress on table {t}; retry shortly"),
        })
    }
}

/// Tables a statement touches (for the flip-pending gate).
fn stmt_tables(stmt: &Statement) -> Vec<String> {
    match stmt {
        Statement::Select(spec) => spec.inputs.iter().map(|t| t.table.clone()).collect(),
        Statement::Insert { table, .. }
        | Statement::Update { table, .. }
        | Statement::Delete { table, .. } => vec![table.clone()],
        Statement::CreateTableAs { name, select, .. } => {
            let mut out: Vec<String> = select.inputs.iter().map(|t| t.table.clone()).collect();
            out.push(name.clone());
            out
        }
        _ => Vec::new(),
    }
}

/// Shard keys of every row in an `INSERT`, in the primary key's
/// declared column order. `None` (skip the check, let execution fail or
/// succeed on its own) when the table or its key is unknown, or a key
/// column is absent from the insert's column list.
fn insert_keys(
    db: &Database,
    table: &str,
    columns: &[String],
    rows: &[bullfrog_common::Row],
) -> Option<Vec<(String, Vec<Value>)>> {
    let t = db.table(table).ok()?;
    let schema = t.schema();
    if schema.primary_key.is_empty() {
        return None;
    }
    let mut positions = Vec::with_capacity(schema.primary_key.len());
    for pk in &schema.primary_key {
        let pos = if columns.is_empty() {
            schema.col_index(pk).ok()?
        } else {
            columns.iter().position(|c| c.eq_ignore_ascii_case(pk))?
        };
        positions.push(pos);
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut key = Vec::with_capacity(positions.len());
        for &pos in &positions {
            key.push(row.0.get(pos)?.clone());
        }
        out.push((table.to_string(), key));
    }
    Some(out)
}

/// The shard key a predicate pins, when its conjuncts equate every
/// primary-key column of `table` to a literal. `None` for partial or
/// non-equality predicates — those are scans and run locally.
fn predicate_key(db: &Database, table: &str, predicate: Option<&Expr>) -> Option<Vec<Value>> {
    let pred = predicate?;
    let t = db.table(table).ok()?;
    let schema = t.schema();
    if schema.primary_key.is_empty() {
        return None;
    }
    let mut bound: Vec<(String, Value)> = Vec::new();
    for c in conjuncts(pred) {
        if let Expr::Cmp(CmpOp::Eq, a, b) = &c {
            let (col, lit) = match (&**a, &**b) {
                (Expr::Col(cr), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(cr)) => {
                    (cr.column.clone(), v.clone())
                }
                _ => continue,
            };
            bound.push((col, lit));
        }
    }
    let mut key = Vec::with_capacity(schema.primary_key.len());
    for pk in &schema.primary_key {
        let v = bound
            .iter()
            .find(|(c, _)| c.eq_ignore_ascii_case(pk))
            .map(|(_, v)| v.clone())?;
        key.push(v);
    }
    Some(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    #[test]
    fn shard_map_owner_is_deterministic() {
        let map = ShardMap::new(vec!["a:1".into(), "b:2".into(), "c:3".into()]);
        let key = vec![Value::Int(42)];
        let o = map.owner_of(&key);
        for _ in 0..8 {
            assert_eq!(map.owner_of(&key), o);
        }
        // Different keys spread across slots.
        let slots: HashSet<usize> = (0..64).map(|i| map.owner_of(&[Value::Int(i)])).collect();
        assert!(slots.len() > 1);
    }

    #[test]
    fn cluster_req_round_trip() {
        let map = ShardMap {
            version: 7,
            nodes: vec!["127.0.0.1:7701".into(), "127.0.0.1:7702".into()],
        };
        for op in [
            ClusterReq::GetMap,
            ClusterReq::SetMap {
                self_index: 1,
                map: map.clone(),
            },
            ClusterReq::Prepare {
                sql: "CREATE TABLE t2 AS (SELECT id FROM t)".into(),
            },
            ClusterReq::Commit,
            ClusterReq::Abort,
            ClusterReq::EndExchange,
        ] {
            let mut buf = BytesMut::new();
            op.encode_into(&mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(ClusterReq::decode(&mut bytes).unwrap(), op);
            assert!(bytes.is_empty());
        }
    }

    #[test]
    fn exchange_spec_round_trip() {
        let spec = ExchangeSpec {
            table: "owner_totals".into(),
            key_cols: vec!["owner".into()],
            aggs: vec![
                ("total".into(), AggFunc::Sum),
                ("n".into(), AggFunc::Count),
                ("lo".into(), AggFunc::Min),
                ("hi".into(), AggFunc::Max),
            ],
        };
        let mut buf = BytesMut::new();
        spec.encode_into(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(ExchangeSpec::decode(&mut bytes).unwrap(), spec);
        assert!(bytes.is_empty());
    }

    #[test]
    fn member_flip_window_gates() {
        let m = ClusterMember::new();
        let flip = FlipPlan {
            blocked: ["accounts".to_string(), "accounts_v2".to_string()]
                .into_iter()
                .collect(),
            holdback: HashSet::new(),
            exchange: Vec::new(),
        };
        m.begin_prepare(
            "CREATE TABLE accounts_v2 AS (SELECT id FROM accounts)".into(),
            flip,
        )
        .unwrap();
        assert!(m
            .begin_prepare(
                "x".into(),
                FlipPlan {
                    blocked: HashSet::new(),
                    holdback: HashSet::new(),
                    exchange: Vec::new(),
                }
            )
            .is_err());
        assert!(m.commit_sql().unwrap().starts_with("CREATE TABLE"));
        m.mark_committed();
        // No holdback: the flip is fully cleared.
        assert!(m.commit_sql().is_err());
        assert_eq!(m.end_exchange().ok(), Some(()));
    }

    #[test]
    fn member_holdback_until_end_exchange() {
        let m = ClusterMember::new();
        let flip = FlipPlan {
            blocked: ["t".to_string(), "agg".to_string()].into_iter().collect(),
            holdback: ["agg".to_string()].into_iter().collect(),
            exchange: vec![ExchangeSpec {
                table: "agg".into(),
                key_cols: vec!["k".into()],
                aggs: vec![("s".into(), AggFunc::Sum)],
            }],
        };
        m.begin_prepare("sql".into(), flip).unwrap();
        m.mark_committed();
        // Still pending (exchange hold), and a new prepare is refused.
        assert!(m
            .begin_prepare(
                "y".into(),
                FlipPlan {
                    blocked: HashSet::new(),
                    holdback: HashSet::new(),
                    exchange: Vec::new(),
                }
            )
            .is_err());
        m.end_exchange().unwrap();
        assert!(m
            .begin_prepare(
                "y".into(),
                FlipPlan {
                    blocked: HashSet::new(),
                    holdback: HashSet::new(),
                    exchange: Vec::new(),
                }
            )
            .is_ok());
    }

    #[test]
    fn key_extraction_against_live_catalog() {
        use bullfrog_common::{ColumnDef, DataType, TableSchema};
        let db = Database::new();
        db.create_table(
            TableSchema::new(
                "accounts",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("balance", DataType::Int),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        // INSERT in schema order and with an explicit column list.
        let keys = insert_keys(&db, "accounts", &[], &[row![5, 100]]).unwrap();
        assert_eq!(keys[0].1, vec![Value::Int(5)]);
        let cols = vec!["balance".to_string(), "id".to_string()];
        let keys = insert_keys(&db, "accounts", &cols, &[row![100, 5]]).unwrap();
        assert_eq!(keys[0].1, vec![Value::Int(5)]);
        // Predicate pinning the full key, either operand order.
        let pred = Expr::column("id").eq(Expr::lit(9));
        assert_eq!(
            predicate_key(&db, "accounts", Some(&pred)),
            Some(vec![Value::Int(9)])
        );
        let pred = Expr::lit(9).eq(Expr::column("id"));
        assert_eq!(
            predicate_key(&db, "accounts", Some(&pred)),
            Some(vec![Value::Int(9)])
        );
        // An equality on a non-key column is a scan: no shard key.
        let pred = Expr::column("balance").eq(Expr::lit(3));
        assert_eq!(predicate_key(&db, "accounts", Some(&pred)), None);
        assert_eq!(predicate_key(&db, "accounts", None), None);
    }
}
