//! The BFNET1 wire protocol: length-prefixed binary frames over TCP.
//!
//! A connection opens with an 8-byte preamble — the ASCII magic
//! `BFNET1`, a protocol version byte, and a reserved zero byte — so a
//! server can reject a stale or foreign client before any statement is
//! read. After the preamble both directions speak frames:
//!
//! ```text
//! +----------------+---------------------------+
//! | u32 BE length  | payload (length bytes)    |
//! +----------------+---------------------------+
//! payload = u8 opcode, opcode-specific body
//! ```
//!
//! Row and value encoding reuses the WAL's codec
//! ([`bullfrog_txn::wal::codec`]) so the wire and the log agree on what
//! a row looks like. Frames are capped at [`MAX_FRAME_BYTES`]; a peer
//! announcing a larger frame is a protocol error, not an allocation.
//!
//! ## Wire-compatible revisions within version 1
//!
//! `ERR` payloads grew a trailing error-code byte (see [`err_code`])
//! after the first release of the protocol. The byte sits at the *end*
//! of the payload and decoders treat its absence as
//! [`err_code::GENERAL`], so old clients ignore it and new clients
//! interoperate with old servers — no version bump needed. The
//! replication opcodes (`SUBSCRIBE`/`SNAPSHOT`/`REPL_ACK` requests,
//! `FRAMES`/`SNAPSHOT` responses) are new opcodes, which old peers
//! reject as unknown; they never appear unless a client asks.

use bullfrog_common::{Error, Result, Row};
use bullfrog_txn::wal::codec;
use bullfrog_txn::LogRecord;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};

/// Connection preamble: magic, version, reserved byte.
pub const PREAMBLE: [u8; 8] = *b"BFNET1\x01\x00";

/// Hard cap on a single frame's payload.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Request opcodes (client → server).
mod req {
    pub const QUERY: u8 = 0x01;
    pub const CHECKPOINT: u8 = 0x02;
    pub const STATUS: u8 = 0x03;
    pub const SHUTDOWN: u8 = 0x04;
    pub const SUBSCRIBE: u8 = 0x05;
    pub const SNAPSHOT: u8 = 0x06;
    pub const REPL_ACK: u8 = 0x07;
    pub const CLUSTER: u8 = 0x08;
    pub const HA: u8 = 0x09;
    pub const PREPARE: u8 = 0x0A;
    pub const EXECUTE: u8 = 0x0B;
    pub const CLOSE_STMT: u8 = 0x0C;
    pub const METRICS: u8 = 0x0D;
}

/// Response opcodes (server → client).
mod resp {
    pub const ROWS: u8 = 0x81;
    pub const OK: u8 = 0x82;
    pub const ERR: u8 = 0x83;
    pub const STATS: u8 = 0x84;
    pub const FRAMES: u8 = 0x85;
    pub const SNAPSHOT: u8 = 0x86;
    pub const SHARD_MAP: u8 = 0x87;
    pub const PREPARED: u8 = 0x88;
    pub const HA_STATE: u8 = 0x89;
    pub const ROWS_CHUNK: u8 = 0x8A;
    pub const METRICS: u8 = 0x8B;
}

/// Machine-readable `ERR` classification, carried as a trailing payload
/// byte so clients can pick a retry policy without parsing messages.
pub mod err_code {
    /// Anything without a more specific class (also what decoders assume
    /// when an old peer omits the byte).
    pub const GENERAL: u8 = 0;
    /// The server is at its connection cap; retry against the same node.
    pub const BUSY: u8 = 1;
    /// A write or DDL hit a read-only replica; retry against the primary
    /// named in the message.
    pub const READ_ONLY: u8 = 2;
    /// A `SUBSCRIBE` asked for log the primary has truncated; the replica
    /// must re-bootstrap from a fresh `SNAPSHOT`.
    pub const SNAPSHOT_REQUIRED: u8 = 3;
    /// A transient transaction failure (lock timeout, abort); retrying
    /// the statement may succeed.
    pub const TXN_RETRY: u8 = 4;
    /// A single-key statement reached a cluster node that does not own
    /// the key's hash slot. Re-fetch the shard map and re-route — blind
    /// retry against the same node can never succeed. The message names
    /// the owning node's address.
    pub const WRONG_SHARD: u8 = 5;
    /// A two-phase schema flip has this table blocked (prepare→commit
    /// window, or the post-commit exchange of partial aggregates). The
    /// window is bounded; retry against the same node after a short
    /// backoff.
    pub const FLIP_PENDING: u8 = 6;
    /// A replication or HA peer presented a fencing epoch older than
    /// ours (a deposed primary, or a subscriber that outran its sender).
    /// Never retryable against the same pairing: the lower-epoch side
    /// must fence or re-resolve the current primary.
    pub const STALE_EPOCH: u8 = 7;
}

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Execute one SQL statement (DML, DDL, migration DDL, or
    /// transaction control).
    Query(String),
    /// Run a checkpoint cycle now.
    Checkpoint,
    /// Report server, migration, durability, and session counters.
    Status,
    /// Gracefully shut the server down (drain sessions, sync the WAL).
    Shutdown,
    /// Replica → primary: turn this connection into a replication stream
    /// starting at `from_lsn`. `ddl_seq` is the next DDL-journal sequence
    /// the replica expects, so the primary can resend missed DDL events.
    Subscribe {
        /// First LSN the replica has not yet applied.
        from_lsn: u64,
        /// Next DDL-journal sequence number the replica expects.
        ddl_seq: u64,
        /// The subscriber's fencing epoch. A primary refuses (with
        /// [`err_code::STALE_EPOCH`]) and fences itself when the
        /// subscriber is *ahead* of it — the subscriber has seen a
        /// promotion this node missed. Trailing field; decodes as 0 from
        /// pre-HA peers.
        epoch: u64,
    },
    /// Replica → primary: send a bootstrap snapshot (checkpoint image +
    /// DDL journal).
    Snapshot,
    /// Replica → primary, on a subscribed connection: everything below
    /// `lsn` is applied on the replica (drives lag accounting and the
    /// primary's retain horizon).
    ReplAck {
        /// Exclusive upper bound of the replica's applied log prefix.
        lsn: u64,
        /// The replica's fencing epoch at ack time (trailing; 0 from
        /// pre-HA peers). A sender that sees a higher epoch than its own
        /// fences itself instead of counting the ack.
        epoch: u64,
    },
    /// Cluster control (shard-map distribution and the two-phase schema
    /// flip). Issuing any sub-operation except
    /// [`ClusterReq::GetMap`](crate::cluster::ClusterReq::GetMap) marks
    /// the connection as a cluster coordinator: its subsequent DML
    /// bypasses shard-ownership and flip-pending enforcement (same trust
    /// model as `SHUTDOWN`).
    Cluster(crate::cluster::ClusterReq),
    /// High-availability control: lease renewals, election votes, and
    /// state probes between the members of an HA group (see
    /// `bullfrog-ha`). Answered with [`Response::HaState`].
    Ha(HaReq),
    /// Parse `sql` (which may contain `?` placeholders) once and cache it
    /// in the session's statement cache under `id`. Answered with
    /// [`Response::Ok`] whose `affected` carries the placeholder count.
    /// Re-preparing an existing `id` replaces it.
    Prepare {
        /// Client-chosen statement id (scoped to this session).
        id: u64,
        /// Statement text, `?` placeholders allowed in DML expressions.
        sql: String,
    },
    /// Execute the cached statement `id`, binding `params` to its `?`
    /// placeholders left to right. Arity must match the prepared count.
    Execute {
        /// Statement id from an earlier [`Request::Prepare`].
        id: u64,
        /// Parameter values, one per placeholder.
        params: Row,
    },
    /// Evict statement `id` from the session's cache. Answered with
    /// [`Response::Ok`]; closing an unknown id is an error.
    CloseStmt {
        /// Statement id to evict.
        id: u64,
    },
    /// Report the server's full metric registry — histogram buckets,
    /// quantiles, and migration spans, not just the scalar counters
    /// `STATUS` carries. Answered with [`Response::Metrics`].
    Metrics,
}

/// An HA sub-operation (body of [`Request::Ha`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaReq {
    /// Leader → member: extend my lease at `epoch` for `ttl_ms`.
    /// Granted unless the member has adopted a higher epoch.
    Renew {
        /// The leader's fencing epoch.
        epoch: u64,
        /// The leader's advertised client address.
        leader: String,
        /// Lease duration from receipt, in milliseconds.
        ttl_ms: u64,
    },
    /// Candidate → member: grant me the epoch bump to `epoch`. Granted
    /// iff `epoch` is above the member's, the member's view of the
    /// current lease has lapsed, and it has not voted for a different
    /// candidate at that epoch (the ballot is persisted).
    Vote {
        /// The epoch the candidate wants to lead at.
        epoch: u64,
        /// The candidate's advertised client address.
        candidate: String,
        /// Operator-forced election (planned switchover): the granter
        /// skips the live-lease refusal, though the persisted one-vote-
        /// per-epoch ballot still applies. Absent on frames from older
        /// peers (decodes `false`).
        forced: bool,
    },
    /// Operator → member: start an election now instead of waiting out
    /// the lease (planned failover). Majority voting still applies.
    Promote,
    /// Read the member's HA state (role, epoch, leader, lease).
    State,
}

/// One DDL-journal event in a [`Response::Frames`] batch, opaque to the
/// wire layer (`bullfrog-repl` owns the payload encoding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDdl {
    /// Journal sequence number (dense, starting at 0).
    pub seq: u64,
    /// Apply the event once the replica's applied LSN reaches this.
    pub apply_at_lsn: u64,
    /// Encoded event.
    pub payload: Bytes,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Result set: column names plus rows.
    Rows {
        /// Output column names.
        names: Vec<String>,
        /// Output rows.
        rows: Vec<Row>,
    },
    /// One slice of a result set too large for a single frame. The server
    /// splits oversized row sets into a sequence of these (each carrying
    /// the column names, so any chunk is self-describing); `more = false`
    /// marks the last chunk. [`read_response`] reassembles the sequence
    /// into one [`Response::Rows`] — client code never sees this variant
    /// unless it reads raw frames.
    RowsChunk {
        /// Whether further chunks of the same result set follow.
        more: bool,
        /// Output column names (repeated on every chunk).
        names: Vec<String>,
        /// This chunk's rows.
        rows: Vec<Row>,
    },
    /// Statement succeeded; `affected` rows were written (0 for DDL and
    /// transaction control).
    Ok {
        /// Rows written.
        affected: u64,
    },
    /// Statement failed. The connection stays usable.
    Err {
        /// Whether retrying the statement may succeed (lock timeouts).
        retryable: bool,
        /// Machine-readable classification (see [`err_code`]).
        code: u8,
        /// Human-readable cause.
        message: String,
    },
    /// Counter report: ordered `name → value` pairs.
    Stats(Vec<(String, i64)>),
    /// Full metric snapshot: counters, gauges, latency histograms
    /// (sparse buckets plus precomputed p50/p90/p99/p999 for consumers
    /// that do not carry the bucket layout), and retained migration
    /// spans. The quantiles are derivable from the buckets, so decoding
    /// discards them and the snapshot round-trips exactly.
    Metrics(bullfrog_obs::MetricsSnapshot),
    /// Primary → replica: a batch of replication state. `records` are
    /// committed-durable log records in LSN order; `ddl` are journal
    /// events the replica is missing; `durable_lsn` is the primary's
    /// merged durable horizon (for lag reporting, also sent with empty
    /// batches as a heartbeat).
    Frames {
        /// The primary's merged durable horizon at send time.
        durable_lsn: u64,
        /// DDL-journal events at or above the subscriber's `ddl_seq`.
        ddl: Vec<WireDdl>,
        /// `(lsn, record)` pairs, dense and ascending.
        records: Vec<(u64, LogRecord)>,
        /// The sender's fencing epoch (trailing; 0 from pre-HA peers).
        /// A replica that has adopted a higher epoch drops the
        /// connection instead of applying — frames from a deposed
        /// primary must never land.
        epoch: u64,
    },
    /// Bootstrap snapshot; payload encoding is owned by `bullfrog-repl`.
    Snapshot {
        /// Encoded snapshot (checkpoint image + DDL journal).
        payload: Bytes,
    },
    /// Reply to [`ClusterReq::GetMap`](crate::cluster::ClusterReq): the
    /// node's installed shard map.
    ShardMap(crate::cluster::ShardMap),
    /// Reply to [`ClusterReq::Prepare`](crate::cluster::ClusterReq): the
    /// flip is staged; `exchange` lists the output tables whose partial
    /// aggregates must be shipped between nodes after every member
    /// commits (empty for 1:1 migrations).
    Prepared {
        /// Cross-node merge work the coordinator owes after commit.
        exchange: Vec<crate::cluster::ExchangeSpec>,
    },
    /// Reply to any [`Request::Ha`] operation: the member's HA state,
    /// plus whether the specific operation (renew/vote/promote) was
    /// granted.
    HaState {
        /// Whether the renew/vote/promote was granted (`true` for pure
        /// `State` probes).
        granted: bool,
        /// The member's fencing epoch after handling the request.
        epoch: u64,
        /// The member's role: `leader`, `follower`, `candidate`, or
        /// `witness`.
        role: String,
        /// The leader this member currently recognises (may be empty).
        leader: String,
        /// Milliseconds left on the member's view of the current lease
        /// (0 = lapsed or none).
        lease_ms: u64,
    },
}

impl Request {
    /// Encodes the request as one frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Request::Query(sql) => {
                buf.put_u8(req::QUERY);
                put_str(&mut buf, sql);
            }
            Request::Checkpoint => buf.put_u8(req::CHECKPOINT),
            Request::Status => buf.put_u8(req::STATUS),
            Request::Shutdown => buf.put_u8(req::SHUTDOWN),
            Request::Subscribe {
                from_lsn,
                ddl_seq,
                epoch,
            } => {
                buf.put_u8(req::SUBSCRIBE);
                buf.put_u64(*from_lsn);
                buf.put_u64(*ddl_seq);
                // Trailing so a pre-HA decoder sees a valid payload.
                buf.put_u64(*epoch);
            }
            Request::Snapshot => buf.put_u8(req::SNAPSHOT),
            Request::ReplAck { lsn, epoch } => {
                buf.put_u8(req::REPL_ACK);
                buf.put_u64(*lsn);
                buf.put_u64(*epoch);
            }
            Request::Cluster(op) => {
                buf.put_u8(req::CLUSTER);
                op.encode_into(&mut buf);
            }
            Request::Ha(op) => {
                buf.put_u8(req::HA);
                match op {
                    HaReq::Renew {
                        epoch,
                        leader,
                        ttl_ms,
                    } => {
                        buf.put_u8(1);
                        buf.put_u64(*epoch);
                        put_str(&mut buf, leader);
                        buf.put_u64(*ttl_ms);
                    }
                    HaReq::Vote {
                        epoch,
                        candidate,
                        forced,
                    } => {
                        buf.put_u8(2);
                        buf.put_u64(*epoch);
                        put_str(&mut buf, candidate);
                        buf.put_u8(u8::from(*forced));
                    }
                    HaReq::Promote => buf.put_u8(3),
                    HaReq::State => buf.put_u8(4),
                }
            }
            Request::Prepare { id, sql } => {
                buf.put_u8(req::PREPARE);
                buf.put_u64(*id);
                put_str(&mut buf, sql);
            }
            Request::Execute { id, params } => {
                buf.put_u8(req::EXECUTE);
                buf.put_u64(*id);
                codec::put_row(&mut buf, params);
            }
            Request::CloseStmt { id } => {
                buf.put_u8(req::CLOSE_STMT);
                buf.put_u64(*id);
            }
            Request::Metrics => buf.put_u8(req::METRICS),
        }
        buf.freeze()
    }

    /// Decodes a frame payload as a request.
    pub fn decode(mut payload: Bytes) -> Result<Request> {
        match get_u8(&mut payload)? {
            req::QUERY => Ok(Request::Query(get_str(&mut payload)?)),
            req::CHECKPOINT => Ok(Request::Checkpoint),
            req::STATUS => Ok(Request::Status),
            req::SHUTDOWN => Ok(Request::Shutdown),
            req::SUBSCRIBE => Ok(Request::Subscribe {
                from_lsn: codec::get_u64(&mut payload)?,
                ddl_seq: codec::get_u64(&mut payload)?,
                epoch: get_trailing_u64(&mut payload)?,
            }),
            req::SNAPSHOT => Ok(Request::Snapshot),
            req::REPL_ACK => Ok(Request::ReplAck {
                lsn: codec::get_u64(&mut payload)?,
                epoch: get_trailing_u64(&mut payload)?,
            }),
            req::CLUSTER => Ok(Request::Cluster(crate::cluster::ClusterReq::decode(
                &mut payload,
            )?)),
            req::HA => {
                let op = match get_u8(&mut payload)? {
                    1 => HaReq::Renew {
                        epoch: codec::get_u64(&mut payload)?,
                        leader: get_str(&mut payload)?,
                        ttl_ms: codec::get_u64(&mut payload)?,
                    },
                    2 => HaReq::Vote {
                        epoch: codec::get_u64(&mut payload)?,
                        candidate: get_str(&mut payload)?,
                        // Trailing byte; absent on frames from older
                        // peers (an unforced, ordinary ballot).
                        forced: !payload.is_empty() && get_u8(&mut payload)? != 0,
                    },
                    3 => HaReq::Promote,
                    4 => HaReq::State,
                    other => {
                        return Err(Error::Eval(format!("unknown HA sub-op {other}")));
                    }
                };
                Ok(Request::Ha(op))
            }
            req::PREPARE => Ok(Request::Prepare {
                id: codec::get_u64(&mut payload)?,
                sql: get_str(&mut payload)?,
            }),
            req::EXECUTE => Ok(Request::Execute {
                id: codec::get_u64(&mut payload)?,
                params: codec::get_row(&mut payload)?,
            }),
            req::CLOSE_STMT => Ok(Request::CloseStmt {
                id: codec::get_u64(&mut payload)?,
            }),
            req::METRICS => Ok(Request::Metrics),
            other => Err(Error::Eval(format!("unknown request opcode {other:#04x}"))),
        }
    }
}

impl Response {
    /// Encodes the response as one frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            Response::Rows { names, rows } => {
                buf.put_u8(resp::ROWS);
                buf.put_u32(names.len() as u32);
                for n in names {
                    put_str(&mut buf, n);
                }
                buf.put_u32(rows.len() as u32);
                for r in rows {
                    codec::put_row(&mut buf, r);
                }
            }
            Response::RowsChunk { more, names, rows } => {
                buf.put_u8(resp::ROWS_CHUNK);
                buf.put_u8(u8::from(*more));
                buf.put_u32(names.len() as u32);
                for n in names {
                    put_str(&mut buf, n);
                }
                buf.put_u32(rows.len() as u32);
                for r in rows {
                    codec::put_row(&mut buf, r);
                }
            }
            Response::Ok { affected } => {
                buf.put_u8(resp::OK);
                buf.put_u64(*affected);
            }
            Response::Err {
                retryable,
                code,
                message,
            } => {
                buf.put_u8(resp::ERR);
                buf.put_u8(u8::from(*retryable));
                put_str(&mut buf, message);
                // Trailing so a pre-code decoder sees a valid payload.
                buf.put_u8(*code);
            }
            Response::Stats(pairs) => {
                buf.put_u8(resp::STATS);
                buf.put_u32(pairs.len() as u32);
                for (k, v) in pairs {
                    put_str(&mut buf, k);
                    buf.put_u64(*v as u64);
                }
            }
            Response::Metrics(snap) => {
                buf.put_u8(resp::METRICS);
                put_metrics(&mut buf, snap);
            }
            Response::Frames {
                durable_lsn,
                ddl,
                records,
                epoch,
            } => {
                buf.put_u8(resp::FRAMES);
                buf.put_u64(*durable_lsn);
                buf.put_u32(ddl.len() as u32);
                for d in ddl {
                    buf.put_u64(d.seq);
                    buf.put_u64(d.apply_at_lsn);
                    buf.put_u32(d.payload.len() as u32);
                    buf.extend_from_slice(&d.payload);
                }
                buf.put_u32(records.len() as u32);
                for (lsn, r) in records {
                    buf.put_u64(*lsn);
                    codec::put_record(&mut buf, r);
                }
                // Trailing so a pre-HA decoder sees a valid payload.
                buf.put_u64(*epoch);
            }
            Response::Snapshot { payload } => {
                buf.put_u8(resp::SNAPSHOT);
                buf.put_u32(payload.len() as u32);
                buf.extend_from_slice(payload);
            }
            Response::ShardMap(map) => {
                buf.put_u8(resp::SHARD_MAP);
                map.encode_into(&mut buf);
            }
            Response::Prepared { exchange } => {
                buf.put_u8(resp::PREPARED);
                buf.put_u32(exchange.len() as u32);
                for e in exchange {
                    e.encode_into(&mut buf);
                }
            }
            Response::HaState {
                granted,
                epoch,
                role,
                leader,
                lease_ms,
            } => {
                buf.put_u8(resp::HA_STATE);
                buf.put_u8(u8::from(*granted));
                buf.put_u64(*epoch);
                put_str(&mut buf, role);
                put_str(&mut buf, leader);
                buf.put_u64(*lease_ms);
            }
        }
        buf.freeze()
    }

    /// Decodes a frame payload as a response.
    pub fn decode(mut payload: Bytes) -> Result<Response> {
        match get_u8(&mut payload)? {
            resp::ROWS => {
                let n = codec::get_u32(&mut payload)? as usize;
                let mut names = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    names.push(get_str(&mut payload)?);
                }
                let n = codec::get_u32(&mut payload)? as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push(codec::get_row(&mut payload)?);
                }
                Ok(Response::Rows { names, rows })
            }
            resp::ROWS_CHUNK => {
                let more = get_u8(&mut payload)? != 0;
                let n = codec::get_u32(&mut payload)? as usize;
                let mut names = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    names.push(get_str(&mut payload)?);
                }
                let n = codec::get_u32(&mut payload)? as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push(codec::get_row(&mut payload)?);
                }
                Ok(Response::RowsChunk { more, names, rows })
            }
            resp::OK => Ok(Response::Ok {
                affected: codec::get_u64(&mut payload)?,
            }),
            resp::ERR => {
                let retryable = get_u8(&mut payload)? != 0;
                let message = get_str(&mut payload)?;
                // Absent on frames from pre-code peers.
                let code = get_u8(&mut payload).unwrap_or(err_code::GENERAL);
                Ok(Response::Err {
                    retryable,
                    code,
                    message,
                })
            }
            resp::STATS => {
                let n = codec::get_u32(&mut payload)? as usize;
                let mut pairs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let k = get_str(&mut payload)?;
                    let v = codec::get_u64(&mut payload)? as i64;
                    pairs.push((k, v));
                }
                Ok(Response::Stats(pairs))
            }
            resp::METRICS => Ok(Response::Metrics(get_metrics(&mut payload)?)),
            resp::FRAMES => {
                let durable_lsn = codec::get_u64(&mut payload)?;
                let n = codec::get_u32(&mut payload)? as usize;
                let mut ddl = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let seq = codec::get_u64(&mut payload)?;
                    let apply_at_lsn = codec::get_u64(&mut payload)?;
                    ddl.push(WireDdl {
                        seq,
                        apply_at_lsn,
                        payload: get_bytes(&mut payload)?,
                    });
                }
                let n = codec::get_u32(&mut payload)? as usize;
                let mut records = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let lsn = codec::get_u64(&mut payload)?;
                    records.push((lsn, codec::get_record(&mut payload)?));
                }
                Ok(Response::Frames {
                    durable_lsn,
                    ddl,
                    records,
                    epoch: get_trailing_u64(&mut payload)?,
                })
            }
            resp::SNAPSHOT => Ok(Response::Snapshot {
                payload: get_bytes(&mut payload)?,
            }),
            resp::SHARD_MAP => Ok(Response::ShardMap(crate::cluster::ShardMap::decode(
                &mut payload,
            )?)),
            resp::PREPARED => {
                let n = codec::get_u32(&mut payload)? as usize;
                let mut exchange = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    exchange.push(crate::cluster::ExchangeSpec::decode(&mut payload)?);
                }
                Ok(Response::Prepared { exchange })
            }
            resp::HA_STATE => Ok(Response::HaState {
                granted: get_u8(&mut payload)? != 0,
                epoch: codec::get_u64(&mut payload)?,
                role: get_str(&mut payload)?,
                leader: get_str(&mut payload)?,
                lease_ms: codec::get_u64(&mut payload)?,
            }),
            other => Err(Error::Eval(format!("unknown response opcode {other:#04x}"))),
        }
    }

    /// Builds the error response for `e`, carrying its retryability.
    pub fn from_error(e: &Error) -> Response {
        // A fenced ex-primary reports READ_ONLY so clients re-resolve the
        // leader from the message hint, exactly like a replica rejection.
        if let Error::Fenced { .. } = e {
            return Response::Err {
                retryable: false,
                code: err_code::READ_ONLY,
                message: e.to_string(),
            };
        }
        Response::Err {
            retryable: e.is_retryable(),
            code: if e.is_retryable() {
                err_code::TXN_RETRY
            } else {
                err_code::GENERAL
            },
            message: e.to_string(),
        }
    }
}

/// Writes the connection preamble.
pub fn write_preamble(w: &mut impl Write) -> std::io::Result<()> {
    w.write_all(&PREAMBLE)
}

/// Reads and validates the connection preamble.
pub fn read_preamble(r: &mut impl Read) -> Result<()> {
    let mut got = [0u8; 8];
    r.read_exact(&mut got)
        .map_err(|e| Error::Eval(format!("preamble read failed: {e}")))?;
    if got[..6] != PREAMBLE[..6] {
        return Err(Error::Eval("bad protocol magic (want BFNET1)".into()));
    }
    if got[6] != PREAMBLE[6] {
        return Err(Error::Eval(format!(
            "unsupported protocol version {} (want {})",
            got[6], PREAMBLE[6]
        )));
    }
    Ok(())
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &Bytes) -> std::io::Result<()> {
    let len = (payload.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload. `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Bytes>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(Error::Eval(format!("frame read failed: {e}"))),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(Error::Eval(format!(
            "frame of {len} bytes exceeds cap {MAX_FRAME_BYTES}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|e| Error::Eval(format!("frame body read failed: {e}")))?;
    Ok(Some(Bytes::copy_from_slice(&payload)))
}

/// Soft target for one chunk of a split row set — comfortably under
/// [`MAX_FRAME_BYTES`] so names + framing never push a chunk over the cap.
const CHUNK_TARGET_BYTES: usize = 4 << 20;

/// Writes one logical response as one or more frames. [`Response::Rows`]
/// payloads that would exceed the frame cap are split into a
/// `ROWS_CHUNK` sequence (continuation flag set on all but the last);
/// results that fit stay a single plain `ROWS` frame, so old clients
/// only ever see the new opcode on results they could not have received
/// at all before. A single row too large for any frame errors that one
/// statement instead of killing the session — even when earlier chunks
/// of the same result already went out: an `ERR` frame is a legal
/// terminator of a chunk sequence (see [`read_response`]), so the
/// stream stays in frame sync and the statement alone fails.
pub fn write_response(w: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let (names, rows) = match response {
        Response::Rows { names, rows } => (names, rows),
        other => return write_frame(w, &other.encode()),
    };
    let mut names_buf = BytesMut::new();
    names_buf.put_u32(names.len() as u32);
    for n in names {
        put_str(&mut names_buf, n);
    }
    // opcode + continuation flag + names + row count.
    let header = 2 + names_buf.len() + 4;
    let budget = CHUNK_TARGET_BYTES.max(header + 1);

    // One-chunk lookahead: `pending` only flushes (with the continuation
    // flag set) once a second chunk exists, so single-chunk results fall
    // through to the plain ROWS encoding.
    let mut pending: Option<(u32, BytesMut)> = None;
    let mut cur = BytesMut::new();
    let mut cur_rows: u32 = 0;
    let mut scratch = BytesMut::new();
    for row in rows {
        scratch.clear();
        codec::put_row(&mut scratch, row);
        if header + scratch.len() > MAX_FRAME_BYTES {
            let err = Response::Err {
                retryable: false,
                code: err_code::GENERAL,
                message: format!(
                    "result row of {} bytes exceeds the {MAX_FRAME_BYTES}-byte frame cap",
                    scratch.len()
                ),
            };
            return write_frame(w, &err.encode());
        }
        if !cur.is_empty() && header + cur.len() + scratch.len() > budget {
            if let Some((n, body)) = pending.take() {
                write_rows_chunk(w, &names_buf, n, &body, true)?;
            }
            pending = Some((cur_rows, std::mem::take(&mut cur)));
            cur_rows = 0;
        }
        cur.extend_from_slice(&scratch);
        cur_rows += 1;
    }
    match pending.take() {
        None => {
            let mut payload = BytesMut::with_capacity(1 + names_buf.len() + 4 + cur.len());
            payload.put_u8(resp::ROWS);
            payload.extend_from_slice(&names_buf);
            payload.put_u32(cur_rows);
            payload.extend_from_slice(&cur);
            write_frame(w, &payload.freeze())
        }
        Some((n, body)) => {
            write_rows_chunk(w, &names_buf, n, &body, true)?;
            write_rows_chunk(w, &names_buf, cur_rows, &cur, false)
        }
    }
}

fn write_rows_chunk(
    w: &mut impl Write,
    names_buf: &BytesMut,
    n_rows: u32,
    body: &[u8],
    more: bool,
) -> std::io::Result<()> {
    let mut payload = BytesMut::with_capacity(2 + names_buf.len() + 4 + body.len());
    payload.put_u8(resp::ROWS_CHUNK);
    payload.put_u8(u8::from(more));
    payload.extend_from_slice(names_buf);
    payload.put_u32(n_rows);
    payload.extend_from_slice(body);
    write_frame(w, &payload.freeze())
}

/// Reads one logical response, reassembling a `ROWS_CHUNK` sequence into
/// a single [`Response::Rows`]. `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// An `ERR` frame is a legal terminator of a chunk sequence: the writer
/// hit a row it could not encode (over the frame cap) after earlier
/// chunks had already flushed. The partial rows are discarded and the
/// `ERR` becomes the statement's response, keeping the stream in frame
/// sync — the next frame belongs to the next statement.
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let (mut more, names, mut all_rows) = match Response::decode(payload)? {
        Response::RowsChunk { more, names, rows } => (more, names, rows),
        other => return Ok(Some(other)),
    };
    while more {
        let Some(payload) = read_frame(r)? else {
            return Err(Error::Eval(
                "connection closed mid row-chunk sequence".into(),
            ));
        };
        match Response::decode(payload)? {
            Response::RowsChunk { more: m, rows, .. } => {
                all_rows.extend(rows);
                more = m;
            }
            err @ Response::Err { .. } => return Ok(Some(err)),
            other => {
                return Err(Error::Eval(format!(
                    "expected a row chunk continuation, got {other:?}"
                )))
            }
        }
    }
    Ok(Some(Response::Rows {
        names,
        rows: all_rows,
    }))
}

/// Encodes a `STATS` frame payload from borrowed keys — the server's
/// `STATUS` fast path. Decodes as [`Response::Stats`]; byte-identical
/// to `Response::Stats(pairs.to_owned()).encode()` without cloning a
/// key string per pair.
pub fn encode_stats(pairs: &[(&str, i64)]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(resp::STATS);
    buf.put_u32(pairs.len() as u32);
    for (k, v) in pairs {
        put_str(&mut buf, k);
        buf.put_u64(*v as u64);
    }
    buf.freeze()
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = codec::get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(Error::Eval(format!(
            "truncated string: want {len} bytes, have {}",
            buf.len()
        )));
    }
    let s = String::from_utf8(buf.slice(..len).to_vec())
        .map_err(|_| Error::Eval("string field is not UTF-8".into()))?;
    *buf = buf.slice(len..);
    Ok(s)
}

pub(crate) fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.is_empty() {
        return Err(Error::Eval("truncated frame: missing byte".into()));
    }
    Ok(buf.get_u8())
}

/// Reads a u64 appended after the pre-HA payload; absent on frames from
/// older peers, in which case it defaults to 0 (epoch zero = unfenced).
pub(crate) fn get_trailing_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.is_empty() {
        return Ok(0);
    }
    codec::get_u64(buf)
}

/// Encodes a [`bullfrog_obs::MetricsSnapshot`] as the `METRICS` body.
/// Histograms go out sparse (non-empty buckets only) with four
/// precomputed quantiles in front, so a consumer without the bucket
/// layout can still read p50/p99 straight off the wire.
fn put_metrics(buf: &mut BytesMut, snap: &bullfrog_obs::MetricsSnapshot) {
    buf.put_u64(snap.uptime_us);
    buf.put_u32(snap.counters.len() as u32);
    for (k, v) in &snap.counters {
        put_str(buf, k);
        buf.put_u64(*v);
    }
    buf.put_u32(snap.gauges.len() as u32);
    for (k, v) in &snap.gauges {
        put_str(buf, k);
        buf.put_u64(*v as u64);
    }
    buf.put_u32(snap.histograms.len() as u32);
    for (k, h) in &snap.histograms {
        put_str(buf, k);
        buf.put_u64(h.sum);
        for q in [0.50, 0.90, 0.99, 0.999] {
            buf.put_u64(h.quantile(q));
        }
        let sparse = h.sparse();
        buf.put_u32(sparse.len() as u32);
        for (i, c) in sparse {
            buf.put_u32(i);
            buf.put_u64(c);
        }
    }
    buf.put_u32(snap.spans.len() as u32);
    for s in &snap.spans {
        put_str(buf, &s.name);
        buf.put_u64(s.detail);
        buf.put_u64(s.start_us);
        buf.put_u64(s.end_us);
    }
    buf.put_u64(snap.spans_dropped);
}

/// Decodes a `METRICS` body. The wire quantiles are read and discarded:
/// they are derivable from the buckets, and dropping them is what makes
/// encode→decode an exact round trip of the snapshot.
fn get_metrics(buf: &mut Bytes) -> Result<bullfrog_obs::MetricsSnapshot> {
    let uptime_us = codec::get_u64(buf)?;
    let n = codec::get_u32(buf)? as usize;
    let mut counters = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let k = get_str(buf)?;
        counters.push((k, codec::get_u64(buf)?));
    }
    let n = codec::get_u32(buf)? as usize;
    let mut gauges = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let k = get_str(buf)?;
        gauges.push((k, codec::get_u64(buf)? as i64));
    }
    let n = codec::get_u32(buf)? as usize;
    let mut histograms = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let k = get_str(buf)?;
        let sum = codec::get_u64(buf)?;
        for _ in 0..4 {
            codec::get_u64(buf)?; // p50/p90/p99/p999 — recomputable
        }
        let np = codec::get_u32(buf)? as usize;
        let mut pairs = Vec::with_capacity(np.min(bullfrog_obs::NUM_BUCKETS));
        for _ in 0..np {
            let i = codec::get_u32(buf)?;
            pairs.push((i, codec::get_u64(buf)?));
        }
        histograms.push((k, bullfrog_obs::HistogramSnapshot::from_sparse(sum, &pairs)));
    }
    let n = codec::get_u32(buf)? as usize;
    let mut spans = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name = get_str(buf)?;
        spans.push(bullfrog_obs::SpanSnapshot {
            name,
            detail: codec::get_u64(buf)?,
            start_us: codec::get_u64(buf)?,
            end_us: codec::get_u64(buf)?,
        });
    }
    let spans_dropped = codec::get_u64(buf)?;
    Ok(bullfrog_obs::MetricsSnapshot {
        uptime_us,
        counters,
        gauges,
        histograms,
        spans,
        spans_dropped,
    })
}

fn get_bytes(buf: &mut Bytes) -> Result<Bytes> {
    let len = codec::get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(Error::Eval(format!(
            "truncated bytes field: want {len}, have {}",
            buf.len()
        )));
    }
    let out = buf.slice(..len);
    *buf = buf.slice(len..);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    #[test]
    fn requests_round_trip() {
        for r in [
            Request::Query("SELECT a FROM t WHERE café = 'naïve'".into()),
            Request::Checkpoint,
            Request::Status,
            Request::Shutdown,
            Request::Subscribe {
                from_lsn: 12345,
                ddl_seq: 3,
                epoch: 4,
            },
            Request::Snapshot,
            Request::ReplAck {
                lsn: u64::MAX,
                epoch: 7,
            },
            Request::Ha(HaReq::Renew {
                epoch: 3,
                leader: "127.0.0.1:7001".into(),
                ttl_ms: 1500,
            }),
            Request::Ha(HaReq::Vote {
                epoch: 4,
                candidate: "127.0.0.1:7002".into(),
                forced: false,
            }),
            Request::Ha(HaReq::Vote {
                epoch: 5,
                candidate: "127.0.0.1:7002".into(),
                forced: true,
            }),
            Request::Ha(HaReq::Promote),
            Request::Ha(HaReq::State),
            Request::Cluster(crate::cluster::ClusterReq::GetMap),
            Request::Cluster(crate::cluster::ClusterReq::SetMap {
                self_index: 2,
                map: crate::cluster::ShardMap {
                    version: 3,
                    nodes: vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
                },
            }),
            Request::Cluster(crate::cluster::ClusterReq::Prepare {
                sql: "CREATE TABLE t2 AS (SELECT id FROM t)".into(),
            }),
            Request::Cluster(crate::cluster::ClusterReq::Commit),
            Request::Cluster(crate::cluster::ClusterReq::Abort),
            Request::Cluster(crate::cluster::ClusterReq::EndExchange),
            Request::Prepare {
                id: 42,
                sql: "SELECT a FROM t WHERE id = ?".into(),
            },
            Request::Execute {
                id: 42,
                params: row![7, "naïve"],
            },
            Request::Execute {
                id: 1,
                params: Row(vec![]),
            },
            Request::CloseStmt { id: u64::MAX },
            Request::Metrics,
        ] {
            assert_eq!(Request::decode(r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn responses_round_trip() {
        use bullfrog_common::TxnId;
        for r in [
            Response::Rows {
                names: vec!["id".into(), "owner".into()],
                rows: vec![row![1, "alice"], row![2, "✈"]],
            },
            Response::Ok { affected: 7 },
            Response::Err {
                retryable: true,
                code: err_code::TXN_RETRY,
                message: "lock timeout".into(),
            },
            Response::Stats(vec![("wal.flushes".into(), 12), ("neg".into(), -3)]),
            Response::Frames {
                durable_lsn: 99,
                ddl: vec![WireDdl {
                    seq: 0,
                    apply_at_lsn: 42,
                    payload: Bytes::from_static(b"create table t"),
                }],
                records: vec![
                    (97, LogRecord::Begin(TxnId(5))),
                    (98, LogRecord::Commit(TxnId(5))),
                ],
                epoch: 2,
            },
            Response::Snapshot {
                payload: Bytes::from_static(b"\x00\x01\x02"),
            },
            Response::ShardMap(crate::cluster::ShardMap {
                version: 9,
                nodes: vec!["a:1".into(), "b:2".into(), "c:3".into()],
            }),
            Response::Prepared {
                exchange: vec![crate::cluster::ExchangeSpec {
                    table: "owner_totals".into(),
                    key_cols: vec!["owner".into()],
                    aggs: vec![
                        ("total".into(), bullfrog_query::AggFunc::Sum),
                        ("n".into(), bullfrog_query::AggFunc::Count),
                    ],
                }],
            },
            Response::HaState {
                granted: true,
                epoch: 5,
                role: "leader".into(),
                leader: "127.0.0.1:7001".into(),
                lease_ms: 900,
            },
        ] {
            assert_eq!(Response::decode(r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn metrics_round_trip_and_truncations_error() {
        use bullfrog_obs::Registry;
        let reg = Registry::new();
        reg.counter("sessions.statements").add(42);
        reg.counter("wal.flushes").inc();
        reg.gauge("repl.lag_lsn").set(-7);
        let h = reg.histogram("engine.commit_us");
        for v in [3u64, 90, 1500, 250_000] {
            h.record(v);
        }
        reg.tracer().record("migrate.flip", 2, 10, 250);
        reg.tracer().record("migrate.granule", 128, 300, 9000);
        let snap = reg.snapshot();
        let resp = Response::Metrics(snap.clone());
        let encoded = resp.encode();
        match Response::decode(encoded.clone()).unwrap() {
            Response::Metrics(got) => assert_eq!(got, snap),
            other => panic!("{other:?}"),
        }
        // The empty snapshot and every truncation behave too.
        let empty = Response::Metrics(Default::default());
        assert_eq!(Response::decode(empty.encode()).unwrap(), empty);
        for cut in 0..encoded.len() {
            assert!(Response::decode(encoded.slice(..cut)).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn metrics_wire_quantiles_precede_sparse_buckets() {
        // A consumer without the bucket layout reads p50/p90/p99/p999
        // straight off the wire: name, sum, then the four quantiles.
        let reg = bullfrog_obs::Registry::new();
        let h = reg.histogram("h");
        for _ in 0..100 {
            h.record(1000);
        }
        let snap = reg.snapshot();
        let mut payload = Response::Metrics(snap.clone()).encode();
        assert_eq!(get_u8(&mut payload).unwrap(), resp::METRICS);
        codec::get_u64(&mut payload).unwrap(); // uptime
        assert_eq!(codec::get_u32(&mut payload).unwrap(), 0); // counters
        assert_eq!(codec::get_u32(&mut payload).unwrap(), 0); // gauges
        assert_eq!(codec::get_u32(&mut payload).unwrap(), 1); // histograms
        assert_eq!(get_str(&mut payload).unwrap(), "h");
        assert_eq!(codec::get_u64(&mut payload).unwrap(), 100_000); // sum
        let hist = snap.histogram("h").unwrap();
        for q in [0.50, 0.90, 0.99, 0.999] {
            assert_eq!(codec::get_u64(&mut payload).unwrap(), hist.quantile(q));
        }
    }

    #[test]
    fn epoch_fields_are_wire_compatible() {
        // Payloads from a pre-HA peer carry no trailing epoch; they
        // must decode with epoch 0 rather than erroring out.
        let old_subscribe = {
            let mut buf = BytesMut::new();
            buf.put_u8(req::SUBSCRIBE);
            buf.put_u64(42);
            buf.put_u64(7);
            buf.freeze()
        };
        assert_eq!(
            Request::decode(old_subscribe).unwrap(),
            Request::Subscribe {
                from_lsn: 42,
                ddl_seq: 7,
                epoch: 0,
            }
        );
        let old_ack = {
            let mut buf = BytesMut::new();
            buf.put_u8(req::REPL_ACK);
            buf.put_u64(99);
            buf.freeze()
        };
        assert_eq!(
            Request::decode(old_ack).unwrap(),
            Request::ReplAck { lsn: 99, epoch: 0 }
        );
        let old_frames = {
            let mut buf = BytesMut::new();
            buf.put_u8(resp::FRAMES);
            buf.put_u64(5); // durable_lsn
            buf.put_u32(0); // no ddl
            buf.put_u32(0); // no records
            buf.freeze()
        };
        assert_eq!(
            Response::decode(old_frames).unwrap(),
            Response::Frames {
                durable_lsn: 5,
                ddl: vec![],
                records: vec![],
                epoch: 0,
            }
        );
    }

    #[test]
    fn fenced_error_maps_to_read_only_with_leader_hint() {
        let resp = Response::from_error(&Error::Fenced {
            leader: Some("127.0.0.1:7002".into()),
        });
        match resp {
            Response::Err {
                retryable,
                code,
                message,
            } => {
                assert!(!retryable);
                assert_eq!(code, err_code::READ_ONLY);
                assert!(message.contains("primary at 127.0.0.1:7002"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn err_code_is_wire_compatible() {
        // A payload from a pre-code peer (no trailing byte) decodes with
        // code GENERAL; new payloads carry the byte at the end.
        let old = {
            let mut buf = BytesMut::new();
            buf.put_u8(0x83);
            buf.put_u8(1);
            put_str(&mut buf, "server busy");
            buf.freeze()
        };
        match Response::decode(old).unwrap() {
            Response::Err {
                retryable, code, ..
            } => {
                assert!(retryable);
                assert_eq!(code, err_code::GENERAL);
            }
            other => panic!("{other:?}"),
        }
        let new = Response::Err {
            retryable: true,
            code: err_code::READ_ONLY,
            message: "read only".into(),
        };
        assert_eq!(Response::decode(new.encode()).unwrap(), new);
    }

    #[test]
    fn truncated_payloads_are_errors() {
        let full = Response::Rows {
            names: vec!["id".into()],
            rows: vec![row![1]],
        }
        .encode();
        for cut in 0..full.len() {
            // Every truncation decodes to Err, never panics.
            assert!(Response::decode(full.slice(..cut)).is_err(), "cut={cut}");
        }
        assert!(Request::decode(Bytes::new()).is_err());
        assert!(Request::decode(Bytes::from_static(&[0x7f])).is_err());
    }

    #[test]
    fn frames_round_trip_and_cap() {
        let mut buf = Vec::new();
        let payload = Request::Query("SELECT 1".into()).encode();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload);
        assert!(read_frame(&mut r).unwrap().is_none()); // clean EOF

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_be_bytes());
        assert!(read_frame(&mut std::io::Cursor::new(oversized)).is_err());
    }

    #[test]
    fn rows_chunk_round_trips() {
        let r = Response::RowsChunk {
            more: true,
            names: vec!["id".into()],
            rows: vec![row![1], row![2]],
        };
        assert_eq!(Response::decode(r.encode()).unwrap(), r);
        let last = Response::RowsChunk {
            more: false,
            names: vec!["id".into()],
            rows: vec![],
        };
        assert_eq!(Response::decode(last.encode()).unwrap(), last);
    }

    #[test]
    fn small_results_stay_a_single_plain_rows_frame() {
        let resp = Response::Rows {
            names: vec!["id".into(), "name".into()],
            rows: vec![row![1, "a"], row![2, "b"]],
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let mut r = std::io::Cursor::new(&buf);
        let payload = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(payload[0], resp::ROWS, "must be plain ROWS, not a chunk");
        assert_eq!(Response::decode(payload).unwrap(), resp);
        assert!(read_frame(&mut r).unwrap().is_none(), "exactly one frame");
    }

    #[test]
    fn oversized_results_chunk_and_reassemble() {
        // ~24 MiB of rows: forced across multiple frames.
        let big = "x".repeat(1 << 20);
        let rows: Vec<Row> = (0..24i64).map(|i| row![i, big.clone()]).collect();
        let resp = Response::Rows {
            names: vec!["id".into(), "blob".into()],
            rows: rows.clone(),
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();

        // Raw view: several ROWS_CHUNK frames, all under the cap, last
        // one with the continuation flag clear.
        let mut r = std::io::Cursor::new(&buf);
        let mut n_chunks = 0;
        let mut last_more = true;
        while let Some(payload) = read_frame(&mut r).unwrap() {
            assert!(payload.len() <= MAX_FRAME_BYTES);
            assert_eq!(payload[0], resp::ROWS_CHUNK);
            n_chunks += 1;
            match Response::decode(payload).unwrap() {
                Response::RowsChunk { more, .. } => last_more = more,
                other => panic!("{other:?}"),
            }
        }
        assert!(n_chunks > 1, "expected multiple chunks, got {n_chunks}");
        assert!(!last_more, "final chunk must clear the continuation flag");

        // Logical view: read_response reassembles the original rows.
        let mut r = std::io::Cursor::new(&buf);
        let got = read_response(&mut r).unwrap().unwrap();
        assert_eq!(got, resp);
        assert!(read_response(&mut r).unwrap().is_none());
    }

    #[test]
    fn unsplittable_row_errors_the_statement_not_the_session() {
        let resp = Response::Rows {
            names: vec!["blob".into()],
            rows: vec![row!["y".repeat(MAX_FRAME_BYTES + 16)]],
        };
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).unwrap();
        let mut r = std::io::Cursor::new(&buf);
        match read_response(&mut r).unwrap().unwrap() {
            Response::Err {
                retryable, message, ..
            } => {
                assert!(!retryable);
                assert!(message.contains("frame cap"), "{message}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn preamble_rejects_strangers() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        assert!(read_preamble(&mut std::io::Cursor::new(&buf)).is_ok());
        assert!(read_preamble(&mut std::io::Cursor::new(b"HTTP/1.1".to_vec())).is_err());
        let mut wrong_ver = PREAMBLE;
        wrong_ver[6] = 9;
        assert!(read_preamble(&mut std::io::Cursor::new(wrong_ver.to_vec())).is_err());
    }
}
