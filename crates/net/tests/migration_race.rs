//! Concurrent remote sessions racing a lazy migration over TCP.
//!
//! N client threads hammer `accounts` with transfer transactions while
//! the admin session submits migration DDL mid-traffic. Workers flip to
//! the new table as soon as the logical schema flips and keep writing —
//! their statements lazily migrate the slices they touch. After the
//! drain the tests assert exactly-once semantics: every source row
//! migrated exactly once (`rows_migrated == row count`, zero conflict
//! skips, zero drops) and the total balance is conserved, i.e. no
//! transfer was lost or applied twice.
//!
//! Same invariants the in-process core tests check, but with the racing
//! clients on the other side of a socket, which is the configuration
//! the paper actually claims works.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::Value;
use bullfrog_core::Bullfrog;
use bullfrog_engine::Database;
use bullfrog_net::{Client, ClientError, Server, ServerConfig};

const WORKERS: usize = 8;
const ACCOUNTS: i64 = 64;
const OWNERS: i64 = 8;
const INITIAL_BALANCE: i64 = 1000;

const PHASE_OLD: usize = 0; // write `accounts`
const PHASE_NEW: usize = 1; // write `accounts_v2`
const PHASE_DONE: usize = 2;

struct Harness {
    server: Server,
    addr: std::net::SocketAddr,
    admin: Client,
}

fn boot() -> Harness {
    let bf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let server = Server::bind(
        ("127.0.0.1", 0),
        bf,
        ServerConfig {
            max_connections: WORKERS + 4,
            idle_timeout: Duration::from_secs(30),
            statement_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute("CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .unwrap();
    let values: Vec<String> = (0..ACCOUNTS)
        .map(|i| format!("({i}, 'o{}', {INITIAL_BALANCE})", i % OWNERS))
        .collect();
    admin
        .execute(&format!(
            "INSERT INTO accounts VALUES {}",
            values.join(", ")
        ))
        .unwrap();
    Harness {
        server,
        addr,
        admin,
    }
}

/// One transfer transaction against `table`, retried on retryable
/// errors. Returns false when the statement failed non-retryably —
/// which under a phase flip means "frozen input, re-check the phase".
fn transfer(c: &mut Client, table: &str, a: i64, b: i64) -> bool {
    for _ in 0..12 {
        c.execute("BEGIN").unwrap();
        let debit = c.execute(&format!(
            "UPDATE {table} SET balance = balance - 7 WHERE id = {a}"
        ));
        let credit = match &debit {
            Ok(_) => c.execute(&format!(
                "UPDATE {table} SET balance = balance + 7 WHERE id = {b}"
            )),
            Err(_) => Ok(0),
        };
        match (debit, credit) {
            (Ok(_), Ok(_)) => {
                if c.execute("COMMIT").is_ok() {
                    return true;
                }
            }
            (Err(e), _) | (_, Err(e)) => {
                let _ = c.execute("ROLLBACK");
                match e {
                    ClientError::Server {
                        retryable: true, ..
                    } => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    ClientError::Server {
                        retryable: false, ..
                    } => return false,
                    other => panic!("transport failure mid-transfer: {other}"),
                }
            }
        }
    }
    false
}

/// Runs the worker pool: transfers against the phase's table until the
/// admin advances to PHASE_DONE.
fn spawn_workers(
    addr: std::net::SocketAddr,
    phase: &Arc<AtomicUsize>,
) -> Vec<std::thread::JoinHandle<u64>> {
    (0..WORKERS)
        .map(|w| {
            let phase = Arc::clone(phase);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut committed = 0u64;
                let mut n = w as i64;
                loop {
                    let table = match phase.load(Ordering::Acquire) {
                        PHASE_OLD => "accounts",
                        PHASE_NEW => "accounts_v2",
                        _ => return committed,
                    };
                    n = (n * 31 + 17) % ACCOUNTS;
                    let a = n;
                    let b = (n + 1 + w as i64) % ACCOUNTS;
                    if a != b && transfer(&mut c, table, a, b) {
                        committed += 1;
                    }
                }
            })
        })
        .collect()
}

fn stat(pairs: &[(String, i64)], key: &str) -> i64 {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("STATUS missing {key}"))
        .1
}

/// Polls STATUS until the active migration reports complete.
fn wait_complete(admin: &mut Client) {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        let pairs = admin.status().unwrap();
        if stat(&pairs, "migration.active") == 1 && stat(&pairs, "migration.complete") == 1 {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "migration did not complete in time: {pairs:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A full-table scan retried while worker X locks are in the way.
fn scan_retry(c: &mut Client, sql: &str) -> Vec<bullfrog_common::Row> {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match c.query_rows(sql) {
            Ok((_, rows)) => return rows,
            Err(ClientError::Server {
                retryable: true, ..
            }) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("scan {sql:?} failed: {e}"),
        }
    }
}

#[test]
fn bitmap_migration_is_exactly_once_under_remote_contention() {
    let mut h = boot();
    let phase = Arc::new(AtomicUsize::new(PHASE_OLD));
    let workers = spawn_workers(h.addr, &phase);

    // Let traffic build, then flip the schema mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    h.admin
        .execute("CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) PRIMARY KEY (id)")
        .unwrap();
    phase.store(PHASE_NEW, Ordering::Release);

    wait_complete(&mut h.admin);

    // Capture the exactly-once counters while the migration is still
    // live (progress() reports nothing after FINALIZE), then quiesce
    // the workers before the verification scans.
    let pairs = h.admin.status().unwrap();
    phase.store(PHASE_DONE, Ordering::Release);
    let committed: u64 = workers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(committed > 0, "workers must have committed transfers");

    assert_eq!(
        stat(&pairs, "migration.rows_migrated"),
        ACCOUNTS,
        "every source row migrated exactly once"
    );
    assert_eq!(stat(&pairs, "migration.conflict_skips"), 0);
    assert_eq!(stat(&pairs, "migration.rows_dropped"), 0);

    h.admin.execute("FINALIZE MIGRATION DROP OLD").unwrap();

    // Balance conservation: transfers move value, never create it. A
    // lost or doubled lazy migration of any slice would break the sum.
    let rows = scan_retry(&mut h.admin, "SELECT id, balance FROM accounts_v2");
    assert_eq!(rows.len() as i64, ACCOUNTS);
    let total: i64 = rows
        .iter()
        .map(|r| match r[1] {
            Value::Int(v) => v,
            ref other => panic!("unexpected balance {other:?}"),
        })
        .sum();
    assert_eq!(
        total,
        ACCOUNTS * INITIAL_BALANCE,
        "balance must be conserved"
    );

    h.server.shutdown();
}

#[test]
fn hash_migration_aggregates_exactly_once_under_remote_contention() {
    let mut h = boot();
    let phase = Arc::new(AtomicUsize::new(PHASE_OLD));
    let workers = spawn_workers(h.addr, &phase);

    std::thread::sleep(Duration::from_millis(100));
    // n:1 GROUP BY migration: the HashTracker must fold each source
    // row into its group exactly once even as workers race it.
    h.admin
        .execute(
            "CREATE TABLE owner_totals AS (SELECT owner, SUM(balance) AS total FROM accounts GROUP BY owner) PRIMARY KEY (owner)",
        )
        .unwrap();
    // The GROUP BY migration freezes its input: workers' writes to
    // `accounts` now fail non-retryably, and the phase flip tells them
    // to stop (there is no writable successor table for transfers).
    phase.store(PHASE_DONE, Ordering::Release);
    let committed: u64 = workers.into_iter().map(|t| t.join().unwrap()).sum();

    wait_complete(&mut h.admin);
    let pairs = h.admin.status().unwrap();
    // `rows_migrated` counts *output* rows, so an n:1 aggregation
    // reports one per group; exactly-once folding of the 64 source
    // rows is proven below by the conserved grand total (folding any
    // slice twice, or missing one, would skew it).
    assert_eq!(
        stat(&pairs, "migration.rows_migrated"),
        OWNERS,
        "one output row per group"
    );
    assert!(stat(&pairs, "migration.granules_migrated") >= 1);
    assert_eq!(stat(&pairs, "migration.conflict_skips"), 0);

    h.admin.execute("FINALIZE MIGRATION").unwrap();

    let rows = scan_retry(&mut h.admin, "SELECT owner, total FROM owner_totals");
    assert_eq!(rows.len() as i64, OWNERS, "one group per owner");
    let grand: i64 = rows
        .iter()
        .map(|r| match r[1] {
            Value::Int(v) => v,
            ref other => panic!("unexpected total {other:?}"),
        })
        .sum();
    // Transfers conserved the total before the freeze; the aggregate
    // must see exactly that conserved sum.
    assert_eq!(
        grand,
        ACCOUNTS * INITIAL_BALANCE,
        "aggregated total must equal the conserved balance (committed transfers: {committed})"
    );

    h.server.shutdown();
}
