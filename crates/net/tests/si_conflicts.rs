//! Snapshot-isolation semantics over real loopback sockets: lock-free
//! snapshot reads while a writer holds its X lock, and the
//! first-updater-wins write-write conflict surfacing as a retryable
//! [`err_code::TXN_RETRY`] error that a client retry loop absorbs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_core::Bullfrog;
use bullfrog_engine::{Database, DbConfig, EngineMode};
use bullfrog_net::{err_code, Client, ClientError, Server, ServerConfig};

fn serve_si() -> (Server, std::net::SocketAddr) {
    let db = Arc::new(Database::with_config(DbConfig {
        mode: EngineMode::Snapshot,
        ..DbConfig::default()
    }));
    let bf = Arc::new(Bullfrog::new(db));
    let server = Server::bind(
        ("127.0.0.1", 0),
        bf,
        ServerConfig {
            max_connections: 8,
            idle_timeout: Duration::from_secs(10),
            statement_timeout: Duration::from_secs(5),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

#[test]
fn write_write_conflict_is_retryable_over_tcp() {
    let (_server, addr) = serve_si();
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    a.execute("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))")
        .unwrap();
    a.execute("INSERT INTO t VALUES (0, 1), (1, 1)").unwrap();

    // A holds the X lock on row 0 uncommitted.
    a.execute("BEGIN").unwrap();
    assert_eq!(a.execute("UPDATE t SET v = 111 WHERE id = 0").unwrap(), 1);

    // B's snapshot read returns the old committed value immediately —
    // no S lock, so no blocking on A's X lock. The read also pins B's
    // snapshot: it is now "used" and can no longer be refreshed.
    b.execute("BEGIN").unwrap();
    let started = Instant::now();
    let (_, rows) = b.query_rows("SELECT v FROM t WHERE id = 0").unwrap();
    assert!(
        started.elapsed() < Duration::from_millis(100),
        "snapshot read must not block on the writer's X lock"
    );
    assert_eq!(rows[0].0[0].as_i64(), Some(1), "pre-commit value");

    a.execute("COMMIT").unwrap();

    // First-updater-wins: row 0 now has a version committed after B's
    // snapshot, so B's write loses with the retryable TXN_RETRY code
    // (the server aborts B's open transaction on the error).
    match b.execute("UPDATE t SET v = 222 WHERE id = 0") {
        Err(ClientError::Server {
            retryable: true,
            code,
            ..
        }) => assert_eq!(code, err_code::TXN_RETRY, "conflict must map to TXN_RETRY"),
        other => panic!("expected a retryable write conflict, got {other:?}"),
    }

    // The loadgen-style retry loop: restart the bracket with a fresh
    // snapshot and win.
    let mut committed = false;
    for _ in 0..8 {
        b.execute("BEGIN").unwrap();
        match b.execute("UPDATE t SET v = 222 WHERE id = 0") {
            Ok(n) => {
                assert_eq!(n, 1);
                b.execute("COMMIT").unwrap();
                committed = true;
                break;
            }
            Err(ClientError::Server {
                retryable: true, ..
            }) => continue,
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    assert!(committed, "retry with a fresh snapshot must succeed");

    let (_, rows) = a.query_rows("SELECT v FROM t WHERE id = 0").unwrap();
    assert_eq!(rows[0].0[0].as_i64(), Some(222));
}
