//! End-to-end tests of the BFNET1 server over real loopback sockets:
//! statement round trips, error recovery on a live connection,
//! backpressure, idle timeout, transaction lifecycle across frames,
//! admin opcodes, and the shutdown durability guarantee.

use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::Value;
use bullfrog_core::Bullfrog;
use bullfrog_engine::{recovery, Database, DbConfig, EngineMode};
use bullfrog_net::{Client, ClientError, QueryReply, Server, ServerConfig};

/// Boots a server on an ephemeral loopback port over a fresh in-memory
/// database.
fn serve(config: ServerConfig) -> (Server, std::net::SocketAddr) {
    let bf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let server = Server::bind(("127.0.0.1", 0), bf, config).expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        max_connections: 16,
        idle_timeout: Duration::from_secs(10),
        statement_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    }
}

/// A per-test temp path (tests run in one process, so pid + tag is
/// unique enough).
fn temp_path(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bullfrog-net-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.wal"))
}

#[test]
fn statements_round_trip_over_tcp() {
    let (_server, addr) = serve(quick_config());
    let mut c = Client::connect(addr).unwrap();

    assert_eq!(
        c.execute("CREATE TABLE t (id INT, name CHAR(10), PRIMARY KEY (id))")
            .unwrap(),
        0
    );
    assert_eq!(
        c.execute("INSERT INTO t VALUES (1, 'ada'), (2, 'grace')")
            .unwrap(),
        2
    );

    let (names, mut rows) = c.query_rows("SELECT id, name FROM t").unwrap();
    assert_eq!(names, vec!["id", "name"]);
    rows.sort();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Int(1));
    assert_eq!(rows[1][1], Value::from("grace"));

    assert_eq!(
        c.execute("UPDATE t SET name = 'alan' WHERE id = 1")
            .unwrap(),
        1
    );
    let (_, rows) = c.query_rows("SELECT name FROM t WHERE id = 1").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::from("alan"));

    assert_eq!(c.execute("DELETE FROM t WHERE id = 2").unwrap(), 1);
    let (_, rows) = c.query_rows("SELECT id FROM t").unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn errors_keep_the_connection_usable() {
    let (_server, addr) = serve(quick_config());
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();

    // Parse error, semantic error, and constraint error in sequence —
    // each reported over the wire, none killing the session.
    for bad in [
        "SELEC id FROM t",
        "SELECT id FROM missing_table",
        "INSERT INTO t VALUES ('not-an-int')",
    ] {
        match c.query(bad) {
            Err(ClientError::Server { .. }) => {}
            other => panic!("expected a server error for {bad:?}, got {other:?}"),
        }
    }

    // The same connection still works.
    assert_eq!(c.execute("INSERT INTO t VALUES (7)").unwrap(), 1);
    let (_, rows) = c.query_rows("SELECT id FROM t").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Int(7));
}

#[test]
fn over_capacity_connection_is_told_busy() {
    let (_server, addr) = serve(ServerConfig {
        max_connections: 1,
        ..quick_config()
    });
    let mut first = Client::connect(addr).unwrap();
    first
        .execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();

    // The slot is taken; the second connection must get a retryable
    // busy error (possibly needing one probe statement to read it).
    let mut second = Client::connect(addr).unwrap();
    match second.query("SELECT id FROM t") {
        Err(ClientError::Server {
            retryable, message, ..
        }) => {
            assert!(retryable, "busy must be retryable");
            assert!(message.contains("busy"), "unexpected message {message:?}");
        }
        Err(ClientError::Io(_)) => {} // server closed after the busy frame raced our send
        other => panic!("expected busy, got {other:?}"),
    }

    // Freeing the slot lets a new connection in.
    drop(second);
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = Client::connect(addr).unwrap();
        match retry.query("SELECT id FROM t") {
            Ok(_) => break,
            Err(ClientError::Server {
                retryable: true, ..
            })
            | Err(ClientError::Io(_))
                if std::time::Instant::now() < deadline =>
            {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("expected the freed slot to admit us, got {other:?}"),
        }
    }
}

#[test]
fn idle_connection_is_closed() {
    let (_server, addr) = serve(ServerConfig {
        idle_timeout: Duration::from_millis(100),
        ..quick_config()
    });
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();

    std::thread::sleep(Duration::from_millis(400));
    // The server hung up while we slept; the next call sees a dead
    // transport.
    match c.query("SELECT id FROM t") {
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        other => panic!("expected a transport error after idle close, got {other:?}"),
    }
}

#[test]
fn explicit_transactions_span_frames() {
    let (_server, addr) = serve(quick_config());
    let mut writer = Client::connect(addr).unwrap();
    let mut reader = Client::connect(addr).unwrap();
    writer
        .execute("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))")
        .unwrap();

    writer.execute("BEGIN").unwrap();
    writer.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    writer.execute("INSERT INTO t VALUES (2, 20)").unwrap();
    writer.execute("COMMIT").unwrap();
    let (_, rows) = reader.query_rows("SELECT id FROM t").unwrap();
    assert_eq!(rows.len(), 2, "committed rows visible to another session");

    writer.execute("BEGIN").unwrap();
    writer.execute("INSERT INTO t VALUES (3, 30)").unwrap();
    writer.execute("ROLLBACK").unwrap();
    let (_, rows) = reader.query_rows("SELECT id FROM t").unwrap();
    assert_eq!(rows.len(), 2, "rolled-back insert must not be visible");
}

#[test]
fn disconnect_aborts_the_open_transaction() {
    let (_server, addr) = serve(quick_config());
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();

    let mut doomed = Client::connect(addr).unwrap();
    doomed.execute("BEGIN").unwrap();
    doomed.execute("INSERT INTO t VALUES (99)").unwrap();
    drop(doomed); // vanish mid-transaction

    // The abort releases the X lock; poll until the row count settles
    // at zero (the server notices the EOF within a poll slice).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match admin.query_rows("SELECT id FROM t") {
            Ok((_, rows)) if rows.is_empty() => break,
            Ok(_)
            | Err(ClientError::Server {
                retryable: true, ..
            }) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "uncommitted insert still visible after disconnect"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("verification scan failed: {e}"),
        }
    }
}

#[test]
fn checkpoint_and_status_opcodes() {
    let (server, addr) = serve(quick_config());
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();
    c.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();

    let absorbed = c.checkpoint().unwrap();
    assert!(absorbed >= 3, "checkpoint absorbed {absorbed} records");

    let pairs = c.status().unwrap();
    let get = |key: &str| -> i64 {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .unwrap_or_else(|| panic!("STATUS missing {key}"))
            .1
    };
    assert_eq!(get("server.active_sessions"), 1);
    assert!(get("server.accepted") >= 1);
    assert!(get("sessions.statements") >= 2);
    assert_eq!(get("sessions.rows_written"), 3);
    assert_eq!(get("migration.active"), 0);
    assert!(get("wal.checkpoints") >= 1);
    assert_eq!(get("scheduler.enabled"), 0); // no policy configured
    assert_eq!(server.active_sessions(), 1);
}

#[test]
fn statement_timeout_aborts_instead_of_committing() {
    let (_server, addr) = serve(ServerConfig {
        statement_timeout: Duration::from_millis(0),
        ..quick_config()
    });
    let mut c = Client::connect(addr).unwrap();
    // DDL is exempt from the statement timeout; DML is not.
    c.execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();
    match c.execute("INSERT INTO t VALUES (1)") {
        Err(ClientError::Server { message, .. }) => {
            assert!(
                message.contains("timeout"),
                "expected a statement-timeout error, got {message:?}"
            );
        }
        other => panic!("expected a timeout error, got {other:?}"),
    }
    // The overrunning statement aborted: nothing committed.
    let (_, rows) = c.query_rows("SELECT id FROM t").unwrap_or((vec![], vec![]));
    assert!(rows.is_empty(), "timed-out insert must not commit");
}

#[test]
fn shutdown_drains_without_dropping_committed_writes() {
    let wal_path = temp_path("shutdown-drain");
    remove_wal_shards(&wal_path);
    let ckpt_path = bullfrog_engine::checkpoint::checkpoint_path_for(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);

    let db =
        Arc::new(Database::with_wal_file(DbConfig::default(), &wal_path).expect("file-backed db"));
    let bf = Arc::new(Bullfrog::new(db));
    let mut server = Server::bind(("127.0.0.1", 0), bf, quick_config()).unwrap();
    let addr = server.local_addr();

    // Several sessions commit concurrently right up to the shutdown.
    let workers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                if w == 0 {
                    c.execute("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))")
                        .unwrap();
                }
                c
            })
        })
        .collect();
    let mut clients: Vec<Client> = workers.into_iter().map(|t| t.join().unwrap()).collect();
    let mut committed = 0i64;
    for (w, c) in clients.iter_mut().enumerate() {
        for i in 0..8 {
            let id = (w as i64) * 100 + i;
            if c.execute_retry(&format!("INSERT INTO t VALUES ({id}, {id})"), 10)
                .is_ok()
            {
                committed += 1;
            }
        }
    }
    assert_eq!(committed, 32);

    // Remote SHUTDOWN: the server acknowledges, then wait_shutdown
    // drains sessions and syncs the WAL.
    clients[0].shutdown_server().unwrap();
    server.wait_shutdown();
    drop(clients);
    drop(server);

    // Recover the WAL (+ checkpoint sidecar) into a fresh database and
    // assert every committed row survived.
    let recovered = Database::new();
    recovered
        .create_table(
            bullfrog_common::TableSchema::new(
                "t",
                vec![
                    bullfrog_common::ColumnDef::new("id", bullfrog_common::DataType::Int),
                    bullfrog_common::ColumnDef::new("v", bullfrog_common::DataType::Int),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
    recovery::recover_from_files(&recovered, &wal_path, &ckpt_path).expect("recovery");
    let table = recovered.catalog().get("t").unwrap();
    assert_eq!(
        table.live_count() as i64,
        committed,
        "every committed write must survive shutdown + recovery"
    );
    remove_wal_shards(&wal_path);
    let _ = std::fs::remove_file(&ckpt_path);
}

/// Removes a WAL's shard 0 file plus every `.sN` sibling (the sharded
/// log spreads one logical WAL over several files).
fn remove_wal_shards(wal_path: &std::path::Path) {
    let _ = std::fs::remove_file(wal_path);
    for shard in 1.. {
        if std::fs::remove_file(bullfrog_txn::wal::shard_file_path(wal_path, shard)).is_err() {
            break;
        }
    }
}

/// Regression: `sessions.rows_written` used to be bumped per DML
/// statement inside an open transaction, so a `ROLLBACK` (or a failed
/// autocommit) left phantom rows in the counter. Writes now accumulate
/// per transaction and flush on commit only.
#[test]
fn rolled_back_writes_do_not_count_as_rows_written() {
    let (_server, addr) = serve(quick_config());
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();
    fn written(c: &mut Client) -> i64 {
        c.status()
            .unwrap()
            .iter()
            .find(|(k, _)| k == "sessions.rows_written")
            .expect("STATUS missing sessions.rows_written")
            .1
    }

    c.execute("BEGIN").unwrap();
    c.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    c.execute("ROLLBACK").unwrap();
    assert_eq!(written(&mut c), 0, "rolled-back inserts must not count");

    c.execute("BEGIN").unwrap();
    c.execute("INSERT INTO t VALUES (3), (4)").unwrap();
    c.execute("COMMIT").unwrap();
    assert_eq!(written(&mut c), 2, "committed inserts count on COMMIT");

    c.execute("INSERT INTO t VALUES (5)").unwrap();
    assert_eq!(written(&mut c), 3, "autocommit counts immediately");

    // A failed autocommit (duplicate key) writes nothing.
    assert!(c.execute("INSERT INTO t VALUES (5)").is_err());
    assert_eq!(written(&mut c), 3, "failed autocommit must not count");
}

/// The `METRICS` snapshot round-trips over the wire in both engine
/// modes, its counters agree with legacy `STATUS` (same registry
/// storage), and per-opcode statement histogram counts sum exactly to
/// `sessions.statements`.
#[test]
fn metrics_snapshot_matches_status_in_both_engine_modes() {
    for mode in [EngineMode::TwoPL, EngineMode::Snapshot] {
        let db = Arc::new(Database::with_config(DbConfig {
            mode,
            ..DbConfig::default()
        }));
        let bf = Arc::new(Bullfrog::new(db));
        let _server = Server::bind(("127.0.0.1", 0), Arc::clone(&bf), quick_config()).unwrap();
        let addr = _server.local_addr();
        let mut c = Client::connect(addr).unwrap();

        // Exercise every statement opcode: QUERY, PREPARE, EXECUTE,
        // CLOSE_STMT, plus a pipelined burst.
        c.execute("CREATE TABLE t (id INT, v INT, PRIMARY KEY (id))")
            .unwrap();
        c.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
        c.prepare(7, "SELECT v FROM t WHERE id = ?").unwrap();
        c.execute_prepared(7, vec![Value::Int(1)].into()).unwrap();
        for reply in c
            .pipeline(&["SELECT id FROM t".into(), "SELECT v FROM t".into()])
            .unwrap()
        {
            reply.unwrap();
        }
        c.close_stmt(7).unwrap();
        // Touch the migration path so migrate.* histograms exist.
        c.execute("CREATE TABLE t2 AS (SELECT id, v FROM t) PRIMARY KEY (id)")
            .unwrap();
        c.query_rows("SELECT id FROM t2").unwrap();
        c.execute("FINALIZE MIGRATION DROP OLD").unwrap();

        let snap = c.metrics().unwrap();
        let pairs = c.status().unwrap();
        let status_of = |key: &str| -> i64 {
            pairs
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("STATUS missing {key} ({mode:?})"))
                .1
        };

        // Same registry storage: STATUS and METRICS must agree on every
        // shared counter (no statements ran between the two requests —
        // STATUS/METRICS are admin opcodes and do not count).
        for key in [
            "sessions.statements",
            "sessions.rows_written",
            "sessions.commits",
            "server.accepted",
        ] {
            assert_eq!(
                snap.counter(key),
                Some(status_of(key) as u64),
                "METRICS and STATUS disagree on {key} ({mode:?})"
            );
        }

        // Totals match: every statement frame lands in exactly one of
        // the four statement histograms.
        let hist_count = |name: &str| snap.histogram(name).map_or(0, |h| h.count());
        let recorded = hist_count("net.query_us")
            + hist_count("net.execute_us")
            + hist_count("net.admin_us")
            + hist_count("net.pipelined_us");
        assert_eq!(
            recorded,
            snap.counter("sessions.statements").unwrap(),
            "statement histogram counts must sum to sessions.statements ({mode:?})"
        );
        assert!(
            hist_count("net.pipelined_us") >= 1,
            "the pipelined burst records follow-on frames ({mode:?})"
        );

        // The migration lifecycle left latency evidence behind.
        for name in [
            "engine.commit_us",
            "migrate.granule_us",
            "migrate.finalize_us",
        ] {
            let h = snap
                .histogram(name)
                .unwrap_or_else(|| panic!("METRICS missing histogram {name} ({mode:?})"));
            assert!(h.count() >= 1, "{name} is empty ({mode:?})");
        }
        assert!(
            snap.spans_named("migrate.granule").next().is_some(),
            "tracer captured granule spans ({mode:?})"
        );
        assert!(snap.uptime_us > 0, "uptime advances ({mode:?})");
    }
}

#[test]
fn migration_ddl_works_over_the_wire() {
    let (_server, addr) = serve(quick_config());
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE src (id INT, v INT, PRIMARY KEY (id))")
        .unwrap();
    c.execute("INSERT INTO src VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();

    c.execute("CREATE TABLE dst AS (SELECT id, v FROM src) PRIMARY KEY (id)")
        .unwrap();

    // Lazy reads through the new table migrate on touch.
    let (_, rows) = c.query_rows("SELECT id, v FROM dst").unwrap();
    assert_eq!(rows.len(), 3);

    let pairs = c.status().unwrap();
    let active = pairs
        .iter()
        .find(|(k, _)| k == "migration.active")
        .unwrap()
        .1;
    assert_eq!(active, 1, "migration is live until FINALIZE");

    c.execute("FINALIZE MIGRATION DROP OLD").unwrap();
    let pairs = c.status().unwrap();
    let active = pairs
        .iter()
        .find(|(k, _)| k == "migration.active")
        .unwrap()
        .1;
    assert_eq!(active, 0, "FINALIZE clears the active migration");

    // The old table is gone; the new one serves directly.
    assert!(matches!(
        c.query("SELECT id FROM src"),
        Err(ClientError::Server { .. })
    ));
    let QueryReply::Rows { rows, .. } = c.query("SELECT id FROM dst").unwrap() else {
        panic!("expected rows");
    };
    assert_eq!(rows.len(), 3);
}
