//! Pipelining, prepared statements, and chunked large results over real
//! loopback TCP.
//!
//! The contracts under test:
//!
//! - **Ordering**: a client may write N request frames before reading
//!   any response; the server answers strictly in request order, and a
//!   failed statement produces an `ERR` in its slot without
//!   desynchronizing the stream.
//! - **Equivalence**: `PREPARE`/`EXECUTE` replies are byte-identical to
//!   the `QUERY` reply for the same statement with parameters inlined
//!   as literals.
//! - **Chunking**: a result set larger than the 16 MiB frame cap ships
//!   as a `ROWS_CHUNK` sequence and reassembles client-side; a single
//!   row that cannot fit any frame fails its statement, not the
//!   session.
//!
//! Engine mode comes from `BULLFROG_ENGINE_MODE` (the verify script
//! runs this suite under both 2PL and SI).

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{Row, Value};
use bullfrog_core::{Bullfrog, ClientAccess};
use bullfrog_engine::Database;
use bullfrog_net::{
    wire, Client, ClientError, QueryReply, Request, Response, Server, ServerConfig,
};

/// Boots a server on an ephemeral loopback port over a fresh in-memory
/// database, also handing back the controller for server-side setup.
fn serve() -> (Server, std::net::SocketAddr, Arc<Bullfrog>) {
    let bf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let server = Server::bind(
        ("127.0.0.1", 0),
        Arc::clone(&bf),
        ServerConfig {
            max_connections: 16,
            idle_timeout: Duration::from_secs(10),
            statement_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    (server, addr, bf)
}

/// Writes all requests as raw frames before reading anything, then
/// reads exactly one (reassembled) response per request.
fn raw_pipeline(stream: &mut TcpStream, requests: &[Request]) -> Vec<Response> {
    for req in requests {
        wire::write_frame(stream, &req.encode()).unwrap();
    }
    requests
        .iter()
        .map(|_| {
            wire::read_response(stream)
                .expect("decode response")
                .expect("connection open")
        })
        .collect()
}

#[test]
fn pipelined_frames_answer_in_order() {
    let (_server, addr, _) = serve();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();

    // Raw socket so nothing reads a response until every frame is out.
    // Alternate INSERT(i) / SELECT WHERE id = i: each SELECT can only
    // return its row if the INSERT one slot earlier already ran, and
    // the returned value proves which response slot this is.
    let mut s = TcpStream::connect(addr).unwrap();
    wire::write_preamble(&mut s).unwrap();
    let mut requests = Vec::new();
    for i in 0..32i64 {
        requests.push(Request::Query(format!("INSERT INTO t VALUES ({i})")));
        requests.push(Request::Query(format!("SELECT id FROM t WHERE id = {i}")));
    }
    let responses = raw_pipeline(&mut s, &requests);
    assert_eq!(responses.len(), 64);
    for i in 0..32usize {
        match &responses[2 * i] {
            Response::Ok { affected: 1 } => {}
            other => panic!("slot {} expected OK(1), got {other:?}", 2 * i),
        }
        match &responses[2 * i + 1] {
            Response::Rows { rows, .. } => {
                assert_eq!(rows.len(), 1, "slot {}", 2 * i + 1);
                assert_eq!(rows[0][0], Value::Int(i as i64));
            }
            other => panic!("slot {} expected rows, got {other:?}", 2 * i + 1),
        }
    }
}

#[test]
fn pipeline_errors_occupy_their_slot_without_desync() {
    let (_server, addr, _) = serve();
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();

    let batch: Vec<String> = vec![
        "INSERT INTO t VALUES (1)".into(),
        "SELEC id FROM t".into(), // parse error
        "INSERT INTO t VALUES (2)".into(),
        "SELECT id FROM missing_table".into(), // semantic error
        "INSERT INTO t VALUES (1)".into(),     // duplicate key
        "SELECT id FROM t WHERE id = 2".into(), // must still answer
    ];
    let replies = c.pipeline(&batch).unwrap();
    assert_eq!(replies.len(), 6);
    assert!(matches!(replies[0], Ok(QueryReply::Ok { affected: 1 })));
    assert!(matches!(replies[1], Err(ClientError::Server { .. })));
    assert!(matches!(replies[2], Ok(QueryReply::Ok { affected: 1 })));
    assert!(matches!(replies[3], Err(ClientError::Server { .. })));
    assert!(matches!(replies[4], Err(ClientError::Server { .. })));
    match &replies[5] {
        Ok(QueryReply::Rows { rows, .. }) => {
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][0], Value::Int(2));
        }
        other => panic!("expected rows in the final slot, got {other:?}"),
    }

    // The connection survives the batch.
    let (_, rows) = c.query_rows("SELECT id FROM t").unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn prepared_execute_replies_are_byte_identical_to_query() {
    let (_server, addr, _) = serve();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute("CREATE TABLE t (id INT, name CHAR(10), PRIMARY KEY (id))")
        .unwrap();
    admin
        .execute("INSERT INTO t VALUES (1, 'ada'), (2, 'grace'), (3, 'alan')")
        .unwrap();

    // Raw sockets: compare the exact response payload bytes.
    let mut q = TcpStream::connect(addr).unwrap();
    wire::write_preamble(&mut q).unwrap();
    let mut p = TcpStream::connect(addr).unwrap();
    wire::write_preamble(&mut p).unwrap();

    let query_reply = {
        let req = Request::Query("SELECT id, name FROM t WHERE id = 2".into());
        wire::write_frame(&mut q, &req.encode()).unwrap();
        wire::read_frame(&mut q).unwrap().expect("open")
    };

    let prepare = Request::Prepare {
        id: 9,
        sql: "SELECT id, name FROM t WHERE id = ?".into(),
    };
    wire::write_frame(&mut p, &prepare.encode()).unwrap();
    let prep_ack = Response::decode(wire::read_frame(&mut p).unwrap().expect("open")).unwrap();
    assert_eq!(prep_ack, Response::Ok { affected: 1 }, "one parameter");
    let exec_reply = {
        let req = Request::Execute {
            id: 9,
            params: Row(vec![Value::Int(2)]),
        };
        wire::write_frame(&mut p, &req.encode()).unwrap();
        wire::read_frame(&mut p).unwrap().expect("open")
    };
    assert_eq!(
        query_reply, exec_reply,
        "EXECUTE must answer byte-identically to the literal QUERY"
    );

    // Same for a write: both acknowledge OK(1) with identical bytes.
    let insert_reply = {
        let req = Request::Query("INSERT INTO t VALUES (10, 'kay')".into());
        wire::write_frame(&mut q, &req.encode()).unwrap();
        wire::read_frame(&mut q).unwrap().expect("open")
    };
    wire::write_frame(
        &mut p,
        &Request::Prepare {
            id: 10,
            sql: "INSERT INTO t VALUES (?, ?)".into(),
        }
        .encode(),
    )
    .unwrap();
    let _ = wire::read_frame(&mut p).unwrap().expect("open");
    let exec_insert_reply = {
        let req = Request::Execute {
            id: 10,
            params: Row(vec![Value::Int(11), Value::from("joan")]),
        };
        wire::write_frame(&mut p, &req.encode()).unwrap();
        wire::read_frame(&mut p).unwrap().expect("open")
    };
    assert_eq!(insert_reply, exec_insert_reply);
}

#[test]
fn prepared_statement_lifecycle() {
    let (_server, addr, _) = serve();
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();

    // Unknown id fails but keeps the session.
    match c.execute_prepared(42, Row(vec![])) {
        Err(ClientError::Server { message, .. }) => {
            assert!(message.contains("unknown prepared statement"), "{message}");
        }
        other => panic!("expected unknown-statement error, got {other:?}"),
    }

    assert_eq!(c.prepare(1, "INSERT INTO t VALUES (?)").unwrap(), 1);
    for i in 0..5 {
        let reply = c.execute_prepared(1, Row(vec![Value::Int(i)])).unwrap();
        assert_eq!(reply, QueryReply::Ok { affected: 1 });
    }

    // Wrong arity is a per-statement error.
    match c.execute_prepared(1, Row(vec![Value::Int(9), Value::Int(9)])) {
        Err(ClientError::Server { message, .. }) => {
            assert!(message.contains("expects 1 parameter"), "{message}");
        }
        other => panic!("expected an arity error, got {other:?}"),
    }

    // Re-preparing an id replaces its statement.
    assert_eq!(c.prepare(1, "SELECT id FROM t WHERE id = ?").unwrap(), 1);
    match c.execute_prepared(1, Row(vec![Value::Int(3)])).unwrap() {
        QueryReply::Rows { rows, .. } => assert_eq!(rows, vec![Row(vec![Value::Int(3)])]),
        other => panic!("expected rows, got {other:?}"),
    }

    // CLOSE frees the id; executing it afterwards fails.
    c.close_stmt(1).unwrap();
    assert!(matches!(
        c.execute_prepared(1, Row(vec![Value::Int(3)])),
        Err(ClientError::Server { .. })
    ));

    // Non-DML is refused at PREPARE time.
    match c.prepare(2, "BEGIN") {
        Err(ClientError::Server { message, .. }) => {
            assert!(message.contains("PREPARE supports only"), "{message}");
        }
        other => panic!("expected a kind error, got {other:?}"),
    }
}

#[test]
fn scan_larger_than_frame_cap_chunks_and_reassembles() {
    let (_server, addr, _) = serve();
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE big (id INT, payload CHAR(1048576), PRIMARY KEY (id))")
        .unwrap();

    // 24 rows of 1 MiB each: the full scan is ~24 MiB, well past the
    // 16 MiB frame cap. Prepared INSERTs carry the payload as a bound
    // parameter, so no statement text ever approaches the SQL cap.
    c.prepare(1, "INSERT INTO big VALUES (?, ?)").unwrap();
    let payload = "x".repeat(1 << 20);
    for i in 0..24i64 {
        let reply = c
            .execute_prepared(1, Row(vec![Value::Int(i), Value::from(payload.clone())]))
            .unwrap();
        assert_eq!(reply, QueryReply::Ok { affected: 1 });
    }

    // Client path: read_response reassembles the chunk sequence.
    let (names, rows) = c.query_rows("SELECT id, payload FROM big").unwrap();
    assert_eq!(names, vec!["id", "payload"]);
    assert_eq!(rows.len(), 24);
    for row in &rows {
        match &row[1] {
            Value::Text(s) => assert_eq!(s.len(), 1 << 20),
            other => panic!("expected text payload, got {other:?}"),
        }
    }

    // Wire path: the same scan on a raw socket must arrive as a
    // ROWS_CHUNK sequence (more=true ... more=false), proving the
    // server actually split it rather than attempting one giant frame.
    let mut s = TcpStream::connect(addr).unwrap();
    wire::write_preamble(&mut s).unwrap();
    wire::write_frame(
        &mut s,
        &Request::Query("SELECT id, payload FROM big".into()).encode(),
    )
    .unwrap();
    let mut chunks = 0usize;
    let mut total_rows = 0usize;
    loop {
        let payload = wire::read_frame(&mut s).unwrap().expect("open");
        match Response::decode(payload).unwrap() {
            Response::RowsChunk { more, rows, .. } => {
                chunks += 1;
                total_rows += rows.len();
                if !more {
                    break;
                }
            }
            other => panic!("expected a chunked result, got {other:?}"),
        }
    }
    assert!(chunks >= 2, "a 24 MiB scan must span multiple chunks");
    assert_eq!(total_rows, 24);

    // The connection that received chunks is still in frame sync.
    wire::write_frame(
        &mut s,
        &Request::Query("SELECT id FROM big WHERE id = 0".into()).encode(),
    )
    .unwrap();
    match wire::read_response(&mut s).unwrap().expect("open") {
        Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn burst_larger_than_server_buffer_is_not_a_violation() {
    let (_server, addr, _) = serve();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute("CREATE TABLE t (id INT, payload CHAR(20000000), PRIMARY KEY (id))")
        .unwrap();

    // One near-maximum frame (a prepared INSERT whose bound parameter
    // never passes through SQL text) followed by a tail of pipelined
    // EXECUTEs: the whole burst (~17.5 MiB) exceeds the server's
    // receive high-water mark, so it can only be absorbed by executing
    // buffered frames between drain rounds — a server that treats the
    // mark as a protocol violation disconnects this legal client
    // mid-batch.
    let mut burst: Vec<u8> = Vec::new();
    wire::write_preamble(&mut burst).unwrap();
    let prepare = Request::Prepare {
        id: 1,
        sql: "INSERT INTO t VALUES (?, ?)".into(),
    };
    wire::write_frame(&mut burst, &prepare.encode()).unwrap();
    let big = Request::Execute {
        id: 1,
        params: Row(vec![Value::Int(0), Value::from("x".repeat(15_900_000))]),
    };
    wire::write_frame(&mut burst, &big.encode()).unwrap();
    let tail = "y".repeat(64 << 10);
    for i in 1..=24i64 {
        let req = Request::Execute {
            id: 1,
            params: Row(vec![Value::Int(i), Value::from(tail.clone())]),
        };
        wire::write_frame(&mut burst, &req.encode()).unwrap();
    }
    assert!(
        burst.len() > wire::MAX_FRAME_BYTES + 4 + (64 << 10),
        "burst must exceed the server's buffer high-water mark"
    );

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&burst).unwrap();
    match wire::read_response(&mut s)
        .unwrap()
        .expect("connection open")
    {
        Response::Ok { affected: 2 } => {} // PREPARE acks the param count
        other => panic!("expected the PREPARE ack, got {other:?}"),
    }
    for slot in 0..25usize {
        match wire::read_response(&mut s)
            .unwrap()
            .expect("connection open")
        {
            Response::Ok { affected: 1 } => {}
            other => panic!("slot {slot} expected OK(1), got {other:?}"),
        }
    }

    // The connection survives the burst.
    wire::write_frame(
        &mut s,
        &Request::Query("SELECT id FROM t WHERE id = 24".into()).encode(),
    )
    .unwrap();
    match wire::read_response(&mut s).unwrap().expect("open") {
        Response::Rows { rows, .. } => assert_eq!(rows, vec![Row(vec![Value::Int(24)])]),
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn eof_after_pipelined_requests_still_delivers_responses() {
    let (_server, addr, _) = serve();
    let mut admin = Client::connect(addr).unwrap();
    admin
        .execute("CREATE TABLE t (id INT, PRIMARY KEY (id))")
        .unwrap();

    // Pipeline a batch, then shut down the write side before reading
    // anything: EOF means "no more requests", so every response owed
    // must still arrive before the server closes.
    let mut s = TcpStream::connect(addr).unwrap();
    wire::write_preamble(&mut s).unwrap();
    for i in 0..8i64 {
        wire::write_frame(
            &mut s,
            &Request::Query(format!("INSERT INTO t VALUES ({i})")).encode(),
        )
        .unwrap();
        wire::write_frame(
            &mut s,
            &Request::Query(format!("SELECT id FROM t WHERE id = {i}")).encode(),
        )
        .unwrap();
    }
    s.shutdown(Shutdown::Write).unwrap();

    for i in 0..8usize {
        match wire::read_response(&mut s).unwrap().expect("open") {
            Response::Ok { affected: 1 } => {}
            other => panic!("slot {} expected OK(1), got {other:?}", 2 * i),
        }
        match wire::read_response(&mut s).unwrap().expect("open") {
            Response::Rows { rows, .. } => {
                assert_eq!(rows, vec![Row(vec![Value::Int(i as i64)])]);
            }
            other => panic!("slot {} expected rows, got {other:?}", 2 * i + 1),
        }
    }
    // After the owed responses, the server closes cleanly.
    assert!(wire::read_frame(&mut s).unwrap().is_none());
}

#[test]
fn large_bidirectional_pipeline_completes() {
    let (_server, addr, _) = serve();
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE t (id INT, payload CHAR(70000), PRIMARY KEY (id))")
        .unwrap();

    // ~9.6 MiB of requests and ~9.6 MiB of responses in one batch —
    // far past what kernel socket buffers hold in either direction, so
    // a client that wrote everything before reading anything would
    // wedge against the server's response writes. The client must
    // stream the batch (threaded writer) while draining replies.
    let payload = "z".repeat(64 << 10);
    let mut batch = Vec::new();
    for i in 0..150i64 {
        batch.push(format!("INSERT INTO t VALUES ({i}, '{payload}')"));
        batch.push(format!("SELECT payload FROM t WHERE id = {i}"));
    }
    let replies = c.pipeline(&batch).unwrap();
    assert_eq!(replies.len(), 300);
    for (slot, reply) in replies.iter().enumerate() {
        if slot % 2 == 0 {
            assert!(
                matches!(reply, Ok(QueryReply::Ok { affected: 1 })),
                "slot {slot}: {reply:?}"
            );
        } else {
            match reply {
                Ok(QueryReply::Rows { rows, .. }) => {
                    assert_eq!(rows.len(), 1, "slot {slot}");
                    match &rows[0][0] {
                        Value::Text(s) => assert_eq!(s.len(), 64 << 10, "slot {slot}"),
                        other => panic!("slot {slot}: expected text, got {other:?}"),
                    }
                }
                other => panic!("slot {slot}: expected rows, got {other:?}"),
            }
        }
    }
}

#[test]
fn err_legally_terminates_a_chunk_sequence_mid_stream() {
    // Nine 1 MiB rows force at least one chunk (4 MiB split target) to
    // flush with more=true before the 17 MiB row proves unencodable;
    // the ERR written after those chunks must come back as the
    // statement's response, and the *next* response in the stream must
    // still be readable (frame sync survives).
    let mut rows: Vec<Row> = (0..9)
        .map(|i| Row(vec![Value::Int(i), Value::from("x".repeat(1 << 20))]))
        .collect();
    rows.push(Row(vec![Value::Int(99), Value::from("y".repeat(17 << 20))]));
    let mut buf: Vec<u8> = Vec::new();
    wire::write_response(
        &mut buf,
        &Response::Rows {
            names: vec!["id".into(), "payload".into()],
            rows,
        },
    )
    .unwrap();
    wire::write_response(&mut buf, &Response::Ok { affected: 7 }).unwrap();

    // The sequence really did start before the failure was detected.
    let mut peek = &buf[..];
    let first = Response::decode(wire::read_frame(&mut peek).unwrap().unwrap()).unwrap();
    assert!(
        matches!(first, Response::RowsChunk { more: true, .. }),
        "expected a flushed continuation chunk first, got {first:?}"
    );

    let mut r = &buf[..];
    match wire::read_response(&mut r).unwrap().expect("response") {
        Response::Err { message, .. } => assert!(message.contains("frame cap"), "{message}"),
        other => panic!("expected the frame-cap ERR, got {other:?}"),
    }
    assert_eq!(
        wire::read_response(&mut r).unwrap().expect("response"),
        Response::Ok { affected: 7 },
        "the statement after the aborted chunk sequence must decode cleanly"
    );
}

#[test]
fn oversized_row_after_flushed_chunks_fails_statement_not_session() {
    let (_server, addr, bf) = serve();
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE huge (id INT, payload CHAR(20000000), PRIMARY KEY (id))")
        .unwrap();
    c.prepare(1, "INSERT INTO huge VALUES (?, ?)").unwrap();
    let medium = "x".repeat(1 << 20);
    for i in 0..9i64 {
        c.execute_prepared(1, Row(vec![Value::Int(i), Value::from(medium.clone())]))
            .unwrap();
    }
    // The 17 MiB row cannot cross the wire in any frame (nor be
    // inserted over it), so plant it server-side via the controller.
    {
        let db = bf.db();
        let mut txn = db.begin();
        bf.insert(
            &mut txn,
            "huge",
            Row(vec![Value::Int(99), Value::from("y".repeat(17 << 20))]),
        )
        .unwrap();
        db.commit(&mut txn).unwrap();
    }

    // The scan flushes chunks of the nine medium rows before tripping
    // on the unsplittable one — the statement alone fails.
    match c.query("SELECT id, payload FROM huge") {
        Err(ClientError::Server { message, .. }) => {
            assert!(message.contains("frame cap"), "{message}");
        }
        other => panic!("expected a frame-cap error, got {other:?}"),
    }

    // The session survives in frame sync.
    let (_, rows) = c.query_rows("SELECT id FROM huge WHERE id = 1").unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn unsplittable_row_fails_the_statement_not_the_session() {
    let (_server, addr, bf) = serve();
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE huge (id INT, payload CHAR(20000000), PRIMARY KEY (id))")
        .unwrap();
    c.execute("INSERT INTO huge VALUES (1, 'small')").unwrap();

    // A single 17 MiB row cannot cross the wire in any frame. It also
    // cannot be *inserted* over the wire (the request would bust the
    // same cap), so plant it server-side through the controller.
    {
        let db = bf.db();
        let mut txn = db.begin();
        bf.insert(
            &mut txn,
            "huge",
            Row(vec![Value::Int(2), Value::from("y".repeat(17 << 20))]),
        )
        .unwrap();
        db.commit(&mut txn).unwrap();
    }

    match c.query("SELECT payload FROM huge WHERE id = 2") {
        Err(ClientError::Server { message, .. }) => {
            assert!(message.contains("frame cap"), "{message}");
        }
        other => panic!("expected a frame-cap error, got {other:?}"),
    }

    // The session survives and the framing is intact.
    let (_, rows) = c.query_rows("SELECT id FROM huge WHERE id = 1").unwrap();
    assert_eq!(rows, vec![Row(vec![Value::Int(1)])]);
}
