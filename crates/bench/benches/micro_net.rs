//! Network protocol microbench: what PREPARE/EXECUTE and pipelining buy
//! over one-QUERY-per-round-trip, on a loopback server.
//!
//! Three client protocols drive the same point-read workload over one
//! connection each:
//!
//! - `query` — SQL text per request, one synchronous round trip per
//!   statement (the wire's baseline protocol);
//! - `prepared` — PREPARE once, then EXECUTE with a bound parameter per
//!   statement, still one round trip each (saves parse/plan text work);
//! - `prepared_pipelined` — PREPARE once, EXECUTE frames written in
//!   batches before any response is read (saves the round trips too).
//!
//! Emits machine-readable JSON to stdout and to `BENCH_net.json` (path
//! overridable via `BENCH_NET_JSON`); wall-clock bounded to a few
//! seconds so the verify script can run it routinely. The headline
//! figure is `speedup_pipelined`: prepared + pipelined throughput over
//! plain QUERY throughput (expected comfortably >= 2x on loopback).

use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_common::{Row, Value};
use bullfrog_core::Bullfrog;
use bullfrog_engine::{Database, DbConfig, EngineMode};
use bullfrog_net::{Client, Server, ServerConfig};

const KEYS: i64 = 1024;
const WARMUP_OPS: usize = 256;
const MEASURE_OPS: usize = 4096;
const PIPELINE_BATCH: usize = 64;

struct Sample {
    protocol: &'static str,
    ops: usize,
    elapsed_ms: f64,
    stmts_per_sec: f64,
}

fn sample(protocol: &'static str, ops: usize, elapsed: Duration) -> Sample {
    Sample {
        protocol,
        ops,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        stmts_per_sec: ops as f64 / elapsed.as_secs_f64(),
    }
}

/// Deterministic key sequence — identical across protocols so every run
/// reads the same rows in the same order.
fn key(i: usize) -> i64 {
    ((i as i64).wrapping_mul(2654435761) & i64::MAX) % KEYS
}

fn run_query(addr: std::net::SocketAddr) -> Sample {
    let mut c = Client::connect(addr).expect("connect");
    for i in 0..WARMUP_OPS {
        c.query_rows(&format!("SELECT v FROM kv WHERE id = {}", key(i)))
            .expect("warmup read");
    }
    let t = Instant::now();
    for i in 0..MEASURE_OPS {
        let (_, rows) = c
            .query_rows(&format!("SELECT v FROM kv WHERE id = {}", key(i)))
            .expect("point read");
        assert_eq!(rows.len(), 1);
    }
    sample("query", MEASURE_OPS, t.elapsed())
}

fn run_prepared(addr: std::net::SocketAddr) -> Sample {
    let mut c = Client::connect(addr).expect("connect");
    c.prepare(1, "SELECT v FROM kv WHERE id = ?")
        .expect("prepare");
    for i in 0..WARMUP_OPS {
        c.execute_prepared(1, Row(vec![Value::Int(key(i))]))
            .expect("warmup read");
    }
    let t = Instant::now();
    for i in 0..MEASURE_OPS {
        c.execute_prepared(1, Row(vec![Value::Int(key(i))]))
            .expect("point read");
    }
    sample("prepared", MEASURE_OPS, t.elapsed())
}

fn run_prepared_pipelined(addr: std::net::SocketAddr) -> Sample {
    let mut c = Client::connect(addr).expect("connect");
    c.prepare(1, "SELECT v FROM kv WHERE id = ?")
        .expect("prepare");
    let batches = |ops: usize, base: usize| {
        (0..ops.div_ceil(PIPELINE_BATCH)).map(move |b| {
            let start = b * PIPELINE_BATCH;
            let end = (start + PIPELINE_BATCH).min(ops);
            (start..end)
                .map(|i| Row(vec![Value::Int(key(base + i))]))
                .collect::<Vec<Row>>()
        })
    };
    for batch in batches(WARMUP_OPS, 0) {
        for reply in c.pipeline_execute(1, &batch).expect("warmup batch") {
            reply.expect("warmup read");
        }
    }
    let t = Instant::now();
    for batch in batches(MEASURE_OPS, WARMUP_OPS) {
        for reply in c.pipeline_execute(1, &batch).expect("pipelined batch") {
            reply.expect("point read");
        }
    }
    sample("prepared_pipelined", MEASURE_OPS, t.elapsed())
}

fn main() {
    let mode = EngineMode::from_env();
    let db = Arc::new(Database::with_config(DbConfig {
        mode,
        ..DbConfig::default()
    }));
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Arc::new(Bullfrog::new(db)),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).expect("admin connect");
    admin
        .execute("CREATE TABLE kv (id INT, v INT, PRIMARY KEY (id))")
        .expect("create kv");
    for chunk in (0..KEYS).collect::<Vec<_>>().chunks(64) {
        let values: Vec<String> = chunk.iter().map(|i| format!("({i}, {})", i * 3)).collect();
        admin
            .execute(&format!("INSERT INTO kv VALUES {}", values.join(", ")))
            .expect("load kv");
    }

    let samples = [
        run_query(addr),
        run_prepared(addr),
        run_prepared_pipelined(addr),
    ];
    let base = samples[0].stmts_per_sec;
    let speedup_prepared = samples[1].stmts_per_sec / base;
    let speedup_pipelined = samples[2].stmts_per_sec / base;

    // Recording-overhead probe: the same prepared+pipelined workload
    // back-to-back with histogram/tracer recording globally off, then
    // on. Reported, not asserted — loopback throughput is noisy at the
    // sub-percent level the recording path actually costs.
    bullfrog_obs::set_enabled(false);
    let obs_off = run_prepared_pipelined(addr);
    bullfrog_obs::set_enabled(true);
    let obs_on = run_prepared_pipelined(addr);
    let obs_overhead_pct =
        (obs_off.stmts_per_sec - obs_on.stmts_per_sec) / obs_off.stmts_per_sec * 100.0;

    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"protocol\": \"{}\", \"ops\": {}, \"elapsed_ms\": {:.3}, \
                 \"stmts_per_sec\": {:.1}}}",
                s.protocol, s.ops, s.elapsed_ms, s.stmts_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"net\",\n  \"engine_mode\": \"{}\",\n  \"keys\": {KEYS},\n  \
         \"pipeline_batch\": {PIPELINE_BATCH},\n  \"speedup_prepared\": {speedup_prepared:.3},\n  \
         \"speedup_pipelined\": {speedup_pipelined:.3},\n  \
         \"obs_overhead_pct\": {obs_overhead_pct:.2},\n  \"samples\": [\n{}\n  ]\n}}\n",
        mode.as_str(),
        rows.join(",\n")
    );
    print!("{json}");
    let path = std::env::var("BENCH_NET_JSON").unwrap_or_else(|_| "BENCH_net.json".to_string());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create BENCH_net.json parent dir");
        }
    }
    std::fs::write(&path, &json).expect("write BENCH_net.json");
    eprintln!("micro_net: wrote {path}");

    server.shutdown();
    assert!(
        speedup_pipelined >= 1.0,
        "pipelined prepared execution slower than plain QUERY: {speedup_pipelined:.3}x"
    );
}
