//! Criterion microbenchmarks of the OLTP substrate: point ops, index
//! scans, spec execution, and whole TPC-C transactions.

use std::sync::Arc;

use bullfrog_common::{row, Value};
use bullfrog_core::Passthrough;
use bullfrog_engine::exec::{execute_spec, ExecOptions};
use bullfrog_engine::{Database, LockPolicy};
use bullfrog_query::{AggFunc, Expr, SelectSpec};
use bullfrog_tpcc::{load, Driver, TpccRng, TpccScale, TxnKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn engine_ops(c: &mut Criterion) {
    let db = Arc::new(Database::new());
    let scale = TpccScale::bench();
    load(&db, &scale).unwrap();
    let mut g = c.benchmark_group("engine");

    g.bench_function("pk_point_read", |b| {
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            let key = [
                Value::Int(1),
                Value::Int(i % 10 + 1),
                Value::Int(i % scale.customers_per_district + 1),
            ];
            let mut txn = db.begin();
            let got = db.get_by_pk(&mut txn, "customer", &key, LockPolicy::Shared);
            db.commit(&mut txn).unwrap();
            black_box(got.unwrap())
        })
    });

    g.bench_function("insert_commit", |b| {
        let mut i = 1_000_000i64;
        b.iter(|| {
            i += 1;
            let mut txn = db.begin();
            db.insert(
                &mut txn,
                "history",
                row![1, 1, 1, 1, 1, Value::Timestamp(i), 100, "bench"],
            )
            .unwrap();
            db.commit(&mut txn).unwrap();
        })
    });

    g.bench_function("secondary_index_scan", |b| {
        let pred = Expr::column("c_w_id")
            .eq(Expr::lit(1))
            .and(Expr::column("c_d_id").eq(Expr::lit(1)))
            .and(Expr::column("c_last").eq(Expr::lit("BARBARBAR")));
        b.iter(|| {
            let mut txn = db.begin();
            let got = db.select(&mut txn, "customer", Some(&pred), LockPolicy::Shared);
            db.commit(&mut txn).unwrap();
            black_box(got.unwrap().len())
        })
    });

    g.bench_function("group_by_aggregate_spec", |b| {
        let spec = SelectSpec::new()
            .from_table("order_line", "ol")
            .filter(
                Expr::col("ol", "ol_w_id")
                    .eq(Expr::lit(1))
                    .and(Expr::col("ol", "ol_d_id").eq(Expr::lit(1))),
            )
            .select("o", Expr::col("ol", "ol_o_id"))
            .select_agg("total", AggFunc::Sum, Expr::col("ol", "ol_amount"));
        b.iter(|| {
            let mut txn = db.begin();
            let out = execute_spec(&db, &mut txn, &spec, &ExecOptions::default());
            db.commit(&mut txn).unwrap();
            black_box(out.unwrap().rows.len())
        })
    });
    g.finish();
}

fn tpcc_txns(c: &mut Criterion) {
    let db = Arc::new(Database::new());
    let scale = TpccScale::bench();
    load(&db, &scale).unwrap();
    let access = Passthrough::new(Arc::clone(&db));
    let driver = Driver::new(scale, None);
    let mut g = c.benchmark_group("tpcc");
    for (name, kind) in [
        ("new_order", TxnKind::NewOrder),
        ("payment", TxnKind::Payment),
        ("order_status", TxnKind::OrderStatus),
        ("stock_level", TxnKind::StockLevel),
    ] {
        g.bench_function(name, |b| {
            let mut rng = TpccRng::new(7);
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                black_box(driver.run_one(&access, &mut rng, kind, i * 1000))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = engine_ops, tpcc_txns
}
criterion_main!(benches);
