//! Cluster scale bench: how the two-phase flip, lazy drain, and
//! aggregate exchange behave as nodes are added.
//!
//! For each node count it stands up a loopback cluster, loads the
//! accounts fixture via routed inserts, and times:
//!
//! - `flip_1to1_ms` — the two-phase logical flip of the 1:1 migration
//!   (the paper's O(statements) switch, here plus two network rounds
//!   per node);
//! - `drain_1to1_ms` — until every node's lazy migration reports
//!   complete;
//! - `flip_nto1_ms` / `drain_nto1_ms` — the same for the GROUP BY
//!   migration;
//! - `exchange_ms` and `partials_moved` — the cross-node merge of
//!   partial aggregates.
//!
//! Emits machine-readable JSON to stdout and to `BENCH_cluster.json`
//! (path overridable via `BENCH_CLUSTER_JSON`); wall-clock bounded to a
//! few seconds so the verify script can run it routinely.

use std::time::{Duration, Instant};

use bullfrog_cluster::{ClusterClient, Coordinator, LocalCluster};
use bullfrog_common::Value;
use bullfrog_engine::EngineMode;

const ACCOUNTS: i64 = 512;
const OWNERS: i64 = 32;

struct Sample {
    nodes: usize,
    flip_1to1_ms: f64,
    drain_1to1_ms: f64,
    flip_nto1_ms: f64,
    drain_nto1_ms: f64,
    exchange_ms: f64,
    partials_moved: u64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run(nodes: usize, mode: EngineMode) -> Sample {
    let cluster = LocalCluster::start(nodes, mode).expect("start cluster");
    let mut coord = Coordinator::connect(&cluster.addrs()).expect("coordinator");
    coord
        .execute_all("CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .expect("create");
    let mut router = ClusterClient::connect(&cluster.addrs()[0]).expect("router");
    for id in 0..ACCOUNTS {
        router
            .execute_key(
                &[Value::Int(id)],
                &format!(
                    "INSERT INTO accounts VALUES ({id}, 'o{}', 1000)",
                    id % OWNERS
                ),
            )
            .expect("load");
    }

    let t = Instant::now();
    let specs = coord
        .migrate(
            "CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) \
             PRIMARY KEY (id)",
        )
        .expect("1:1 flip");
    let flip_1to1 = t.elapsed();
    let t = Instant::now();
    assert!(coord
        .wait_all_complete(Duration::from_secs(60))
        .expect("poll"));
    let drain_1to1 = t.elapsed();
    coord.run_exchange(&specs).expect("release hold");
    coord.finalize_all(true).expect("finalize 1:1");

    let t = Instant::now();
    let specs = coord
        .migrate(
            "CREATE TABLE owner_totals AS (SELECT owner, SUM(balance) AS total \
             FROM accounts_v2 GROUP BY owner) PRIMARY KEY (owner)",
        )
        .expect("n:1 flip");
    let flip_nto1 = t.elapsed();
    let t = Instant::now();
    assert!(coord
        .wait_all_complete(Duration::from_secs(60))
        .expect("poll"));
    let drain_nto1 = t.elapsed();
    let t = Instant::now();
    let moved = coord.run_exchange(&specs).expect("exchange");
    let exchange = t.elapsed();
    coord.finalize_all(false).expect("finalize n:1");

    Sample {
        nodes,
        flip_1to1_ms: ms(flip_1to1),
        drain_1to1_ms: ms(drain_1to1),
        flip_nto1_ms: ms(flip_nto1),
        drain_nto1_ms: ms(drain_nto1),
        exchange_ms: ms(exchange),
        partials_moved: moved,
    }
}

fn main() {
    let mode = EngineMode::from_env();
    let samples: Vec<Sample> = [1, 2, 3].iter().map(|&n| run(n, mode)).collect();
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"nodes\": {}, \"flip_1to1_ms\": {:.3}, \"drain_1to1_ms\": {:.3}, \
                 \"flip_nto1_ms\": {:.3}, \"drain_nto1_ms\": {:.3}, \"exchange_ms\": {:.3}, \
                 \"partials_moved\": {}}}",
                s.nodes,
                s.flip_1to1_ms,
                s.drain_1to1_ms,
                s.flip_nto1_ms,
                s.drain_nto1_ms,
                s.exchange_ms,
                s.partials_moved
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cluster_scale\",\n  \"engine_mode\": \"{}\",\n  \
         \"accounts\": {ACCOUNTS},\n  \"owners\": {OWNERS},\n  \"samples\": [\n{}\n  ]\n}}\n",
        mode.as_str(),
        rows.join(",\n")
    );
    print!("{json}");
    let path =
        std::env::var("BENCH_CLUSTER_JSON").unwrap_or_else(|_| "BENCH_cluster.json".to_string());
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create BENCH_cluster.json parent dir");
        }
    }
    std::fs::write(&path, &json).expect("write BENCH_cluster.json");
    eprintln!("cluster_scale: wrote {path}");
}
