//! Figure 11: migration granularity × access skew (§4.4.3).
//!
//! The bitmap tracks pages of 1 / 64 / 128 / 256 rows instead of single
//! tuples. Coarse granules migrate more data per claim: each client
//! request pays more latency, but the overall migration finishes sooner.
//!
//! Expected shape: under low contention, tuple granularity (1) has the
//! best latency; under a hot 1% set, coarse granularity wins because the
//! whole hot set migrates in a few claims and the queueing from extended
//! migration disappears.

use std::sync::Arc;

use bullfrog_bench::figures::FigureConfig;
use bullfrog_bench::harness::{print_cdf, print_series, run_custom_workload, CustomOp};
use bullfrog_bench::{build_strategy, StrategyKind, StrategyOptions};
use bullfrog_tpcc::txns::{payment, CustomerSelector, PaymentParams, Variant};
use bullfrog_tpcc::{Scenario, TxnOutcome};

fn main() {
    println!("=== Figure 11: migration granularity under skew ===");
    let fig = FigureConfig::from_env();
    let total = fig.scale.total_customers();

    for (hot_label, hot) in [("hot=all", total), ("hot=1%", (total / 100).max(10))] {
        for granule in [1u64, 64, 128, 256] {
            let cfg = fig.run_config(fig.rates.moderate);
            let opts = StrategyOptions {
                granule_rows: granule,
                ..Default::default()
            };
            let (db, strategy) = build_strategy(
                Scenario::CustomerSplit,
                StrategyKind::Bullfrog,
                &fig.scale,
                &cfg,
                &opts,
            );
            let scale = fig.scale.clone();
            let op: CustomOp = Arc::new(move |access, rng, now| {
                let pick = rng.uniform(0, hot - 1);
                let cpd = scale.customers_per_district;
                let c_id = pick % cpd + 1;
                let flat = pick / cpd;
                let d = flat % scale.districts_per_warehouse + 1;
                let w = flat / scale.districts_per_warehouse % scale.warehouses + 1;
                let variant = match access.version() {
                    bullfrog_core::SchemaVersion::New => Variant::CustomerSplit,
                    _ => Variant::Base,
                };
                let p = PaymentParams {
                    w_id: w,
                    d_id: d,
                    c_w_id: w,
                    c_d_id: d,
                    selector: CustomerSelector::Id(c_id),
                    amount: 100,
                    now,
                };
                let db = access.db();
                for _ in 0..20 {
                    let mut txn = db.begin();
                    match payment(access, &mut txn, variant, &p) {
                        Ok(_) => {
                            if db.commit(&mut txn).is_ok() {
                                return (TxnOutcome::Committed, true);
                            }
                            db.abort(&mut txn);
                        }
                        Err(e) if e.is_retryable() => db.abort(&mut txn),
                        Err(e) => {
                            db.abort(&mut txn);
                            return (TxnOutcome::Failed(e), false);
                        }
                    }
                }
                (
                    TxnOutcome::Failed(bullfrog_common::Error::Internal("retries".into())),
                    false,
                )
            });
            let result = run_custom_workload(strategy, op, &cfg);
            println!("\n-- {hot_label}, page={granule} --");
            print_series(&result);
            print_cdf(&result);
            let migrated = db
                .table("customer_pub")
                .map(|t| t.live_count())
                .unwrap_or(0);
            println!("  migrated customer_pub rows: {migrated}");
        }
    }
}
