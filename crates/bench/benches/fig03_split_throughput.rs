//! Figure 3: throughput during the customer table-split migration, at a
//! moderate (paper: 450 TPS) and a saturating (paper: 700 TPS) request
//! rate, for eager / multi-step / BullFrog(bitmap) / BullFrog(on-conflict)
//! and BullFrog without background migration.
//!
//! Expected shape (paper §4.1): eager dips to near-zero for the whole copy
//! and (at max rate) never catches up; multi-step's throughput sags while
//! the copier runs and dual writes accumulate; both BullFrog variants show
//! no visible dip at the moderate rate and only a modest one at max;
//! without background threads the migration does not finish in the window.

use bullfrog_bench::figures::{run_two_rate_panel, FigureConfig};
use bullfrog_bench::{StrategyKind, StrategyOptions};
use bullfrog_tpcc::Scenario;

fn main() {
    println!("=== Figure 3: table-split migration throughput ===");
    let fig = FigureConfig::from_env();
    run_two_rate_panel(
        "fig3 table split",
        Scenario::CustomerSplit,
        &[
            StrategyKind::Eager,
            StrategyKind::MultiStep,
            StrategyKind::Bullfrog,
            StrategyKind::BullfrogOnConflict,
            StrategyKind::BullfrogNoBackground,
        ],
        &fig,
        &StrategyOptions::default(),
    );
}
