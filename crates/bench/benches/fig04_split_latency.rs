//! Figure 4: NewOrder latency CDFs during the table-split migration,
//! including the "TPC-C w/o migration" control.
//!
//! Expected shape (paper §4.1): at the moderate rate the lazy variants
//! track the no-migration CDF closely while eager shows a step (fast
//! left side from after it caught up, slow right side from the downtime
//! queue); at the saturating rate eager's whole CDF shifts out by the
//! downtime it can never recover from, up to an order of magnitude beyond
//! BullFrog's.

use bullfrog_bench::figures::{run_two_rate_panel, FigureConfig};
use bullfrog_bench::{StrategyKind, StrategyOptions};
use bullfrog_tpcc::Scenario;

fn main() {
    println!("=== Figure 4: table-split migration latency CDFs ===");
    let fig = FigureConfig::from_env();
    run_two_rate_panel(
        "fig4 table split latency",
        Scenario::CustomerSplit,
        &[
            StrategyKind::NoMigration,
            StrategyKind::Eager,
            StrategyKind::MultiStep,
            StrategyKind::Bullfrog,
            StrategyKind::BullfrogOnConflict,
        ],
        &fig,
        &StrategyOptions::default(),
    );
}
