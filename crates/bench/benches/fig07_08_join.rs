//! Figures 7 + 8: throughput and latency during the join-denormalization
//! migration (§4.3) — `order_line ⋈ stock` on the item id, a many-to-many
//! join tracked by the hashmap at join-key granularity (§3.6).
//!
//! Expected shape: this is the most expensive migration of the three
//! (output is a multiple of order_line), so every system's dip is wider;
//! eager's downtime dwarfs the others, and at the saturating rate latency
//! climbs until the backlog caps out, while BullFrog still avoids any
//! zero-throughput window.

use bullfrog_bench::figures::{run_two_rate_panel, FigureConfig};
use bullfrog_bench::{StrategyKind, StrategyOptions};
use bullfrog_tpcc::Scenario;

fn main() {
    println!("=== Figures 7/8: join denormalization migration (hashmap n:n) ===");
    let fig = FigureConfig::from_env();
    run_two_rate_panel(
        "fig7/8 join",
        Scenario::JoinDenorm,
        &[
            StrategyKind::NoMigration,
            StrategyKind::Eager,
            StrategyKind::MultiStep,
            StrategyKind::Bullfrog,
        ],
        &fig,
        &StrategyOptions::default(),
    );
}
