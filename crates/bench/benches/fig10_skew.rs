//! Figure 10: skewed data access (§4.4.2).
//!
//! Transactions exclusively access a *hot set* of customers during the
//! table-split migration. Shrinking the hot set raises the probability of
//! duplicate simultaneous migration attempts (SKIP-list waits) and of
//! latch contention on the trackers' hot partitions.
//!
//! Expected shape: a mid-sized hot set (1% of rows here; 15k of 1.5M in
//! the paper) suffers the longest throughput disruption — requests keep
//! looping on locked records (Algorithm 1 line 10). For very small hot
//! sets the opposite happens: the hot set migrates almost instantly and
//! the rest is background work with minor impact.

use std::sync::Arc;

use bullfrog_bench::figures::FigureConfig;
use bullfrog_bench::harness::{print_cdf, print_series, run_custom_workload, CustomOp};
use bullfrog_bench::{build_strategy, StrategyKind, StrategyOptions};
use bullfrog_tpcc::txns::{payment, CustomerSelector, PaymentParams, Variant};
use bullfrog_tpcc::{Scenario, TxnOutcome};

fn main() {
    println!("=== Figure 10: skewed access during table split ===");
    let fig = FigureConfig::from_env();
    let total = fig.scale.total_customers();

    for (label, hot) in [
        ("hot=all", total),
        ("hot=1%", (total / 100).max(10)),
        ("hot=0.2%", (total / 500).max(4)),
    ] {
        let cfg = fig.run_config(fig.rates.moderate);
        let (db, strategy) = build_strategy(
            Scenario::CustomerSplit,
            StrategyKind::Bullfrog,
            &fig.scale,
            &cfg,
            &StrategyOptions::default(),
        );
        let scale = fig.scale.clone();
        let bf_access = Arc::clone(&strategy.access);
        let op: CustomOp = Arc::new(move |access, rng, now| {
            // Payment restricted to the hot set: hot ids are spread over
            // the districts round-robin.
            let pick = rng.uniform(0, hot - 1);
            let cpd = scale.customers_per_district;
            let c_id = pick % cpd + 1;
            let flat = pick / cpd;
            let d = flat % scale.districts_per_warehouse + 1;
            let w = flat / scale.districts_per_warehouse % scale.warehouses + 1;
            let variant = match access.version() {
                bullfrog_core::SchemaVersion::New => Variant::CustomerSplit,
                _ => Variant::Base,
            };
            let p = PaymentParams {
                w_id: w,
                d_id: d,
                c_w_id: w,
                c_d_id: d,
                selector: CustomerSelector::Id(c_id),
                amount: 100,
                now,
            };
            let db = access.db();
            for _ in 0..20 {
                let mut txn = db.begin();
                match payment(access, &mut txn, variant, &p) {
                    Ok(_) => {
                        if db.commit(&mut txn).is_ok() {
                            return (TxnOutcome::Committed, true);
                        }
                        db.abort(&mut txn);
                    }
                    Err(e) if e.is_retryable() => db.abort(&mut txn),
                    Err(e) => {
                        db.abort(&mut txn);
                        return (TxnOutcome::Failed(e), false);
                    }
                }
            }
            (
                TxnOutcome::Failed(bullfrog_common::Error::Internal("retries".into())),
                false,
            )
        });
        let _ = bf_access;
        let result = run_custom_workload(strategy, op, &cfg);
        println!("\n-- {label} ({hot} customers) --");
        print_series(&result);
        print_cdf(&result);
        let migrated = db
            .table("customer_pub")
            .map(|t| t.live_count())
            .unwrap_or(0);
        println!("  migrated customer_pub rows: {migrated}");
    }
}
