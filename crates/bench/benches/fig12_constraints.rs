//! Figure 12: FOREIGN KEY constraints on the table-split migration (§4.5).
//!
//! The new customer tables optionally declare FKs (to district, and — at
//! the strongest level — across the split), which widens the unit of data
//! each request forces through migration. Panel (a) runs the full TPC-C
//! mix; panel (b) removes the transactions that never touch the customer
//! table (StockLevel), making the constraint overhead visible.
//!
//! Expected shape: more constraints → earlier/deeper throughput drop,
//! because the extra migrated-and-checked data lowers the concurrency the
//! engine can sustain.

use bullfrog_bench::figures::FigureConfig;
use bullfrog_bench::harness::{print_cdf, print_series};
use bullfrog_bench::{run_strategy, StrategyKind, StrategyOptions};
use bullfrog_tpcc::migrations::FkLevel;
use bullfrog_tpcc::Scenario;

fn main() {
    println!("=== Figure 12: FK constraints on the table split ===");
    let fig = FigureConfig::from_env();
    let levels = [
        ("pk-only", FkLevel::None),
        ("pk+district-fk", FkLevel::District),
        ("pk+order+district-fk", FkLevel::OrderAndDistrict),
    ];

    for (panel, weights) in [
        ("(a) full workload", None),
        // Panel (b): drop StockLevel (the only type never touching
        // customer) and re-weight toward the customer-heavy transactions.
        ("(b) customer-only workload", Some([46u32, 44, 4, 4, 0])),
    ] {
        println!("\n== fig12 {panel} ==");
        for (label, fk) in levels {
            let opts = StrategyOptions {
                fk,
                weights,
                ..Default::default()
            };
            let cfg = fig.run_config(fig.rates.moderate);
            let result = run_strategy(
                Scenario::CustomerSplit,
                StrategyKind::Bullfrog,
                &fig.scale,
                &cfg,
                &opts,
            );
            println!("-- {label} --");
            print_series(&result);
            print_cdf(&result);
        }
    }
}
