//! Figures 5 + 6: throughput and latency during the aggregation migration
//! (§4.2) — `order_line` totals materialized per order, an n:1 migration
//! tracked by BullFrog's hashmap.
//!
//! Expected shape: same ordering as the table split (eager dips hard,
//! multi-step sags longest, BullFrog barely moves at the moderate rate),
//! but the migration writes far less data (one small row per order), so
//! every system's disruption window is shorter and shallower than in
//! Figures 3/4.

use bullfrog_bench::figures::{run_two_rate_panel, FigureConfig};
use bullfrog_bench::{StrategyKind, StrategyOptions};
use bullfrog_tpcc::Scenario;

fn main() {
    println!("=== Figures 5/6: aggregation migration (hashmap n:1) ===");
    let fig = FigureConfig::from_env();
    run_two_rate_panel(
        "fig5/6 aggregate",
        Scenario::OrderTotals,
        &[
            StrategyKind::NoMigration,
            StrategyKind::Eager,
            StrategyKind::MultiStep,
            StrategyKind::Bullfrog,
        ],
        &fig,
        &StrategyOptions::default(),
    );
}
