//! Figure 9: data-structure maintenance cost (§4.4.1).
//!
//! The workload is modified so that requests cumulatively touch each old
//! tuple **exactly once** — with disjoint accesses, migration-status
//! tracking is unnecessary, so comparing BullFrog's bitmap path against a
//! tracker-free copy isolates the overhead of maintaining the structures.
//!
//! Expected shape: the two lines are nearly identical — "the throughput
//! and latency improvements of removing the tracking data structures is
//! small since they do not introduce significant overhead."

use std::sync::Arc;
use std::time::Instant;

use bullfrog_bench::figures::FigureConfig;
use bullfrog_bench::harness::percentile;
use bullfrog_core::{BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, Passthrough};
use bullfrog_engine::exec::{execute_spec, ExecOptions};
use bullfrog_engine::LockPolicy;
use bullfrog_query::Expr;
use bullfrog_tpcc::migrations::{customer_split_plan, FkLevel};
use bullfrog_tpcc::{load, Scenario};

/// Sequentially covers every customer in id-range batches, through the
/// given "migrate this range" closure; returns (elapsed_s, ops/s, p50 µs,
/// p99 µs).
fn cover_all(
    scale: &bullfrog_tpcc::TpccScale,
    batch: i64,
    mut op: impl FnMut(i64, i64, i64, i64),
) -> (f64, f64, u64, u64) {
    let start = Instant::now();
    let mut lats = Vec::new();
    let mut ops = 0u64;
    for w in 1..=scale.warehouses {
        for d in 1..=scale.districts_per_warehouse {
            let mut lo = 1i64;
            while lo <= scale.customers_per_district {
                let hi = (lo + batch).min(scale.customers_per_district + 1);
                let t0 = Instant::now();
                op(w, d, lo, hi);
                lats.push(t0.elapsed().as_micros() as u64);
                ops += 1;
                lo = hi;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    lats.sort_unstable();
    (
        elapsed,
        ops as f64 / elapsed,
        percentile(&lats, 0.5),
        percentile(&lats, 0.99),
    )
}

fn main() {
    println!("=== Figure 9: tracking data-structure maintenance cost ===");
    let fig = FigureConfig::from_env();
    let batch = 20i64;

    // BullFrog bitmap path: every range request goes through Algorithm 1.
    let db = {
        let db = Arc::new(bullfrog_engine::Database::new());
        load(&db, &fig.scale).unwrap();
        db
    };
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    bf.submit_migration(customer_split_plan(FkLevel::None))
        .unwrap();
    Scenario::CustomerSplit.create_output_indexes(&db).unwrap();
    let (el, ops, p50, p99) = cover_all(&fig.scale, batch, |w, d, lo, hi| {
        let pred = Expr::column("c_w_id")
            .eq(Expr::lit(w))
            .and(Expr::column("c_d_id").eq(Expr::lit(d)))
            .and(Expr::column("c_id").ge(Expr::lit(lo)))
            .and(Expr::column("c_id").lt(Expr::lit(hi)));
        let mut txn = db.begin();
        bf.select(&mut txn, "customer_pub", Some(&pred), LockPolicy::Shared)
            .unwrap();
        bf.select(&mut txn, "customer_priv", Some(&pred), LockPolicy::Shared)
            .unwrap();
        db.commit(&mut txn).unwrap();
    });
    println!(
        "bullfrog-bitmap    total={el:.2}s ops/s={ops:.0} p50={:.2}ms p99={:.2}ms",
        p50 as f64 / 1000.0,
        p99 as f64 / 1000.0
    );
    let rows = db.table("customer_pub").unwrap().live_count();
    assert_eq!(rows as i64, fig.scale.total_customers());

    // Tracker-free path: the same per-range work (read old, transform,
    // insert new) with no claims, no bitmap, no status flips.
    let db2 = {
        let db = Arc::new(bullfrog_engine::Database::new());
        load(&db, &fig.scale).unwrap();
        db
    };
    let mut plan = customer_split_plan(FkLevel::None);
    plan.resolve(&db2).unwrap();
    for s in &plan.statements {
        db2.create_table(s.output.clone()).unwrap();
    }
    let pass = Passthrough::new(Arc::clone(&db2));
    let (el, ops, p50, p99) = cover_all(&fig.scale, batch, |w, d, lo, hi| {
        let filter = Expr::col("c", "c_w_id")
            .eq(Expr::lit(w))
            .and(Expr::col("c", "c_d_id").eq(Expr::lit(d)))
            .and(Expr::col("c", "c_id").ge(Expr::lit(lo)))
            .and(Expr::col("c", "c_id").lt(Expr::lit(hi)));
        let mut txn = db2.begin();
        for s in &plan.statements {
            let mut opts = ExecOptions {
                lock: LockPolicy::None,
                ..Default::default()
            };
            opts.extra_filters.insert("c".into(), filter.clone());
            let out = execute_spec(&db2, &mut txn, &s.spec, &opts).unwrap();
            for row in out.rows {
                db2.insert(&mut txn, &s.output.name, row).unwrap();
            }
        }
        db2.commit(&mut txn).unwrap();
        // Read back the migrated slice, matching the bitmap run's reads.
        let bare = Expr::column("c_w_id")
            .eq(Expr::lit(w))
            .and(Expr::column("c_d_id").eq(Expr::lit(d)))
            .and(Expr::column("c_id").ge(Expr::lit(lo)))
            .and(Expr::column("c_id").lt(Expr::lit(hi)));
        let mut txn = db2.begin();
        pass.select(&mut txn, "customer_pub", Some(&bare), LockPolicy::Shared)
            .unwrap();
        pass.select(&mut txn, "customer_priv", Some(&bare), LockPolicy::Shared)
            .unwrap();
        db2.commit(&mut txn).unwrap();
    });
    println!(
        "no-tracking        total={el:.2}s ops/s={ops:.0} p50={:.2}ms p99={:.2}ms",
        p50 as f64 / 1000.0,
        p99 as f64 / 1000.0
    );
    assert_eq!(
        db2.table("customer_pub").unwrap().live_count() as i64,
        fig.scale.total_customers()
    );
}
