//! WAL durability microbenchmarks: 8 concurrent committers against the
//! group-commit log, sweeping the durability shard count and the commit
//! acknowledgement mode.
//!
//! Expected shape: in `nowait` (throughput-bound) mode the sharded log
//! wins — four flusher lanes drain the staged queues in parallel, each
//! writing and fsyncing a quarter of the bytes. In `durable`
//! (latency-bound) mode each commit's ack is one fsync round on its own
//! shard either way, so on a single-device host — where concurrent
//! fsyncs slow each other at the journal — one big group-commit lane can
//! beat four small ones; sharding is a throughput feature, not a sync
//! latency one.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{row, RowId, TableId, TxnId};
use bullfrog_txn::wal::{shard_file_path, LogRecord, Wal, WalOptions};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

/// Committers racing for the log in each measured burst.
const COMMITTERS: usize = 8;
/// Transactions each committer makes durable per burst — enough that the
/// flusher lanes reach steady state and fsync counts, not thread spawns,
/// dominate the measurement.
const TXNS_PER_COMMITTER: usize = 200;

fn bench_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bullfrog-bench-{tag}-{}.wal", std::process::id()))
}

fn remove_wal_shards(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    for shard in 1.. {
        if std::fs::remove_file(shard_file_path(path, shard)).is_err() {
            break;
        }
    }
}

/// Rows per transaction — enough payload that flush cost is dominated by
/// bytes written, which is what partitions across durability shards.
const ROWS_PER_TXN: usize = 8;

/// One committer's transaction batch: Begin + inserts + Commit for a txn
/// id unique to `(worker, i)` so shard assignment spreads like real
/// traffic.
fn batch(worker: usize, i: usize) -> Vec<LogRecord> {
    let txn = TxnId((worker * 1_000_000 + i + 1) as u64);
    let payload = "x".repeat(256);
    let mut records = Vec::with_capacity(ROWS_PER_TXN + 2);
    records.push(LogRecord::Begin(txn));
    for r in 0..ROWS_PER_TXN {
        records.push(LogRecord::Insert {
            txn,
            table: TableId(1),
            rid: RowId::from_ordinal((i * ROWS_PER_TXN + r) as u64, 64),
            row: row![(r as i64), payload.as_str()],
        });
    }
    records.push(LogRecord::Commit(txn));
    records
}

/// A fresh file-backed log for one measured burst, so every sample
/// starts from an empty queue and a small file.
fn fresh_wal(tag: &str, shards: usize) -> (Arc<Wal>, PathBuf) {
    let path = bench_path(tag);
    remove_wal_shards(&path);
    let wal = Wal::with_file_opts(
        &path,
        WalOptions {
            group_window: Duration::ZERO,
            shards,
        },
    )
    .expect("bench wal");
    (Arc::new(wal), path)
}

fn wal_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_commit_8x");
    for shards in [1usize, 4] {
        g.bench_function(&format!("durable_shards{shards}"), |b| {
            b.iter_batched(
                || fresh_wal(&format!("durable-s{shards}"), shards),
                |(wal, path)| {
                    std::thread::scope(|s| {
                        for w in 0..COMMITTERS {
                            let wal = Arc::clone(&wal);
                            s.spawn(move || {
                                for i in 0..TXNS_PER_COMMITTER {
                                    black_box(wal.append_batch_durable(batch(w, i)));
                                }
                            });
                        }
                    });
                    // Dropping the handle joins the flushers — part of
                    // the drain. File deletion happens in the next
                    // iteration's untimed setup.
                    drop(wal);
                    path
                },
                BatchSize::PerIteration,
            )
        });
        remove_wal_shards(&bench_path(&format!("durable-s{shards}")));

        g.bench_function(&format!("nowait_shards{shards}"), |b| {
            b.iter_batched(
                || fresh_wal(&format!("nowait-s{shards}"), shards),
                |(wal, path)| {
                    std::thread::scope(|s| {
                        for w in 0..COMMITTERS {
                            let wal = Arc::clone(&wal);
                            s.spawn(move || {
                                let mut last = None;
                                for i in 0..TXNS_PER_COMMITTER {
                                    last = Some(wal.append_batch_enqueue(batch(w, i)));
                                }
                                // Ack latency is off the committer's
                                // path; only the burst's last ticket is
                                // awaited.
                                last.unwrap().wait();
                            });
                        }
                    });
                    drop(wal);
                    path
                },
                BatchSize::PerIteration,
            )
        });
        remove_wal_shards(&bench_path(&format!("nowait-s{shards}")));
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = wal_commit
}
criterion_main!(benches);
