//! Criterion microbenchmarks of the MVCC substrate: the same point
//! operations under both engine modes (2PL read-committed vs snapshot
//! isolation), plus the SI-only paths — version-chain traversal from an
//! old snapshot and first-updater-wins conflict detection — that have
//! no 2PL counterpart.

use std::sync::Arc;

use bullfrog_common::{row, ColumnDef, DataType, RowId, TableSchema, Value};
use bullfrog_engine::{Database, DbConfig, EngineMode, LockPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const ROWS: i64 = 1_000;

/// A single-table database in the given mode, loaded with [`ROWS`]
/// accounts and every row updated once so SI reads traverse real
/// version metadata rather than the fresh-insert fast path.
fn db_in(mode: EngineMode) -> (Arc<Database>, Vec<RowId>) {
    let db = Arc::new(Database::with_config(DbConfig {
        mode,
        ..DbConfig::default()
    }));
    db.create_table(
        TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("balance", DataType::Int),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    let rids = db
        .with_txn(|txn| {
            (0..ROWS)
                .map(|i| db.insert(txn, "accounts", row![i, 100]))
                .collect::<Result<Vec<_>, _>>()
        })
        .unwrap();
    for (i, rid) in rids.iter().enumerate() {
        db.with_txn(|txn| db.update(txn, "accounts", *rid, row![i as i64, 100]))
            .unwrap();
    }
    (db, rids)
}

fn mode_pairs(c: &mut Criterion) {
    for mode in [EngineMode::TwoPL, EngineMode::Snapshot] {
        let (db, rids) = db_in(mode);
        let name = format!("mvcc_{}", mode.as_str());
        let mut g = c.benchmark_group(name.as_str());

        g.bench_function("pk_point_read", |b| {
            let mut i = 0i64;
            b.iter(|| {
                i += 1;
                let key = [Value::Int(i % ROWS)];
                let mut txn = db.begin();
                let got = db.get_by_pk(&mut txn, "accounts", &key, LockPolicy::Shared);
                db.commit(&mut txn).unwrap();
                black_box(got.unwrap())
            })
        });

        g.bench_function("update_commit", |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                // Bound resident chain length: with no live snapshots the
                // horizon is the stable frontier, so GC strips everything
                // this bench installed (no-op under 2PL).
                if i % 8192 == 0 {
                    db.version_gc();
                }
                let rid = rids[(i % ROWS as u64) as usize];
                let id = (i % ROWS as u64) as i64;
                db.with_txn(|txn| db.update(txn, "accounts", rid, row![id, 100 + (i % 7) as i64]))
                    .unwrap();
            })
        });

        g.bench_function("full_scan", |b| {
            b.iter(|| {
                let mut txn = db.begin();
                let got = db.select(&mut txn, "accounts", None, LockPolicy::Shared);
                db.commit(&mut txn).unwrap();
                black_box(got.unwrap().len())
            })
        });
        g.finish();
    }
}

fn si_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("mvcc_si_chains");

    // A reader whose snapshot predates `depth` committed updates must
    // walk that many chain nodes to find its visible version.
    for depth in [1usize, 8, 64] {
        let (db, rids) = db_in(EngineMode::Snapshot);
        let rid = rids[0];
        let mut old_reader = db.begin();
        // Pin the snapshot (and the GC horizon) before growing the chain.
        let key = [Value::Int(0)];
        black_box(
            db.get_by_pk(&mut old_reader, "accounts", &key, LockPolicy::Shared)
                .unwrap(),
        );
        for v in 0..depth {
            db.with_txn(|txn| db.update(txn, "accounts", rid, row![0, 200 + v as i64]))
                .unwrap();
        }
        let name = format!("read_behind_depth_{depth}");
        g.bench_function(name.as_str(), |b| {
            b.iter(|| {
                let got = db.get_by_pk(&mut old_reader, "accounts", &key, LockPolicy::Shared);
                black_box(got.unwrap())
            })
        });
        db.commit(&mut old_reader).unwrap();
    }

    // First-updater-wins: the loser detects the conflict at its first
    // touch of the row and aborts; this is the retry path's fixed cost.
    let (db, rids) = db_in(EngineMode::Snapshot);
    let rid = rids[0];
    g.bench_function("write_conflict_detect_abort", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if i % 8192 == 0 {
                db.version_gc();
            }
            let mut loser = db.begin();
            db.with_txn(|txn| db.update(txn, "accounts", rid, row![0, (i % 9) as i64]))
                .unwrap();
            let err = db
                .update(&mut loser, "accounts", rid, row![0, -1])
                .unwrap_err();
            db.abort(&mut loser);
            black_box(err)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = mode_pairs, si_only
}
criterion_main!(benches);
