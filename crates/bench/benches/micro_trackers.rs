//! Criterion microbenchmarks of the migration trackers and the predicate
//! transposition — the per-operation costs behind Figure 9's "tracking
//! overhead is small" claim.

use std::sync::Arc;

use bullfrog_common::Value;
use bullfrog_core::granule::WorkList;
use bullfrog_core::{BitmapTracker, Granule, HashTracker, Tracker};
use bullfrog_query::{transpose, ColRef, Expr, SelectSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bitmap_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitmap");
    g.bench_function("claim+mark", |b| {
        b.iter_batched(
            || (BitmapTracker::new(1 << 16, 1), 0u64),
            |(t, _)| {
                let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
                for o in 0..1000u64 {
                    t.try_claim(&Granule::Ordinal(o), &mut wip, &mut skip);
                }
                t.mark_migrated(wip.items());
                black_box(wip.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("state_read_migrated", |b| {
        let t = BitmapTracker::new(1 << 16, 1);
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        for o in 0..1000u64 {
            t.try_claim(&Granule::Ordinal(o), &mut wip, &mut skip);
        }
        t.mark_migrated(wip.items());
        b.iter(|| {
            let mut migrated = 0;
            for o in 0..1000u64 {
                let (mut w, mut s) = (WorkList::new(), WorkList::new());
                if !t.try_claim(&Granule::Ordinal(o), &mut w, &mut s) {
                    migrated += 1;
                }
            }
            black_box(migrated)
        })
    });
    g.bench_function("contended_claims_8_threads", |b| {
        b.iter_batched(
            || Arc::new(BitmapTracker::new(1 << 14, 1)),
            |t| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let t = Arc::clone(&t);
                        std::thread::spawn(move || {
                            let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
                            for o in 0..2000u64 {
                                t.try_claim(&Granule::Ordinal(o), &mut wip, &mut skip);
                            }
                            t.mark_migrated(wip.items());
                            wip.len()
                        })
                    })
                    .collect();
                let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                assert_eq!(total, 2000);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn hashmap_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashmap");
    g.bench_function("claim+mark", |b| {
        b.iter_batched(
            HashTracker::new,
            |t| {
                let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
                for k in 0..1000i64 {
                    t.try_claim(&Granule::Group(vec![Value::Int(k)]), &mut wip, &mut skip);
                }
                t.mark_migrated(wip.items());
                black_box(wip.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("composite_keys", |b| {
        b.iter_batched(
            HashTracker::new,
            |t| {
                let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
                for k in 0..500i64 {
                    t.try_claim(
                        &Granule::Group(vec![
                            Value::Int(k % 10),
                            Value::Int(k / 10),
                            Value::Int(k),
                        ]),
                        &mut wip,
                        &mut skip,
                    );
                }
                t.mark_migrated(wip.items());
                black_box(wip.len())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn lock_shard_hash(c: &mut Criterion) {
    use bullfrog_common::{RowId, TableId, TxnId};
    use bullfrog_txn::{LockKey, LockManager, LockMode};
    use std::time::Duration;

    let mut g = c.benchmark_group("lock_shard");
    // The deterministic FNV hash that picks a lock-table shard (and a
    // tracker partition) — the per-acquire cost the DefaultHasher swap
    // had to not regress.
    g.bench_function("fnv_hash_key", |b| {
        let keys: Vec<LockKey> = (0..1024u64)
            .map(|r| LockKey::Row(TableId(3), RowId::from_ordinal(r, 64)))
            .collect();
        b.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc ^= bullfrog_common::fnv_hash_one(k);
            }
            black_box(acc)
        })
    });
    // End-to-end acquire/release through the sharded table, single txn,
    // distinct rows: dominated by shard pick + mutex + map entry.
    g.bench_function("acquire_release_1k", |b| {
        b.iter_batched(
            || LockManager::new(Duration::from_millis(50)),
            |lm| {
                for r in 0..1000u64 {
                    lm.acquire(
                        TxnId(1),
                        LockKey::Row(TableId(3), RowId::from_ordinal(r, 64)),
                        LockMode::X,
                    )
                    .unwrap();
                }
                lm.release_all(
                    TxnId(1),
                    (0..1000u64).map(|r| LockKey::Row(TableId(3), RowId::from_ordinal(r, 64))),
                );
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn transposition(c: &mut Criterion) {
    let spec = SelectSpec::new()
        .from_table("flights", "f")
        .from_table("flewon", "fi")
        .join_on(ColRef::new("f", "flightid"), ColRef::new("fi", "flightid"))
        .select("fid", Expr::col("f", "flightid"))
        .select("flightdate", Expr::col("fi", "flightdate"))
        .select(
            "empty_seats",
            Expr::col("f", "capacity").sub(Expr::col("fi", "passenger_count")),
        );
    let pred = Expr::column("fid")
        .eq(Expr::lit("AA101"))
        .and(Expr::column("flightdate").ge(Expr::lit(Value::Date(1))))
        .and(Expr::column("empty_seats").gt(Expr::lit(0)));
    c.bench_function("transpose_paper_example", |b| {
        b.iter(|| black_box(transpose(&spec, Some(&pred))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bitmap_ops, hashmap_ops, lock_shard_hash, transposition
}
criterion_main!(benches);
