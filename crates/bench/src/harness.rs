//! Open-loop workload runner.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_core::ClientAccess;
use bullfrog_tpcc::{Driver, TpccRng, TxnKind, TxnOutcome};
use parking_lot::Mutex;

/// A strategy under test: the client access object plus the action that
/// kicks off its migration and the predicate that detects completion.
pub struct Strategy {
    /// Display name (used in the printed series).
    pub name: String,
    /// Client interface.
    pub access: Arc<dyn ClientAccess>,
    /// Starts the migration (called once at `migrate_at`). `None` = the
    /// no-migration control.
    #[allow(clippy::type_complexity)]
    pub start_migration: Option<Box<dyn FnOnce() + Send>>,
    /// Polled to detect migration completion.
    #[allow(clippy::type_complexity)]
    pub is_complete: Box<dyn Fn() -> bool + Send + Sync>,
}

/// One experiment run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Arrivals per second.
    pub rate_tps: f64,
    /// Total run length.
    pub duration: Duration,
    /// When the migration is submitted.
    pub migrate_at: Duration,
    /// Worker threads (the paper dedicates 8 cores).
    pub clients: usize,
    /// Workload RNG seed base.
    pub seed: u64,
    /// Throughput bucket width in ms (the compressed timescale needs
    /// sub-second resolution to show the migration dips).
    pub bucket_ms: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            rate_tps: 500.0,
            duration: Duration::from_secs(10),
            migrate_at: Duration::from_secs(2),
            clients: 8,
            seed: 42,
            bucket_ms: 500,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Strategy name.
    pub name: String,
    /// Bucket width used for `per_bucket`.
    pub bucket_ms: u64,
    /// Committed transactions per bucket.
    pub per_bucket: Vec<u32>,
    /// End-to-end latencies (µs) of NewOrder transactions completed after
    /// `migrate_at` (the paper's Figure 4/6/8 population).
    pub new_order_latencies_us: Vec<u64>,
    /// Seconds (relative to run start) when the migration was submitted.
    pub migration_start_s: f64,
    /// Seconds when it completed (`None` = did not finish in the window).
    pub migration_end_s: Option<f64>,
    /// Total committed transactions.
    pub committed: u64,
    /// Transactions that exhausted retries.
    pub failed: u64,
    /// Durability counters captured at run end (`None` when the caller
    /// did not have the database at hand to capture them).
    pub durability: Option<bullfrog_core::DurabilityStats>,
}

impl RunResult {
    /// `(p50, p95, p99)` NewOrder latency in µs.
    pub fn latency_percentiles(&self) -> (u64, u64, u64) {
        let mut v = self.new_order_latencies_us.clone();
        v.sort_unstable();
        (
            percentile(&v, 0.50),
            percentile(&v, 0.95),
            percentile(&v, 0.99),
        )
    }

    /// CDF sample points `(latency_us, fraction)` at the given fractions.
    pub fn latency_cdf(&self, fractions: &[f64]) -> Vec<(u64, f64)> {
        let mut v = self.new_order_latencies_us.clone();
        v.sort_unstable();
        fractions.iter().map(|&f| (percentile(&v, f), f)).collect()
    }
}

/// Percentile of a **sorted** slice (nearest-rank); 0 for empty input.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// A custom workload operation: given the client access, a worker RNG,
/// and the scheduled arrival time (µs since run start), run one
/// transaction. The boolean says whether its latency belongs in the
/// reported CDF.
pub type CustomOp =
    Arc<dyn Fn(&dyn ClientAccess, &mut TpccRng, i64) -> (TxnOutcome, bool) + Send + Sync>;

/// Runs the standard TPC-C mix against one strategy (latency CDF =
/// NewOrder, as in the paper's figures).
pub fn run_workload(strategy: Strategy, driver: Arc<Driver>, cfg: &RunConfig) -> RunResult {
    let op: CustomOp = Arc::new(move |access, rng, now| {
        let kind = driver.pick_kind(rng);
        let outcome = driver.run_one(access, rng, kind, now);
        (outcome, kind == TxnKind::NewOrder)
    });
    run_custom_workload(strategy, op, cfg)
}

/// Runs an arbitrary per-arrival operation against one strategy.
///
/// Arrival *i* is scheduled at `start + i / rate`; a worker that picks an
/// arrival whose scheduled time has passed executes immediately, so when
/// the system cannot keep up, completions lag their schedule and the
/// latency of every subsequent transaction grows — the open-loop queue.
pub fn run_custom_workload(strategy: Strategy, op: CustomOp, cfg: &RunConfig) -> RunResult {
    let start = Instant::now();
    let end = start + cfg.duration;
    let buckets = (cfg.duration.as_millis() as u64 / cfg.bucket_ms + 1) as usize;

    let arrivals = Arc::new(AtomicU64::new(0));
    let committed = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let per_bucket: Arc<Vec<AtomicU64>> =
        Arc::new((0..buckets).map(|_| AtomicU64::new(0)).collect());
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));

    // Worker threads.
    let mut workers = Vec::new();
    for worker_id in 0..cfg.clients {
        let access = Arc::clone(&strategy.access);
        let op = Arc::clone(&op);
        let arrivals = Arc::clone(&arrivals);
        let committed = Arc::clone(&committed);
        let failed = Arc::clone(&failed);
        let per_bucket = Arc::clone(&per_bucket);
        let latencies = Arc::clone(&latencies);
        let stop = Arc::clone(&stop);
        let rate = cfg.rate_tps;
        let migrate_at = cfg.migrate_at;
        let seed = cfg.seed;
        let bucket_ms = cfg.bucket_ms;
        workers.push(std::thread::spawn(move || {
            let mut rng = TpccRng::new(seed.wrapping_add(worker_id as u64 * 7919));
            let mut local_lat: Vec<u64> = Vec::new();
            loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = arrivals.fetch_add(1, Ordering::Relaxed);
                let sched = start + Duration::from_secs_f64(i as f64 / rate);
                if sched >= end {
                    break;
                }
                let now = Instant::now();
                if sched > now {
                    std::thread::sleep(sched - now);
                }
                let (outcome, track_latency) = op(
                    access.as_ref(),
                    &mut rng,
                    sched.duration_since(start).as_micros() as i64,
                );
                let done = Instant::now();
                match outcome {
                    TxnOutcome::Committed | TxnOutcome::UserAbort => {
                        committed.fetch_add(1, Ordering::Relaxed);
                        let bucket =
                            (done.duration_since(start).as_millis() as u64 / bucket_ms) as usize;
                        if bucket < per_bucket.len() {
                            per_bucket[bucket].fetch_add(1, Ordering::Relaxed);
                        }
                        if track_latency && done.duration_since(start) >= migrate_at {
                            local_lat.push(done.duration_since(sched).as_micros() as u64);
                        }
                    }
                    TxnOutcome::Failed(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            latencies.lock().extend(local_lat);
        }));
    }

    // Controller thread: fire the migration, watch for completion.
    let migration_end;
    {
        let is_complete = &strategy.is_complete;
        let mut start_migration = strategy.start_migration;
        let mut end_seen: Option<f64> = None;
        let mut migration_thread: Option<std::thread::JoinHandle<()>> = None;
        while Instant::now() < end {
            let elapsed = start.elapsed();
            if elapsed >= cfg.migrate_at {
                if let Some(f) = start_migration.take() {
                    // Eager migration blocks; run it on its own thread.
                    migration_thread = Some(std::thread::spawn(f));
                }
                if end_seen.is_none() && start_migration.is_none() && is_complete() {
                    end_seen = Some(elapsed.as_secs_f64());
                }
            }
            if end_seen.is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        migration_end = end_seen;
        // Let the run finish; then make sure the migration thread ends.
        while Instant::now() < end {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
        if let Some(h) = migration_thread {
            let _ = h.join();
        }
    }
    for w in workers {
        let _ = w.join();
    }

    RunResult {
        name: strategy.name,
        bucket_ms: cfg.bucket_ms,
        per_bucket: per_bucket
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as u32)
            .collect(),
        new_order_latencies_us: {
            let mut guard = latencies.lock();
            std::mem::take(&mut *guard)
        },
        migration_start_s: cfg.migrate_at.as_secs_f64(),
        migration_end_s: migration_end,
        committed: committed.load(Ordering::Relaxed),
        failed: failed.load(Ordering::Relaxed),
        durability: None,
    }
}

/// Closed-loop burst to find the machine's max sustainable TPS for a
/// loaded database + driver (used to pick the paper-equivalent "450" and
/// "700" request rates).
pub fn calibrate_max_tps(
    access: &Arc<dyn ClientAccess>,
    driver: &Driver,
    clients: usize,
    window: Duration,
) -> f64 {
    let done = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for w in 0..clients {
        let access = Arc::clone(access);
        let done = Arc::clone(&done);
        let stop = Arc::clone(&stop);
        let driver2 = Driver {
            scale: driver.scale.clone(),
            scenario: driver.scenario,
            max_retries: driver.max_retries,
            rollback_pct: driver.rollback_pct,
            weights: driver.weights,
        };
        workers.push(std::thread::spawn(move || {
            let mut rng = TpccRng::new(0xCA11B7 + w as u64);
            let mut i = 0i64;
            while !stop.load(Ordering::Relaxed) {
                let kind = driver2.pick_kind(&mut rng);
                if driver2
                    .run_one(access.as_ref(), &mut rng, kind, i * 1000)
                    .is_success()
                {
                    done.fetch_add(1, Ordering::Relaxed);
                }
                i += 1;
            }
        }));
    }
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }
    done.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
}

/// Prints a run as the textual equivalent of a throughput figure panel.
pub fn print_series(result: &RunResult) {
    let end = result
        .migration_end_s
        .map(|e| format!("{e:.1}s"))
        .unwrap_or_else(|| "not finished".into());
    println!(
        "# {}: committed={} failed={} migration {:.1}s -> {}",
        result.name, result.committed, result.failed, result.migration_start_s, end
    );
    let scale = 1000.0 / result.bucket_ms as f64;
    let series: Vec<String> = result
        .per_bucket
        .iter()
        .enumerate()
        .map(|(b, n)| {
            format!(
                "{:.1}:{:.0}",
                b as f64 * result.bucket_ms as f64 / 1000.0,
                *n as f64 * scale
            )
        })
        .collect();
    println!("  tps  {}", series.join(" "));
    let (p50, p95, p99) = result.latency_percentiles();
    println!(
        "  lat  p50={:.2}ms p95={:.2}ms p99={:.2}ms (n={})",
        p50 as f64 / 1000.0,
        p95 as f64 / 1000.0,
        p99 as f64 / 1000.0,
        result.new_order_latencies_us.len()
    );
    if let Some(d) = &result.durability {
        println!("  wal  {}", d.summary());
    }
}

/// Prints a latency CDF as the textual equivalent of a latency figure.
pub fn print_cdf(result: &RunResult) {
    let points = result.latency_cdf(&[0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0]);
    let line: Vec<String> = points
        .iter()
        .map(|(us, f)| format!("{:.2}ms@{:.0}%", *us as f64 / 1000.0, f * 100.0))
        .collect();
    println!("  cdf  {} — {}", result.name, line.join(" "));
}
