//! The benchmark harness regenerating the BullFrog paper's evaluation
//! (Figures 3–12), plus Criterion microbenchmarks.
//!
//! Methodology mirrors OLTP-Bench as used in §4:
//!
//! - **open loop**: transaction arrivals are scheduled at a fixed rate;
//!   when the database falls behind, latency grows with the (virtual)
//!   queue — exactly how the paper's eager baseline accumulates a backlog;
//! - throughput is reported per wall-clock second; latency is end-to-end
//!   from scheduled arrival to completion;
//! - each experiment runs the same workload against several evolution
//!   strategies and prints the per-second series and latency CDF that the
//!   corresponding figure plots.
//!
//! Scale substitution (documented in DESIGN.md/EXPERIMENTS.md): the paper
//! drives 50 warehouses at 450/700 TPS for 200+ seconds on PostgreSQL;
//! here the database is an in-process engine, so the default bench scale
//! is `TpccScale::bench`-sized with request rates calibrated to the
//! machine (the "450" condition is ~60% of measured max, the "700"
//! condition is ~105% of max). Figure *shapes* — who dips, who queues, who
//! finishes first — are the reproduction target, not absolute numbers.

pub mod figures;
pub mod harness;
pub mod scenarios;

pub use figures::FigureConfig;
pub use harness::{percentile, RunConfig, RunResult, Strategy};
pub use scenarios::{build_strategy, run_strategy, Rates, StrategyKind, StrategyOptions};
