//! Strategy construction for the figure benches: fresh database + loaded
//! TPC-C + one evolution strategy, all behind the uniform harness types.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, DedupMode, EagerMigrator,
    MultiStepMigrator, Passthrough,
};
use bullfrog_engine::{Database, DbConfig};
use bullfrog_tpcc::migrations::FkLevel;
use bullfrog_tpcc::{load, Driver, Scenario, TpccScale};

use crate::harness::{calibrate_max_tps, run_workload, RunConfig, RunResult, Strategy};

/// Which evolution strategy a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// No migration at all (the paper's "TPC-C w/o migration" control).
    NoMigration,
    /// Blocking eager migration.
    Eager,
    /// Shadow-table multi-step migration.
    MultiStep,
    /// BullFrog with its native trackers (bitmap/hashmap).
    Bullfrog,
    /// BullFrog deduplicating via `ON CONFLICT` (§3.7).
    BullfrogOnConflict,
    /// BullFrog with background migration disabled (the dotted lines of
    /// Figure 3 — the migration never completes in the window).
    BullfrogNoBackground,
}

impl StrategyKind {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::NoMigration => "no-migration",
            StrategyKind::Eager => "eager",
            StrategyKind::MultiStep => "multistep",
            StrategyKind::Bullfrog => "bullfrog",
            StrategyKind::BullfrogOnConflict => "bullfrog-onconflict",
            StrategyKind::BullfrogNoBackground => "bullfrog-nobg",
        }
    }
}

/// The two request-rate conditions of every figure, as fractions of the
/// measured maximum (the paper's 450 and 700 TPS on its hardware).
#[derive(Debug, Clone, Copy)]
pub struct Rates {
    /// Headroom condition (paper: 450 TPS ≈ 64% of max).
    pub moderate: f64,
    /// Saturation condition (paper: 700 TPS = max).
    pub max: f64,
}

/// Measures the machine's max TPS on a freshly loaded database and derives
/// the two rate conditions.
pub fn calibrate(scale: &TpccScale, clients: usize) -> Rates {
    let db = fresh_db();
    load(&db, scale).expect("load");
    let access: Arc<dyn ClientAccess> = Arc::new(Passthrough::new(Arc::clone(&db)));
    let driver = Driver::new(scale.clone(), None);
    let max = calibrate_max_tps(&access, &driver, clients, Duration::from_secs(2));
    Rates {
        // The paper's 450-TPS condition leaves real headroom; on this
        // harness the open-loop moderate rate is 40% of the closed-loop
        // max (which overstates sustainable open-loop throughput).
        moderate: (max * 0.40).max(50.0),
        max: (max * 1.05).max(80.0),
    }
}

fn fresh_db() -> Arc<Database> {
    let config = DbConfig {
        lock_timeout: Duration::from_millis(100),
        enforce_fk_on_delete: false,
        ..Default::default()
    };
    // Benches default to an in-memory WAL (the paper's figures measure
    // migration interference, not disk). Set BULLFROG_WAL_DIR to run
    // file-backed and get real group-commit/fsync numbers in the report.
    if let Ok(dir) = std::env::var("BULLFROG_WAL_DIR") {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::path::Path::new(&dir).join(format!("bench-{}-{n}.wal", std::process::id()));
        return Arc::new(Database::with_wal_file(config, path).expect("file-backed bench WAL"));
    }
    Arc::new(Database::with_config(config))
}

/// Background settings scaled to the bench windows: the paper delays the
/// background threads 20 s into a 200 s window (10%).
fn bench_background(cfg: &RunConfig) -> BackgroundConfig {
    BackgroundConfig {
        enabled: true,
        start_delay: cfg.duration.mul_f64(0.1),
        // Same per-row throttle as the multi-step copier (31 µs/row), so
        // completion-time differences come from the algorithms, not the
        // knobs.
        batch: 32,
        pause: Duration::from_millis(1),
        threads: 1,
    }
}

/// Options bundle for [`run_strategy`].
pub struct StrategyOptions {
    /// FK level for the split scenario (Figure 12).
    pub fk: FkLevel,
    /// Bitmap granule rows (Figure 11); 1 = tuple granularity.
    pub granule_rows: u64,
    /// Mix weights override (None = standard mix).
    pub weights: Option<[u32; 5]>,
}

impl Default for StrategyOptions {
    fn default() -> Self {
        StrategyOptions {
            fk: FkLevel::None,
            granule_rows: 1,
            weights: None,
        }
    }
}

/// Loads a fresh database, builds the strategy, runs the open-loop TPC-C
/// mix, and returns the result.
pub fn run_strategy(
    scenario: Scenario,
    kind: StrategyKind,
    scale: &TpccScale,
    cfg: &RunConfig,
    opts: &StrategyOptions,
) -> RunResult {
    let (db, strategy) = build_strategy(scenario, kind, scale, cfg, opts);
    let mut driver = Driver::new(scale.clone(), Some(scenario));
    if let Some(w) = opts.weights {
        driver.weights = w;
    }
    // OLTP-Bench queues requests rather than failing them; a generous
    // retry budget emulates that during eager migration's lock window.
    driver.max_retries = 100;
    let mut result = run_workload(strategy, Arc::new(driver), cfg);
    result.durability = Some(bullfrog_core::DurabilityStats::capture(&db));
    result
}

/// Loads a fresh database and builds one strategy (without running a
/// workload) — the custom-op figures drive it themselves.
pub fn build_strategy(
    scenario: Scenario,
    kind: StrategyKind,
    scale: &TpccScale,
    cfg: &RunConfig,
    opts: &StrategyOptions,
) -> (Arc<Database>, Strategy) {
    let db = fresh_db();
    load(&db, scale).expect("load");

    let plan = || match scenario {
        Scenario::CustomerSplit => {
            bullfrog_tpcc::migrations::customer_split_plan_granular(opts.fk, opts.granule_rows)
        }
        Scenario::OrderTotals => bullfrog_tpcc::migrations::order_totals_plan(),
        Scenario::JoinDenorm => bullfrog_tpcc::migrations::orderline_stock_plan(),
    };

    let strategy = match kind {
        StrategyKind::NoMigration => Strategy {
            name: kind.label().into(),
            access: Arc::new(Passthrough::new(Arc::clone(&db))),
            start_migration: None,
            is_complete: Box::new(|| false),
        },
        StrategyKind::Eager => {
            let eager = Arc::new(EagerMigrator::new(Arc::clone(&db)));
            let done = Arc::new(AtomicBool::new(false));
            let (e2, d2, db2) = (Arc::clone(&eager), Arc::clone(&done), Arc::clone(&db));
            let plan = plan();
            Strategy {
                name: kind.label().into(),
                access: eager,
                start_migration: Some(Box::new(move || {
                    if e2.migrate(plan).is_ok() {
                        let _ = scenario.create_output_indexes(&db2);
                        d2.store(true, Ordering::Release);
                    }
                })),
                is_complete: Box::new(move || done.load(Ordering::Acquire)),
            }
        }
        StrategyKind::MultiStep => {
            let mut migrator = MultiStepMigrator::new(Arc::clone(&db));
            migrator.copy_batch = 32;
            migrator.copy_pause = Duration::from_millis(1);
            let ms = Arc::new(migrator);
            let (m2, db2) = (Arc::clone(&ms), Arc::clone(&db));
            let m3 = Arc::clone(&ms);
            let plan = plan();
            Strategy {
                name: kind.label().into(),
                access: ms,
                start_migration: Some(Box::new(move || {
                    if m2.register(plan).is_ok() {
                        let _ = scenario.create_output_indexes(&db2);
                    }
                })),
                is_complete: Box::new(move || m3.is_caught_up()),
            }
        }
        StrategyKind::Bullfrog
        | StrategyKind::BullfrogOnConflict
        | StrategyKind::BullfrogNoBackground => {
            let config = BullfrogConfig {
                dedup: if kind == StrategyKind::BullfrogOnConflict {
                    DedupMode::OnConflict
                } else {
                    DedupMode::Tracker
                },
                background: if kind == StrategyKind::BullfrogNoBackground {
                    BackgroundConfig {
                        enabled: false,
                        ..Default::default()
                    }
                } else {
                    bench_background(cfg)
                },
                ..Default::default()
            };
            let bf = Arc::new(Bullfrog::with_config(Arc::clone(&db), config));
            let (b2, db2) = (Arc::clone(&bf), Arc::clone(&db));
            let b3 = Arc::clone(&bf);
            let plan = plan();
            Strategy {
                name: kind.label().into(),
                access: bf,
                start_migration: Some(Box::new(move || {
                    if b2.submit_migration(plan).is_ok() {
                        let _ = scenario.create_output_indexes(&db2);
                    }
                })),
                is_complete: Box::new(move || {
                    b3.active().map(|a| a.is_complete()).unwrap_or(false)
                }),
            }
        }
    };
    (db, strategy)
}
