//! Shared scaffolding for the figure-regeneration bench targets.

use std::time::Duration;

use bullfrog_tpcc::{Scenario, TpccScale};

use crate::harness::{print_cdf, print_series, RunConfig};
use crate::scenarios::{calibrate, run_strategy, Rates, StrategyKind, StrategyOptions};

/// Environment-tunable experiment envelope.
///
/// - `BULLFROG_BENCH_SECS` — run window per (strategy, rate) pair
///   (default 12; the paper used 200+ but its shapes appear within the
///   first tens of seconds).
/// - `BULLFROG_BENCH_WAREHOUSES` — scale factor (default 2).
#[derive(Debug, Clone)]
pub struct FigureConfig {
    /// Per-run window.
    pub window: Duration,
    /// Database scale.
    pub scale: TpccScale,
    /// Client worker threads.
    pub clients: usize,
    /// Calibrated request rates.
    pub rates: Rates,
}

impl FigureConfig {
    /// Reads the envelope from the environment and calibrates the rates.
    pub fn from_env() -> Self {
        let secs: u64 = std::env::var("BULLFROG_BENCH_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(12);
        let warehouses: i64 = std::env::var("BULLFROG_BENCH_WAREHOUSES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2);
        let scale = TpccScale {
            warehouses,
            customers_per_district: 1500,
            orders_per_district: 300,
            items: 3000,
            ..TpccScale::bench()
        };
        let clients: usize = std::env::var("BULLFROG_BENCH_CLIENTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                // The paper dedicates 8 cores; on smaller machines extra
                // client threads only add scheduler noise.
                std::thread::available_parallelism()
                    .map(|n| (n.get() * 2).clamp(2, 8))
                    .unwrap_or(4)
            });
        let rates = calibrate(&scale, clients);
        println!(
            "# calibration: moderate={:.0} tps, max={:.0} tps ({} warehouses, {}s windows)",
            rates.moderate, rates.max, warehouses, secs
        );
        println!("# clients: {clients}");
        FigureConfig {
            window: Duration::from_secs(secs),
            scale,
            clients,
            rates,
        }
    }

    /// Run configuration at the given rate.
    pub fn run_config(&self, rate: f64) -> RunConfig {
        RunConfig {
            rate_tps: rate,
            duration: self.window,
            migrate_at: self.window.mul_f64(0.2),
            clients: self.clients,
            seed: 42,
            bucket_ms: 500,
        }
    }
}

/// Runs the standard two-rate panel (the paper's 450 / 700 TPS
/// sub-figures) over the given strategies and prints series + CDFs.
pub fn run_two_rate_panel(
    title: &str,
    scenario: Scenario,
    strategies: &[StrategyKind],
    fig: &FigureConfig,
    opts: &StrategyOptions,
) {
    for (cond, rate) in [("moderate", fig.rates.moderate), ("max", fig.rates.max)] {
        println!("\n== {title} — request rate: {cond} ({rate:.0} TPS) ==");
        for &kind in strategies {
            let result = run_strategy(scenario, kind, &fig.scale, &fig.run_config(rate), opts);
            print_series(&result);
            print_cdf(&result);
        }
    }
}
