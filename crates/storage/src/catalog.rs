//! The catalog: name → table.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use bullfrog_common::{Error, Result, TableId, TableSchema};
use parking_lot::RwLock;

use crate::table::Table;

/// Maps table names to [`Table`]s and assigns [`TableId`]s.
///
/// Schema migrations never mutate a `Table` in place: they create new
/// tables, and when a migration completes the old tables are dropped (or,
/// for BullFrog's big flip, *retired* — the retire flag lives in
/// `bullfrog-core`, the catalog only stores/drops).
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    by_id: RwLock<HashMap<TableId, Arc<Table>>>,
    next_id: AtomicU32,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            by_id: RwLock::new(HashMap::new()),
            next_id: AtomicU32::new(1),
        }
    }

    /// Creates a table from a schema using the default page size.
    pub fn create_table(&self, schema: TableSchema) -> Result<Arc<Table>> {
        self.create_table_with_slots(schema, crate::page::DEFAULT_SLOTS_PER_PAGE)
    }

    /// Creates a table with an explicit page slot count.
    pub fn create_table_with_slots(
        &self,
        schema: TableSchema,
        slots_per_page: u16,
    ) -> Result<Arc<Table>> {
        let mut tables = self.tables.write();
        if tables.contains_key(&schema.name) {
            return Err(Error::TableExists(schema.name));
        }
        let id = TableId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let table = Arc::new(Table::with_slots_per_page(id, schema, slots_per_page)?);
        tables.insert(table.name().to_owned(), Arc::clone(&table));
        self.by_id.write().insert(id, Arc::clone(&table));
        Ok(table)
    }

    /// Looks a table up by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::TableNotFound(name.to_owned()))
    }

    /// Looks a table up by id.
    pub fn get_by_id(&self, id: TableId) -> Result<Arc<Table>> {
        self.by_id
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::TableNotFound(format!("{id}")))
    }

    /// True when the name is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Drops a table by name; the `Arc` keeps it alive for in-flight users.
    pub fn drop_table(&self, name: &str) -> Result<Arc<Table>> {
        let table = self
            .tables
            .write()
            .remove(name)
            .ok_or_else(|| Error::TableNotFound(name.to_owned()))?;
        self.by_id.write().remove(&table.id());
        Ok(table)
    }

    /// Renames a table (the `TableSchema::name` inside is *not* rewritten;
    /// the catalog name is authoritative for lookups).
    pub fn rename_table(&self, from: &str, to: &str) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(to) {
            return Err(Error::TableExists(to.to_owned()));
        }
        let table = tables
            .remove(from)
            .ok_or_else(|| Error::TableNotFound(from.to_owned()))?;
        tables.insert(to.to_owned(), table);
        Ok(())
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("tables", &self.table_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::{ColumnDef, DataType};

    fn schema(name: &str) -> TableSchema {
        TableSchema::new(name, vec![ColumnDef::new("id", DataType::Int)]).with_primary_key(&["id"])
    }

    #[test]
    fn create_get_drop() {
        let c = Catalog::new();
        let t = c.create_table(schema("a")).unwrap();
        assert_eq!(c.get("a").unwrap().id(), t.id());
        assert_eq!(c.get_by_id(t.id()).unwrap().name(), "a");
        assert!(c.contains("a"));
        c.drop_table("a").unwrap();
        assert!(matches!(c.get("a"), Err(Error::TableNotFound(_))));
        assert!(matches!(c.get_by_id(t.id()), Err(Error::TableNotFound(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let c = Catalog::new();
        c.create_table(schema("a")).unwrap();
        assert!(matches!(
            c.create_table(schema("a")),
            Err(Error::TableExists(_))
        ));
    }

    #[test]
    fn ids_are_unique() {
        let c = Catalog::new();
        let a = c.create_table(schema("a")).unwrap();
        let b = c.create_table(schema("b")).unwrap();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn rename_moves_binding() {
        let c = Catalog::new();
        c.create_table(schema("old")).unwrap();
        c.rename_table("old", "new").unwrap();
        assert!(!c.contains("old"));
        assert!(c.contains("new"));
        // Renaming onto an existing name fails.
        c.create_table(schema("other")).unwrap();
        assert!(matches!(
            c.rename_table("new", "other"),
            Err(Error::TableExists(_))
        ));
    }

    #[test]
    fn table_names_sorted() {
        let c = Catalog::new();
        for n in ["zeta", "alpha", "mid"] {
            c.create_table(schema(n)).unwrap();
        }
        assert_eq!(c.table_names(), vec!["alpha", "mid", "zeta"]);
    }
}
