//! In-memory storage engine: slotted-page heaps, B-tree indexes, catalog.
//!
//! Layout mirrors the parts of PostgreSQL that BullFrog's migration
//! machinery depends on:
//!
//! - rows live in **pages** of a fixed slot count and are addressed by a
//!   stable [`RowId`](bullfrog_common::RowId) (page, slot) — the analogue of
//!   a heap TID, which the bitmap migration tracker maps to bit offsets;
//! - deletes **tombstone** slots instead of reusing them, so a `RowId`
//!   observed by a migration tracker can never silently come to address a
//!   different tuple;
//! - **B-tree indexes** (unique and non-unique) support the point and range
//!   lookups that predicate-driven lazy migration relies on.
//!
//! Physical concurrency is page-level read/write latching (`parking_lot`);
//! *logical* concurrency control (two-phase locking) lives in
//! `bullfrog-txn` and is composed by `bullfrog-engine`.

pub mod catalog;
pub mod heap;
pub mod index;
pub mod page;
pub mod table;

pub use catalog::Catalog;
pub use heap::TableHeap;
pub use index::{BTreeIndex, IndexDef};
pub use page::{Page, Slot, VersionMeta, VersionNode, DEFAULT_SLOTS_PER_PAGE};
pub use table::Table;
