//! B-tree indexes.

use std::collections::BTreeMap;
use std::ops::Bound;

use bullfrog_common::{Error, Result, RowId, Value};
use parking_lot::RwLock;

/// Static description of an index: which columns it covers and whether it
/// enforces uniqueness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    /// Index name (unique within the table; used in error messages).
    pub name: String,
    /// Positions of the key columns in the table schema.
    pub key_columns: Vec<usize>,
    /// Whether duplicate keys are rejected.
    pub unique: bool,
}

/// An ordered secondary index mapping key tuples to row ids.
///
/// The map is guarded by a single `RwLock`; B-tree mutations are short and
/// the engine's 2PL row locks keep logical conflicts out of here. Unique
/// violations are detected atomically inside [`BTreeIndex::insert`], which
/// is what makes "insert, and let the unique index be the arbiter" safe for
/// BullFrog's ON-CONFLICT migration mode (paper §3.7).
pub struct BTreeIndex {
    def: IndexDef,
    map: RwLock<BTreeMap<Vec<Value>, Vec<RowId>>>,
}

impl BTreeIndex {
    /// Creates an empty index.
    pub fn new(def: IndexDef) -> Self {
        BTreeIndex {
            def,
            map: RwLock::new(BTreeMap::new()),
        }
    }

    /// The index definition.
    pub fn def(&self) -> &IndexDef {
        &self.def
    }

    /// Inserts `(key, rid)`. For unique indexes, fails when the key is
    /// already present **with a different row id** (re-inserting the same
    /// pair is idempotent, which rollback paths rely on).
    pub fn insert(&self, table: &str, key: Vec<Value>, rid: RowId) -> Result<()> {
        let mut map = self.map.write();
        let entry = map.entry(key).or_default();
        if self.def.unique && !entry.is_empty() && !entry.contains(&rid) {
            return Err(Error::UniqueViolation {
                table: table.to_owned(),
                constraint: self.def.name.clone(),
            });
        }
        if !entry.contains(&rid) {
            entry.push(rid);
        }
        Ok(())
    }

    /// Inserts unless the key already exists; returns `true` when inserted.
    /// This is the `ON CONFLICT DO NOTHING` primitive.
    pub fn insert_or_ignore(&self, key: Vec<Value>, rid: RowId) -> bool {
        let mut map = self.map.write();
        let entry = map.entry(key).or_default();
        if entry.is_empty() {
            entry.push(rid);
            true
        } else {
            false
        }
    }

    /// Removes `(key, rid)`; returns whether it was present.
    pub fn remove(&self, key: &[Value], rid: RowId) -> bool {
        let mut map = self.map.write();
        if let Some(entry) = map.get_mut(key) {
            if let Some(pos) = entry.iter().position(|r| *r == rid) {
                entry.swap_remove(pos);
                if entry.is_empty() {
                    map.remove(key);
                }
                return true;
            }
        }
        false
    }

    /// Row ids for an exact key.
    pub fn get(&self, key: &[Value]) -> Vec<RowId> {
        self.map.read().get(key).cloned().unwrap_or_default()
    }

    /// True when the key exists.
    pub fn contains_key(&self, key: &[Value]) -> bool {
        self.map.read().contains_key(key)
    }

    /// Row ids whose key starts with `prefix` (prefix must be no longer
    /// than the key arity). Used by multi-column indexes queried on a
    /// leading subset, e.g. `(w_id, d_id)` of `(w_id, d_id, o_id)`.
    pub fn get_prefix(&self, prefix: &[Value]) -> Vec<RowId> {
        let map = self.map.read();
        let lower = Bound::Included(prefix.to_vec());
        map.range((lower, Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// Row ids whose key starts with `prefix` and whose **next** key
    /// component falls within the given bounds (each `(value, inclusive)`;
    /// `None` = unbounded). The scan starts at the lower bound and stops
    /// past the upper, so it touches only the qualifying range.
    pub fn range_scan(
        &self,
        prefix: &[Value],
        lo: Option<&(Value, bool)>,
        hi: Option<&(Value, bool)>,
    ) -> Vec<RowId> {
        let p = prefix.len();
        let start: Vec<Value> = match lo {
            Some((v, _)) => {
                let mut k = prefix.to_vec();
                k.push(v.clone());
                k
            }
            None => prefix.to_vec(),
        };
        let map = self.map.read();
        map.range((Bound::Included(start), Bound::Unbounded))
            .take_while(|(k, _)| {
                if !k.starts_with(prefix) {
                    return false;
                }
                match (hi, k.get(p)) {
                    (Some((v, incl)), Some(next)) => {
                        if *incl {
                            next <= v
                        } else {
                            next < v
                        }
                    }
                    _ => true,
                }
            })
            .filter(|(k, _)| match (lo, k.get(p)) {
                (Some((v, incl)), Some(next)) => {
                    if *incl {
                        next >= v
                    } else {
                        next > v
                    }
                }
                (Some(_), None) => false,
                _ => true,
            })
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// Row ids for keys in `[low, high]` on the full key tuple.
    pub fn get_range(&self, low: &[Value], high: &[Value]) -> Vec<RowId> {
        let map = self.map.read();
        map.range((
            Bound::Included(low.to_vec()),
            Bound::Included(high.to_vec()),
        ))
        .flat_map(|(_, rids)| rids.iter().copied())
        .collect()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.read().len()
    }

    /// Removes every entry (used when rebuilding during recovery).
    pub fn clear(&self) {
        self.map.write().clear();
    }
}

impl std::fmt::Debug for BTreeIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BTreeIndex")
            .field("def", &self.def)
            .field("keys", &self.key_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(unique: bool) -> BTreeIndex {
        BTreeIndex::new(IndexDef {
            name: "test_idx".into(),
            key_columns: vec![0],
            unique,
        })
    }

    fn key(v: i64) -> Vec<Value> {
        vec![Value::Int(v)]
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let i = idx(true);
        i.insert("t", key(1), RowId::new(0, 0)).unwrap();
        let err = i.insert("t", key(1), RowId::new(0, 1)).unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
        // Idempotent re-insert of the same pair is fine (rollback path).
        i.insert("t", key(1), RowId::new(0, 0)).unwrap();
        assert_eq!(i.get(&key(1)), vec![RowId::new(0, 0)]);
    }

    #[test]
    fn non_unique_index_accumulates() {
        let i = idx(false);
        i.insert("t", key(1), RowId::new(0, 0)).unwrap();
        i.insert("t", key(1), RowId::new(0, 1)).unwrap();
        assert_eq!(i.get(&key(1)).len(), 2);
    }

    #[test]
    fn insert_or_ignore_semantics() {
        let i = idx(true);
        assert!(i.insert_or_ignore(key(1), RowId::new(0, 0)));
        assert!(!i.insert_or_ignore(key(1), RowId::new(0, 1)));
        assert_eq!(i.get(&key(1)), vec![RowId::new(0, 0)]);
    }

    #[test]
    fn remove_cleans_up_empty_keys() {
        let i = idx(false);
        i.insert("t", key(1), RowId::new(0, 0)).unwrap();
        assert!(i.remove(&key(1), RowId::new(0, 0)));
        assert!(!i.contains_key(&key(1)));
        assert!(!i.remove(&key(1), RowId::new(0, 0)));
        assert_eq!(i.key_count(), 0);
    }

    #[test]
    fn prefix_scan_on_composite_key() {
        let i = BTreeIndex::new(IndexDef {
            name: "composite".into(),
            key_columns: vec![0, 1],
            unique: true,
        });
        for (a, b, rid) in [
            (1, 1, RowId::new(0, 0)),
            (1, 2, RowId::new(0, 1)),
            (2, 1, RowId::new(0, 2)),
        ] {
            i.insert("t", vec![Value::Int(a), Value::Int(b)], rid)
                .unwrap();
        }
        let got = i.get_prefix(&[Value::Int(1)]);
        assert_eq!(got, vec![RowId::new(0, 0), RowId::new(0, 1)]);
        assert!(i.get_prefix(&[Value::Int(3)]).is_empty());
    }

    #[test]
    fn range_scan_prefix_with_bounds() {
        let i = BTreeIndex::new(IndexDef {
            name: "composite".into(),
            key_columns: vec![0, 1, 2],
            unique: true,
        });
        for d in 1..=2i64 {
            for o in 1..=10i64 {
                i.insert(
                    "t",
                    vec![Value::Int(1), Value::Int(d), Value::Int(o)],
                    RowId::new(d as u32, o as u16),
                )
                .unwrap();
            }
        }
        let prefix = [Value::Int(1), Value::Int(1)];
        // o >= 4 AND o < 7 → 4, 5, 6.
        let got = i.range_scan(
            &prefix,
            Some(&(Value::Int(4), true)),
            Some(&(Value::Int(7), false)),
        );
        assert_eq!(
            got,
            vec![RowId::new(1, 4), RowId::new(1, 5), RowId::new(1, 6)]
        );
        // Exclusive lower bound.
        let got = i.range_scan(&prefix, Some(&(Value::Int(8), false)), None);
        assert_eq!(got, vec![RowId::new(1, 9), RowId::new(1, 10)]);
        // Unbounded below, inclusive above.
        let got = i.range_scan(&prefix, None, Some(&(Value::Int(2), true)));
        assert_eq!(got, vec![RowId::new(1, 1), RowId::new(1, 2)]);
        // Stays within the prefix: district 2 rows never leak in.
        let got = i.range_scan(&prefix, Some(&(Value::Int(9), true)), None);
        assert_eq!(got, vec![RowId::new(1, 9), RowId::new(1, 10)]);
    }

    #[test]
    fn range_scan_inclusive() {
        let i = idx(false);
        for v in 1..=5 {
            i.insert("t", key(v), RowId::new(0, v as u16)).unwrap();
        }
        let got = i.get_range(&key(2), &key(4));
        assert_eq!(
            got,
            vec![RowId::new(0, 2), RowId::new(0, 3), RowId::new(0, 4)]
        );
    }
}
