//! Slotted pages.

use bullfrog_common::{Row, SlotNo};

/// Default number of row slots per page.
///
/// In-memory rows are not byte-packed, so the slot count — not a byte size —
/// defines the page. 128 slots keeps page-granularity migration (paper
/// §4.4.3) meaningful while bounding latch hold times.
pub const DEFAULT_SLOTS_PER_PAGE: u16 = 128;

/// A slot within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Slot {
    /// Holds a live row.
    Live(Row),
    /// Held a row that was deleted. Tombstones are never reused: `RowId`s
    /// must stay stable for the lifetime of the table so that migration
    /// trackers keyed by row id can never alias two different tuples.
    Tombstone,
}

impl Slot {
    /// The row, if live.
    pub fn row(&self) -> Option<&Row> {
        match self {
            Slot::Live(r) => Some(r),
            Slot::Tombstone => None,
        }
    }
}

/// A fixed-capacity slotted page.
///
/// Pages only ever grow (slots are appended until `capacity`), and slots
/// transition `Live -> Tombstone` (delete) or are overwritten in place
/// (update / un-delete during transaction rollback).
#[derive(Debug)]
pub struct Page {
    slots: Vec<Slot>,
    capacity: u16,
    live: u16,
}

impl Page {
    /// Creates an empty page with room for `capacity` slots.
    pub fn new(capacity: u16) -> Self {
        Page {
            slots: Vec::new(),
            capacity,
            live: 0,
        }
    }

    /// True when no more slots can be appended.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity as usize
    }

    /// Number of slots in use (live + tombstoned).
    pub fn used(&self) -> u16 {
        self.slots.len() as u16
    }

    /// Number of live rows.
    pub fn live(&self) -> u16 {
        self.live
    }

    /// Appends a row, returning its slot number, or `None` when full.
    pub fn append(&mut self, row: Row) -> Option<SlotNo> {
        if self.is_full() {
            return None;
        }
        let slot = self.slots.len() as SlotNo;
        self.slots.push(Slot::Live(row));
        self.live += 1;
        Some(slot)
    }

    /// The live row at `slot`, if any.
    pub fn get(&self, slot: SlotNo) -> Option<&Row> {
        self.slots.get(slot as usize).and_then(Slot::row)
    }

    /// Replaces the live row at `slot`; returns the previous row or `None`
    /// when the slot is vacant/tombstoned.
    pub fn update(&mut self, slot: SlotNo, row: Row) -> Option<Row> {
        match self.slots.get_mut(slot as usize) {
            Some(s @ Slot::Live(_)) => {
                let prev = std::mem::replace(s, Slot::Live(row));
                match prev {
                    Slot::Live(r) => Some(r),
                    Slot::Tombstone => unreachable!("matched Live"),
                }
            }
            _ => None,
        }
    }

    /// Tombstones the row at `slot`; returns it, or `None` when not live.
    pub fn delete(&mut self, slot: SlotNo) -> Option<Row> {
        match self.slots.get_mut(slot as usize) {
            Some(s @ Slot::Live(_)) => {
                let prev = std::mem::replace(s, Slot::Tombstone);
                self.live -= 1;
                match prev {
                    Slot::Live(r) => Some(r),
                    Slot::Tombstone => unreachable!("matched Live"),
                }
            }
            _ => None,
        }
    }

    /// Restores a tombstoned slot to `row` (transaction rollback of a
    /// delete). Returns false when the slot is not a tombstone.
    pub fn undelete(&mut self, slot: SlotNo, row: Row) -> bool {
        match self.slots.get_mut(slot as usize) {
            Some(s @ Slot::Tombstone) => {
                *s = Slot::Live(row);
                self.live += 1;
                true
            }
            _ => false,
        }
    }

    /// Places a row at an exact slot (WAL replay): extends the page with
    /// tombstones as needed; fails when the slot is already live or beyond
    /// capacity.
    pub fn place(&mut self, slot: SlotNo, row: Row) -> bool {
        if slot >= self.capacity {
            return false;
        }
        while self.slots.len() <= slot as usize {
            self.slots.push(Slot::Tombstone);
        }
        match &mut self.slots[slot as usize] {
            s @ Slot::Tombstone => {
                *s = Slot::Live(row);
                self.live += 1;
                true
            }
            Slot::Live(_) => false,
        }
    }

    /// Iterates `(slot, row)` over live rows.
    pub fn iter_live(&self) -> impl Iterator<Item = (SlotNo, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.row().map(|r| (i as SlotNo, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    #[test]
    fn append_until_full() {
        let mut p = Page::new(2);
        assert_eq!(p.append(row![1]), Some(0));
        assert_eq!(p.append(row![2]), Some(1));
        assert!(p.is_full());
        assert_eq!(p.append(row![3]), None);
        assert_eq!(p.live(), 2);
    }

    #[test]
    fn delete_tombstones_without_reuse() {
        let mut p = Page::new(4);
        p.append(row![1]);
        p.append(row![2]);
        assert_eq!(p.delete(0), Some(row![1]));
        assert_eq!(p.get(0), None);
        assert_eq!(p.live(), 1);
        // The freed slot is NOT reused; appends continue at the end.
        assert_eq!(p.append(row![3]), Some(2));
        // Double delete is a no-op.
        assert_eq!(p.delete(0), None);
    }

    #[test]
    fn update_only_live_slots() {
        let mut p = Page::new(4);
        p.append(row![1]);
        assert_eq!(p.update(0, row![9]), Some(row![1]));
        assert_eq!(p.get(0), Some(&row![9]));
        assert_eq!(p.update(1, row![5]), None, "vacant slot");
        p.delete(0);
        assert_eq!(p.update(0, row![5]), None, "tombstoned slot");
    }

    #[test]
    fn undelete_restores_rollback() {
        let mut p = Page::new(4);
        p.append(row![1]);
        p.delete(0);
        assert!(p.undelete(0, row![1]));
        assert_eq!(p.get(0), Some(&row![1]));
        assert_eq!(p.live(), 1);
        // Can't undelete a live slot.
        assert!(!p.undelete(0, row![2]));
    }

    #[test]
    fn iter_live_skips_tombstones() {
        let mut p = Page::new(4);
        p.append(row![1]);
        p.append(row![2]);
        p.append(row![3]);
        p.delete(1);
        let live: Vec<_> = p.iter_live().map(|(s, _)| s).collect();
        assert_eq!(live, vec![0, 2]);
    }
}
