//! Slotted pages.

use bullfrog_common::{Row, SlotNo};

/// Default number of row slots per page.
///
/// In-memory rows are not byte-packed, so the slot count — not a byte size —
/// defines the page. 128 slots keeps page-granularity migration (paper
/// §4.4.3) meaningful while bounding latch hold times.
pub const DEFAULT_SLOTS_PER_PAGE: u16 = 128;

/// A slot within a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Slot {
    /// Holds a live row.
    Live(Row),
    /// Held a row that was deleted. Tombstones are never reused: `RowId`s
    /// must stay stable for the lifetime of the table so that migration
    /// trackers keyed by row id can never alias two different tuples.
    Tombstone,
}

impl Slot {
    /// The row, if live.
    pub fn row(&self) -> Option<&Row> {
        match self {
            Slot::Live(r) => Some(r),
            Slot::Tombstone => None,
        }
    }
}

/// One committed version of a row (Snapshot engine mode).
///
/// `row == None` records a committed deletion: readers whose snapshot
/// lands on this node see no row, while older snapshots keep reading the
/// next (older) node in the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionNode {
    /// Commit timestamp this version became visible at. Timestamp 0 is
    /// the pre-history base version (rows that existed before the first
    /// snapshot transaction touched them).
    pub begin_ts: u64,
    /// The row image, or `None` for a committed delete.
    pub row: Option<Row>,
}

/// Per-slot MVCC metadata, allocated lazily the first time a snapshot
/// transaction writes the slot. Slots without metadata are implicitly a
/// single committed version at timestamp 0 — TwoPL mode never allocates
/// metadata, so the 2PL heap pays nothing for MVCC support.
///
/// Invariant: when `writer` is `None`, the newest chain node equals the
/// slot's current state (commit pushes the slot image onto the chain), so
/// version GC can drop a fully-pruned chain and fall back to the slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionMeta {
    /// Transaction id with a pending in-place write on the slot. While
    /// set, the slot content is uncommitted; only that transaction reads
    /// the slot directly, everyone else traverses `chain`.
    pub writer: Option<u64>,
    /// Committed versions, newest first.
    pub chain: Vec<VersionNode>,
}

impl VersionMeta {
    /// Newest committed version timestamp (first-updater-wins check).
    fn newest_begin_ts(&self) -> u64 {
        self.chain.first().map_or(0, |n| n.begin_ts)
    }
}

/// A fixed-capacity slotted page.
///
/// Pages only ever grow (slots are appended until `capacity`), and slots
/// transition `Live -> Tombstone` (delete) or are overwritten in place
/// (update / un-delete during transaction rollback).
#[derive(Debug)]
pub struct Page {
    slots: Vec<Slot>,
    capacity: u16,
    live: u16,
    /// Parallel to `slots`; `None` for slots with no version history.
    /// Boxed so the common (TwoPL / never-versioned) case costs one
    /// pointer per slot. Guarded by the same page latch as `slots`, which
    /// is what makes slot-vs-chain reads torn-free.
    versions: Vec<Option<Box<VersionMeta>>>,
}

impl Page {
    /// Creates an empty page with room for `capacity` slots.
    pub fn new(capacity: u16) -> Self {
        Page {
            slots: Vec::new(),
            capacity,
            live: 0,
            versions: Vec::new(),
        }
    }

    /// True when no more slots can be appended.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity as usize
    }

    /// Number of slots in use (live + tombstoned).
    pub fn used(&self) -> u16 {
        self.slots.len() as u16
    }

    /// Number of live rows.
    pub fn live(&self) -> u16 {
        self.live
    }

    /// Appends a row, returning its slot number, or `None` when full.
    pub fn append(&mut self, row: Row) -> Option<SlotNo> {
        if self.is_full() {
            return None;
        }
        let slot = self.slots.len() as SlotNo;
        self.slots.push(Slot::Live(row));
        self.live += 1;
        Some(slot)
    }

    /// The live row at `slot`, if any.
    pub fn get(&self, slot: SlotNo) -> Option<&Row> {
        self.slots.get(slot as usize).and_then(Slot::row)
    }

    /// Replaces the live row at `slot`; returns the previous row or `None`
    /// when the slot is vacant/tombstoned.
    pub fn update(&mut self, slot: SlotNo, row: Row) -> Option<Row> {
        match self.slots.get_mut(slot as usize) {
            Some(s @ Slot::Live(_)) => {
                let prev = std::mem::replace(s, Slot::Live(row));
                match prev {
                    Slot::Live(r) => Some(r),
                    Slot::Tombstone => unreachable!("matched Live"),
                }
            }
            _ => None,
        }
    }

    /// Tombstones the row at `slot`; returns it, or `None` when not live.
    pub fn delete(&mut self, slot: SlotNo) -> Option<Row> {
        match self.slots.get_mut(slot as usize) {
            Some(s @ Slot::Live(_)) => {
                let prev = std::mem::replace(s, Slot::Tombstone);
                self.live -= 1;
                match prev {
                    Slot::Live(r) => Some(r),
                    Slot::Tombstone => unreachable!("matched Live"),
                }
            }
            _ => None,
        }
    }

    /// Restores a tombstoned slot to `row` (transaction rollback of a
    /// delete). Returns false when the slot is not a tombstone.
    pub fn undelete(&mut self, slot: SlotNo, row: Row) -> bool {
        match self.slots.get_mut(slot as usize) {
            Some(s @ Slot::Tombstone) => {
                *s = Slot::Live(row);
                self.live += 1;
                true
            }
            _ => false,
        }
    }

    /// Places a row at an exact slot (WAL replay): extends the page with
    /// tombstones as needed; fails when the slot is already live or beyond
    /// capacity.
    pub fn place(&mut self, slot: SlotNo, row: Row) -> bool {
        if slot >= self.capacity {
            return false;
        }
        while self.slots.len() <= slot as usize {
            self.slots.push(Slot::Tombstone);
        }
        match &mut self.slots[slot as usize] {
            s @ Slot::Tombstone => {
                *s = Slot::Live(row);
                self.live += 1;
                true
            }
            Slot::Live(_) => false,
        }
    }

    /// Iterates `(slot, row)` over live rows.
    pub fn iter_live(&self) -> impl Iterator<Item = (SlotNo, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.row().map(|r| (i as SlotNo, r)))
    }

    // ---- MVCC version chains (Snapshot engine mode) ----

    fn meta(&self, slot: SlotNo) -> Option<&VersionMeta> {
        self.versions.get(slot as usize).and_then(|m| m.as_deref())
    }

    fn meta_mut(&mut self, slot: SlotNo) -> &mut Option<Box<VersionMeta>> {
        if self.versions.len() < self.slots.len() {
            self.versions.resize_with(self.slots.len(), || None);
        }
        &mut self.versions[slot as usize]
    }

    /// Appends a row with a pending-writer marker in the same critical
    /// section, so concurrent snapshot readers never see the uncommitted
    /// insert (empty chain + foreign writer ⇒ invisible).
    pub fn append_versioned(&mut self, row: Row, txn: u64) -> Option<SlotNo> {
        let slot = self.append(row)?;
        *self.meta_mut(slot) = Some(Box::new(VersionMeta {
            writer: Some(txn),
            chain: Vec::new(),
        }));
        Some(slot)
    }

    /// Marks `txn` as the pending writer of `slot` before an in-place
    /// update/delete. On first versioning of a slot the current committed
    /// state is seeded as the timestamp-0 base version. Idempotent for
    /// the same transaction. Returns whether a writer marker was newly
    /// placed (false on an idempotent re-mark), so the heap can keep its
    /// pending-writer gauge exact.
    pub fn prepare_write(&mut self, slot: SlotNo, txn: u64) -> bool {
        if slot as usize >= self.slots.len() {
            return false;
        }
        let seed = self.slots[slot as usize].row().cloned();
        let meta = self.meta_mut(slot);
        match meta {
            Some(m) => {
                let newly = m.writer.is_none();
                m.writer = Some(txn);
                newly
            }
            None => {
                *meta = Some(Box::new(VersionMeta {
                    writer: Some(txn),
                    chain: vec![VersionNode {
                        begin_ts: 0,
                        row: seed,
                    }],
                }));
                true
            }
        }
    }

    /// Commits `txn`'s pending write on `slot`: pushes the slot's current
    /// state onto the chain at `ts` and clears the writer marker. No-op
    /// when `txn` is not the pending writer. Returns whether the marker
    /// was actually cleared.
    pub fn install_version(&mut self, slot: SlotNo, txn: u64, ts: u64) -> bool {
        let row = self.slots.get(slot as usize).and_then(Slot::row).cloned();
        if let Some(m) = self.meta_mut(slot).as_deref_mut() {
            if m.writer == Some(txn) {
                m.chain.insert(0, VersionNode { begin_ts: ts, row });
                m.writer = None;
                return true;
            }
        }
        false
    }

    /// Aborts `txn`'s pending write on `slot` (the undo log has already
    /// restored the slot itself). Drops chain-less metadata so an aborted
    /// insert leaves no residue. Returns whether the marker was cleared.
    pub fn clear_pending(&mut self, slot: SlotNo, txn: u64) -> bool {
        let meta = self.meta_mut(slot);
        if let Some(m) = meta.as_deref_mut() {
            if m.writer == Some(txn) {
                m.writer = None;
                if m.chain.is_empty() {
                    *meta = None;
                }
                return true;
            }
        }
        false
    }

    /// The row visible to a reader at snapshot `snap`. `txn` is the
    /// reader's id, used for read-your-own-writes: the pending writer of
    /// a slot reads the slot state directly.
    pub fn visible(&self, slot: SlotNo, txn: Option<u64>, snap: u64) -> Option<&Row> {
        let slot_row = self.slots.get(slot as usize).and_then(Slot::row);
        match self.meta(slot) {
            // Never versioned: the slot is the ts-0 base version.
            None => slot_row,
            Some(m) => {
                if m.writer.is_some() && m.writer == txn {
                    return slot_row;
                }
                m.chain
                    .iter()
                    .find(|n| n.begin_ts <= snap)
                    .and_then(|n| n.row.as_ref())
            }
        }
    }

    /// Newest committed version timestamp of `slot` (0 for unversioned
    /// slots). Drives the first-updater-wins conflict check.
    pub fn newest_version_ts(&self, slot: SlotNo) -> u64 {
        self.meta(slot).map_or(0, VersionMeta::newest_begin_ts)
    }

    /// Number of chain nodes retained on this page.
    pub fn version_count(&self) -> usize {
        self.versions
            .iter()
            .filter_map(|m| m.as_deref())
            .map(|m| m.chain.len())
            .sum()
    }

    /// Prunes versions no active snapshot can reach: for each chain, keeps
    /// everything newer than `horizon` plus the first node at or below it;
    /// drops metadata entirely once only that node remains (the slot holds
    /// the same image, per the commit invariant). Returns freed nodes.
    pub fn gc_versions(&mut self, horizon: u64) -> usize {
        let mut freed = 0;
        for meta in &mut self.versions {
            let Some(m) = meta.as_deref_mut() else {
                continue;
            };
            if let Some(keep) = m.chain.iter().position(|n| n.begin_ts <= horizon) {
                freed += m.chain.len() - (keep + 1);
                m.chain.truncate(keep + 1);
            }
            if m.writer.is_none() && m.chain.len() <= 1 && m.newest_begin_ts() <= horizon {
                freed += m.chain.len();
                *meta = None;
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    #[test]
    fn append_until_full() {
        let mut p = Page::new(2);
        assert_eq!(p.append(row![1]), Some(0));
        assert_eq!(p.append(row![2]), Some(1));
        assert!(p.is_full());
        assert_eq!(p.append(row![3]), None);
        assert_eq!(p.live(), 2);
    }

    #[test]
    fn delete_tombstones_without_reuse() {
        let mut p = Page::new(4);
        p.append(row![1]);
        p.append(row![2]);
        assert_eq!(p.delete(0), Some(row![1]));
        assert_eq!(p.get(0), None);
        assert_eq!(p.live(), 1);
        // The freed slot is NOT reused; appends continue at the end.
        assert_eq!(p.append(row![3]), Some(2));
        // Double delete is a no-op.
        assert_eq!(p.delete(0), None);
    }

    #[test]
    fn update_only_live_slots() {
        let mut p = Page::new(4);
        p.append(row![1]);
        assert_eq!(p.update(0, row![9]), Some(row![1]));
        assert_eq!(p.get(0), Some(&row![9]));
        assert_eq!(p.update(1, row![5]), None, "vacant slot");
        p.delete(0);
        assert_eq!(p.update(0, row![5]), None, "tombstoned slot");
    }

    #[test]
    fn undelete_restores_rollback() {
        let mut p = Page::new(4);
        p.append(row![1]);
        p.delete(0);
        assert!(p.undelete(0, row![1]));
        assert_eq!(p.get(0), Some(&row![1]));
        assert_eq!(p.live(), 1);
        // Can't undelete a live slot.
        assert!(!p.undelete(0, row![2]));
    }

    #[test]
    fn version_chain_visibility() {
        let mut p = Page::new(4);
        p.append(row![1]); // unversioned base row
        assert_eq!(p.visible(0, None, 0), Some(&row![1]));

        // Writer 7 updates in place at snapshot 5, commits at ts 10.
        p.prepare_write(0, 7);
        p.update(0, row![2]);
        assert_eq!(p.visible(0, Some(7), 5), Some(&row![2]), "own write");
        assert_eq!(p.visible(0, Some(8), 5), Some(&row![1]), "other reader");
        assert_eq!(p.visible(0, None, 5), Some(&row![1]));
        p.install_version(0, 7, 10);
        assert_eq!(p.visible(0, None, 9), Some(&row![1]), "old snapshot");
        assert_eq!(p.visible(0, None, 10), Some(&row![2]), "new snapshot");
        assert_eq!(p.newest_version_ts(0), 10);
        assert_eq!(p.version_count(), 2);
    }

    #[test]
    fn versioned_insert_hidden_until_install() {
        let mut p = Page::new(4);
        let s = p.append_versioned(row![9], 3).unwrap();
        assert_eq!(p.visible(s, None, 100), None, "uncommitted insert hidden");
        assert_eq!(p.visible(s, Some(3), 0), Some(&row![9]), "own insert");
        p.install_version(s, 3, 20);
        assert_eq!(p.visible(s, None, 19), None);
        assert_eq!(p.visible(s, None, 20), Some(&row![9]));
    }

    #[test]
    fn versioned_delete_keeps_old_snapshot_readable() {
        let mut p = Page::new(4);
        p.append(row![1]);
        p.prepare_write(0, 5);
        p.delete(0);
        assert_eq!(p.visible(0, None, 50), Some(&row![1]), "pending delete");
        p.install_version(0, 5, 30);
        assert_eq!(p.visible(0, None, 29), Some(&row![1]));
        assert_eq!(p.visible(0, None, 30), None, "committed delete");
    }

    #[test]
    fn clear_pending_drops_abandoned_meta() {
        let mut p = Page::new(4);
        let s = p.append_versioned(row![1], 2).unwrap();
        p.delete(s); // undo of the aborted insert
        p.clear_pending(s, 2);
        assert_eq!(p.version_count(), 0);
        assert_eq!(p.visible(s, None, 100), None);
    }

    #[test]
    fn gc_prunes_unreachable_versions() {
        let mut p = Page::new(4);
        p.append(row![0]);
        for (txn, ts) in [(1u64, 10u64), (2, 20), (3, 30)] {
            p.prepare_write(0, txn);
            p.update(0, row![ts as i64]);
            p.install_version(0, txn, ts);
        }
        assert_eq!(p.version_count(), 4); // base + three commits
                                          // Horizon 20: versions 30 and 20 stay (20 is the first reachable
                                          // at-or-below node); 10 and the base go.
        assert_eq!(p.gc_versions(20), 2);
        assert_eq!(p.visible(0, None, 25), Some(&row![20]));
        assert_eq!(p.visible(0, None, 35), Some(&row![30]));
        // Horizon 40: chain collapses to the slot, meta freed.
        assert_eq!(p.gc_versions(40), 2);
        assert_eq!(p.version_count(), 0);
        assert_eq!(p.visible(0, None, 40), Some(&row![30]));
    }

    #[test]
    fn iter_live_skips_tombstones() {
        let mut p = Page::new(4);
        p.append(row![1]);
        p.append(row![2]);
        p.append(row![3]);
        p.delete(1);
        let live: Vec<_> = p.iter_live().map(|(s, _)| s).collect();
        assert_eq!(live, vec![0, 2]);
    }
}
