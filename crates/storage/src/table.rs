//! Tables: a schema, a heap, and its indexes, kept mutually consistent.

use std::sync::Arc;

use bullfrog_common::{Error, Result, Row, RowId, TableId};
use parking_lot::RwLock;

use crate::heap::TableHeap;
use crate::index::{BTreeIndex, IndexDef};
use crate::page::DEFAULT_SLOTS_PER_PAGE;
use bullfrog_common::TableSchema;

/// A table: schema + heap + indexes.
///
/// `Table` keeps the heap and all indexes consistent on every mutation and
/// enforces **uniqueness** (the schema's PK and UNIQUE constraints each get
/// a unique index; additional secondary indexes may be added). Foreign keys
/// and transactional atomicity are enforced a level up, in
/// `bullfrog-engine`, which uses the `undo_*` methods to roll back.
pub struct Table {
    id: TableId,
    schema: TableSchema,
    heap: TableHeap,
    indexes: RwLock<Vec<Arc<BTreeIndex>>>,
    /// Precomputed PK column positions (empty when the table has no PK).
    pk_indices: Vec<usize>,
}

impl Table {
    /// Creates a table, building unique indexes for the primary key and
    /// each UNIQUE constraint.
    pub fn new(id: TableId, schema: TableSchema) -> Result<Self> {
        Self::with_slots_per_page(id, schema, DEFAULT_SLOTS_PER_PAGE)
    }

    /// As [`Table::new`] with an explicit page slot count (benchmarks use
    /// small pages to exercise page-granularity migration).
    pub fn with_slots_per_page(
        id: TableId,
        schema: TableSchema,
        slots_per_page: u16,
    ) -> Result<Self> {
        let mut indexes = Vec::new();
        let pk_indices = schema.pk_indices()?;
        if !pk_indices.is_empty() {
            indexes.push(Arc::new(BTreeIndex::new(IndexDef {
                name: format!("{}_pkey", schema.name),
                key_columns: pk_indices.clone(),
                unique: true,
            })));
        }
        for u in &schema.uniques {
            indexes.push(Arc::new(BTreeIndex::new(IndexDef {
                name: u.name.clone(),
                key_columns: schema.col_indices(&u.columns)?,
                unique: true,
            })));
        }
        Ok(Table {
            id,
            schema,
            heap: TableHeap::new(slots_per_page),
            indexes: RwLock::new(indexes),
            pk_indices,
        })
    }

    /// Table id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// The underlying heap.
    pub fn heap(&self) -> &TableHeap {
        &self.heap
    }

    /// Primary-key column positions.
    pub fn pk_indices(&self) -> &[usize] {
        &self.pk_indices
    }

    /// Adds a secondary index over the named columns and backfills it from
    /// the heap. Fails on duplicate keys when `unique`.
    pub fn create_index(&self, name: &str, columns: &[&str], unique: bool) -> Result<()> {
        let key_columns = self
            .schema
            .col_indices(&columns.iter().map(|s| s.to_string()).collect::<Vec<_>>())?;
        let idx = Arc::new(BTreeIndex::new(IndexDef {
            name: name.to_owned(),
            key_columns: key_columns.clone(),
            unique,
        }));
        // Backfill before publishing so readers never see a partial index.
        let mut failure = None;
        self.heap.scan(
            |rid, row| match idx.insert(self.name(), row.key(&key_columns), rid) {
                Ok(()) => true,
                Err(e) => {
                    failure = Some(e);
                    false
                }
            },
        );
        if let Some(e) = failure {
            return Err(e);
        }
        self.indexes.write().push(idx);
        Ok(())
    }

    /// All indexes (cloned Arcs).
    pub fn indexes(&self) -> Vec<Arc<BTreeIndex>> {
        self.indexes.read().clone()
    }

    /// Finds an index by name.
    pub fn index(&self, name: &str) -> Option<Arc<BTreeIndex>> {
        self.indexes
            .read()
            .iter()
            .find(|i| i.def().name == name)
            .cloned()
    }

    /// Picks an index whose key columns start with `cols` (best effort:
    /// longest usable prefix wins; exact-arity unique indexes preferred).
    pub fn index_for_columns(&self, cols: &[usize]) -> Option<Arc<BTreeIndex>> {
        let indexes = self.indexes.read();
        let mut best: Option<(usize, Arc<BTreeIndex>)> = None;
        for idx in indexes.iter() {
            let key = &idx.def().key_columns;
            // Count the longest prefix of the index key covered by `cols`.
            let covered = key.iter().take_while(|k| cols.contains(k)).count();
            if covered == 0 {
                continue;
            }
            let better = match &best {
                None => true,
                Some((c, _)) => covered > *c,
            };
            if better {
                best = Some((covered, Arc::clone(idx)));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Inserts a row: validates the schema, appends to the heap, and
    /// maintains every index. On a uniqueness conflict the heap row and any
    /// already-made index entries are rolled back and the error returned.
    pub fn insert(&self, row: Row) -> Result<RowId> {
        self.schema.validate_row(&row)?;
        let rid = self.heap.insert(row.clone());
        let indexes = self.indexes();
        for (n, idx) in indexes.iter().enumerate() {
            let key = row.key(&idx.def().key_columns);
            if let Err(e) = idx.insert(self.name(), key, rid) {
                // Roll back: earlier index entries + the heap row.
                for done in &indexes[..n] {
                    done.remove(&row.key(&done.def().key_columns), rid);
                }
                self.heap.delete(rid);
                return Err(e);
            }
        }
        Ok(rid)
    }

    /// As [`Table::insert`], but marks `txn` as the row's pending writer
    /// so snapshot readers do not see it before its commit timestamp is
    /// installed (Snapshot engine mode). Index entries are still made
    /// eagerly — index probes re-check visibility against the heap.
    pub fn insert_versioned(&self, row: Row, txn: u64) -> Result<RowId> {
        self.schema.validate_row(&row)?;
        let rid = self.heap.insert_versioned(row.clone(), txn);
        let indexes = self.indexes();
        for (n, idx) in indexes.iter().enumerate() {
            let key = row.key(&idx.def().key_columns);
            if let Err(e) = idx.insert(self.name(), key, rid) {
                for done in &indexes[..n] {
                    done.remove(&row.key(&done.def().key_columns), rid);
                }
                self.heap.delete(rid);
                self.heap.clear_pending(rid, txn);
                return Err(e);
            }
        }
        Ok(rid)
    }

    /// Updates the row at `rid`, returning the previous row. Index entries
    /// whose keys changed are moved; uniqueness conflicts roll everything
    /// back.
    pub fn update(&self, rid: RowId, new_row: Row) -> Result<Row> {
        self.schema.validate_row(&new_row)?;
        let old_row = self.heap.get(rid).ok_or(Error::RowNotFound)?;
        let indexes = self.indexes();
        // Move index entries key-by-key, tracking what we did for rollback.
        let mut moved: Vec<(
            usize,
            Vec<bullfrog_common::Value>,
            Vec<bullfrog_common::Value>,
        )> = Vec::new();
        for (n, idx) in indexes.iter().enumerate() {
            let old_key = old_row.key(&idx.def().key_columns);
            let new_key = new_row.key(&idx.def().key_columns);
            if old_key == new_key {
                continue;
            }
            idx.remove(&old_key, rid);
            if let Err(e) = idx.insert(self.name(), new_key.clone(), rid) {
                // Restore this index and all previously-moved ones.
                idx.insert(self.name(), old_key, rid)
                    .expect("restoring removed key cannot conflict");
                for (m, ok, nk) in moved.into_iter().rev() {
                    indexes[m].remove(&nk, rid);
                    indexes[m]
                        .insert(self.name(), ok, rid)
                        .expect("restoring removed key cannot conflict");
                }
                return Err(e);
            }
            moved.push((n, old_key, new_key));
        }
        self.heap
            .update(rid, new_row)
            .ok_or(Error::RowNotFound)
            .inspect_err(|_| {
                // Heap row vanished between get and update (concurrent
                // delete) — restore index moves.
                for (m, ok, nk) in moved.iter().rev() {
                    indexes[*m].remove(nk, rid);
                    let _ = indexes[*m].insert(self.name(), ok.clone(), rid);
                }
            })
    }

    /// Deletes the row at `rid` (tombstone + index cleanup), returning it.
    pub fn delete(&self, rid: RowId) -> Result<Row> {
        let row = self.heap.delete(rid).ok_or(Error::RowNotFound)?;
        for idx in self.indexes() {
            idx.remove(&row.key(&idx.def().key_columns), rid);
        }
        Ok(row)
    }

    /// Rollback helper: restores a deleted row (tombstone → live) and its
    /// index entries.
    pub fn undo_delete(&self, rid: RowId, row: Row) -> Result<()> {
        if !self.heap.undelete(rid, row.clone()) {
            return Err(Error::Internal(format!(
                "undo_delete: slot {rid} is not a tombstone"
            )));
        }
        for idx in self.indexes() {
            idx.insert(self.name(), row.key(&idx.def().key_columns), rid)?;
        }
        Ok(())
    }

    /// Rollback helper: removes an inserted row entirely.
    pub fn undo_insert(&self, rid: RowId) -> Result<()> {
        self.delete(rid).map(|_| ())
    }

    /// Rollback helper: restores the pre-update image.
    pub fn undo_update(&self, rid: RowId, old_row: Row) -> Result<()> {
        self.update(rid, old_row).map(|_| ())
    }

    /// Places a row at an exact id (WAL replay), maintaining indexes.
    pub fn place(&self, rid: RowId, row: Row) -> Result<()> {
        self.schema.validate_row(&row)?;
        if !self.heap.place(rid, row.clone()) {
            return Err(Error::Internal(format!(
                "place: slot {rid} occupied or out of range"
            )));
        }
        let indexes = self.indexes();
        for (n, idx) in indexes.iter().enumerate() {
            if let Err(e) = idx.insert(self.name(), row.key(&idx.def().key_columns), rid) {
                for done in &indexes[..n] {
                    done.remove(&row.key(&done.def().key_columns), rid);
                }
                self.heap.delete(rid);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Point lookup through the primary key index.
    pub fn get_by_pk(&self, key: &[bullfrog_common::Value]) -> Option<(RowId, Row)> {
        let indexes = self.indexes.read();
        let pk = indexes.first()?;
        if !pk.def().unique || pk.def().key_columns != self.pk_indices {
            return None;
        }
        let rid = *pk.get(key).first()?;
        drop(indexes);
        self.heap.get(rid).map(|row| (rid, row))
    }

    /// Number of live rows.
    pub fn live_count(&self) -> usize {
        self.heap.live_count()
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("name", &self.schema.name)
            .field("rows", &self.live_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::{row, ColumnDef, DataType, Value};

    fn customers() -> Table {
        let schema = TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("c_id", DataType::Int),
                ColumnDef::new("c_name", DataType::Text),
                ColumnDef::new("c_balance", DataType::Decimal),
            ],
        )
        .with_primary_key(&["c_id"])
        .with_unique("customer_name_key", &["c_name"]);
        Table::new(TableId(1), schema).unwrap()
    }

    #[test]
    fn pk_and_unique_indexes_created() {
        let t = customers();
        let idx = t.indexes();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx[0].def().name, "customer_pkey");
        assert!(idx[0].def().unique);
        assert_eq!(idx[1].def().name, "customer_name_key");
    }

    #[test]
    fn insert_maintains_indexes() {
        let t = customers();
        let rid = t.insert(row![1, "alice", 100]).unwrap();
        assert_eq!(
            t.get_by_pk(&[Value::Int(1)]),
            Some((rid, row![1, "alice", 100]))
        );
        let by_name = t.index("customer_name_key").unwrap();
        assert_eq!(by_name.get(&[Value::text("alice")]), vec![rid]);
    }

    #[test]
    fn duplicate_pk_rolls_back_cleanly() {
        let t = customers();
        t.insert(row![1, "alice", 100]).unwrap();
        let err = t.insert(row![1, "bob", 50]).unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
        // The failed insert left no index debris: "bob" is absent.
        let by_name = t.index("customer_name_key").unwrap();
        assert!(by_name.get(&[Value::text("bob")]).is_empty());
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn duplicate_secondary_unique_rolls_back_pk_entry() {
        let t = customers();
        t.insert(row![1, "alice", 100]).unwrap();
        let err = t.insert(row![2, "alice", 50]).unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
        // PK index must not contain the rolled-back key 2.
        assert!(t.get_by_pk(&[Value::Int(2)]).is_none());
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn update_moves_index_entries() {
        let t = customers();
        let rid = t.insert(row![1, "alice", 100]).unwrap();
        t.update(rid, row![1, "alicia", 90]).unwrap();
        let by_name = t.index("customer_name_key").unwrap();
        assert!(by_name.get(&[Value::text("alice")]).is_empty());
        assert_eq!(by_name.get(&[Value::text("alicia")]), vec![rid]);
    }

    #[test]
    fn update_conflict_restores_all_indexes() {
        let t = customers();
        let r1 = t.insert(row![1, "alice", 100]).unwrap();
        t.insert(row![2, "bob", 50]).unwrap();
        // Renaming alice -> bob conflicts on the name key; pk change to 3
        // happens first and must be restored.
        let err = t.update(r1, row![3, "bob", 100]).unwrap_err();
        assert!(matches!(err, Error::UniqueViolation { .. }));
        assert!(t.get_by_pk(&[Value::Int(1)]).is_some(), "pk entry restored");
        assert!(t.get_by_pk(&[Value::Int(3)]).is_none());
        let by_name = t.index("customer_name_key").unwrap();
        assert_eq!(by_name.get(&[Value::text("alice")]), vec![r1]);
    }

    #[test]
    fn delete_and_undo_delete() {
        let t = customers();
        let rid = t.insert(row![1, "alice", 100]).unwrap();
        let row = t.delete(rid).unwrap();
        assert!(t.get_by_pk(&[Value::Int(1)]).is_none());
        t.undo_delete(rid, row).unwrap();
        assert!(t.get_by_pk(&[Value::Int(1)]).is_some());
    }

    #[test]
    fn create_index_backfills() {
        let t = customers();
        for i in 0..10 {
            t.insert(row![i, format!("c{i}"), i * 10]).unwrap();
        }
        t.create_index("customer_balance_idx", &["c_balance"], false)
            .unwrap();
        let idx = t.index("customer_balance_idx").unwrap();
        assert_eq!(idx.get(&[Value::Int(50)]).len(), 1);
        assert_eq!(idx.key_count(), 10);
    }

    #[test]
    fn create_unique_index_fails_on_duplicates() {
        let t = customers();
        t.insert(row![1, "a", 10]).unwrap();
        t.insert(row![2, "b", 10]).unwrap();
        assert!(t
            .create_index("balance_unique", &["c_balance"], true)
            .is_err());
        // Failed index is not published.
        assert!(t.index("balance_unique").is_none());
    }

    #[test]
    fn index_for_columns_picks_best_prefix() {
        let t = customers();
        t.create_index("name_balance", &["c_name", "c_balance"], false)
            .unwrap();
        let got = t.index_for_columns(&[1, 2]).unwrap();
        assert_eq!(got.def().name, "name_balance");
        let got = t.index_for_columns(&[0]).unwrap();
        assert_eq!(got.def().name, "customer_pkey");
        assert!(t.index_for_columns(&[]).is_none());
    }

    #[test]
    fn check_constraint_enforced_on_insert_and_update() {
        let schema = TableSchema::new("t", vec![ColumnDef::new("v", DataType::Int)])
            .with_check("v_positive", bullfrog_common::schema::CheckExpr::gt("v", 0));
        let t = Table::new(TableId(9), schema).unwrap();
        assert!(matches!(
            t.insert(row![0]),
            Err(Error::CheckViolation { .. })
        ));
        let rid = t.insert(row![5]).unwrap();
        assert!(matches!(
            t.update(rid, row![-1]),
            Err(Error::CheckViolation { .. })
        ));
    }
}
