//! Table heaps: append-only collections of slotted pages.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bullfrog_common::{PageNo, Row, RowId};
use parking_lot::{Mutex, RwLock};

use crate::page::Page;

/// A heap of slotted pages holding a table's rows.
///
/// - Inserts append to the last page (new pages are allocated under a small
///   append mutex).
/// - Rows are addressed by stable [`RowId`]s; deleted slots tombstone and
///   are never reused.
/// - Pages are individually latched; scans clone the page list (cheap — it
///   is a vector of `Arc`s) and then visit pages without holding the list
///   lock, so long scans never block inserts of new pages.
pub struct TableHeap {
    pages: RwLock<Vec<Arc<RwLock<Page>>>>,
    /// Serializes the "last page full → allocate" decision.
    append: Mutex<()>,
    slots_per_page: u16,
    /// Largest commit timestamp ever installed into a version chain of
    /// this heap (monotone; GC never lowers it). Together with
    /// `pending_writers` this gates the snapshot-read fast path: when no
    /// version is newer than a snapshot and no write is in flight, the
    /// latest slot state *is* the snapshot state.
    max_version_ts: AtomicU64,
    /// Number of slots currently carrying an uncommitted writer marker.
    pending_writers: AtomicUsize,
}

impl TableHeap {
    /// Creates an empty heap with the given page slot count.
    pub fn new(slots_per_page: u16) -> Self {
        assert!(slots_per_page > 0, "pages must hold at least one slot");
        TableHeap {
            pages: RwLock::new(Vec::new()),
            append: Mutex::new(()),
            slots_per_page,
            max_version_ts: AtomicU64::new(0),
            pending_writers: AtomicUsize::new(0),
        }
    }

    /// Slots per page (the bitmap tracker sizes ordinals with this).
    pub fn slots_per_page(&self) -> u16 {
        self.slots_per_page
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.read().len()
    }

    /// Upper bound on row ordinals (= pages × slots/page); the bitmap
    /// tracker uses this as its capacity.
    pub fn ordinal_bound(&self) -> u64 {
        self.num_pages() as u64 * self.slots_per_page as u64
    }

    /// Number of live rows (O(pages)).
    pub fn live_count(&self) -> usize {
        self.snapshot()
            .iter()
            .map(|p| p.read().live() as usize)
            .sum()
    }

    /// Inserts a row, returning its stable id.
    pub fn insert(&self, row: Row) -> RowId {
        let _guard = self.append.lock();
        // Fast path: last page has room.
        {
            let pages = self.pages.read();
            if let Some(last) = pages.last() {
                let page_no = (pages.len() - 1) as PageNo;
                let mut page = last.write();
                if let Some(slot) = page.append(row.clone()) {
                    return RowId::new(page_no, slot);
                }
            }
        }
        // Slow path: allocate a page. Safe because we hold `append`.
        let mut pages = self.pages.write();
        let mut page = Page::new(self.slots_per_page);
        let slot = page
            .append(row)
            .expect("fresh page accepts at least one row");
        pages.push(Arc::new(RwLock::new(page)));
        RowId::new((pages.len() - 1) as PageNo, slot)
    }

    /// Reads the live row at `rid`.
    pub fn get(&self, rid: RowId) -> Option<Row> {
        let page = self.page(rid.page())?;
        let guard = page.read();
        guard.get(rid.slot()).cloned()
    }

    /// Replaces the live row at `rid`, returning the previous row.
    pub fn update(&self, rid: RowId, row: Row) -> Option<Row> {
        let page = self.page(rid.page())?;
        let mut guard = page.write();
        guard.update(rid.slot(), row)
    }

    /// Tombstones the row at `rid`, returning it.
    pub fn delete(&self, rid: RowId) -> Option<Row> {
        let page = self.page(rid.page())?;
        let mut guard = page.write();
        guard.delete(rid.slot())
    }

    /// Restores a tombstoned slot (rollback of a delete).
    pub fn undelete(&self, rid: RowId, row: Row) -> bool {
        match self.page(rid.page()) {
            Some(page) => page.write().undelete(rid.slot(), row),
            None => false,
        }
    }

    /// Places a row at an exact id (WAL replay): allocates intermediate
    /// pages as needed. Fails when the slot is already live or out of page
    /// capacity.
    pub fn place(&self, rid: RowId, row: Row) -> bool {
        if rid.slot() >= self.slots_per_page {
            return false;
        }
        let _guard = self.append.lock();
        {
            let mut pages = self.pages.write();
            while pages.len() <= rid.page() as usize {
                pages.push(Arc::new(RwLock::new(Page::new(self.slots_per_page))));
            }
        }
        let page = self.page(rid.page()).expect("allocated above");
        let mut guard = page.write();
        guard.place(rid.slot(), row)
    }

    /// Clones the page list for lock-free iteration.
    fn snapshot(&self) -> Vec<Arc<RwLock<Page>>> {
        self.pages.read().clone()
    }

    fn page(&self, page_no: PageNo) -> Option<Arc<RwLock<Page>>> {
        self.pages.read().get(page_no as usize).cloned()
    }

    /// Visits every live row; `f` returning `false` stops the scan early.
    ///
    /// The scan sees a consistent snapshot of the *page list*; rows inserted
    /// into already-visited pages during the scan are missed, rows inserted
    /// into unvisited pages are seen — same as a heap scan in a real engine.
    pub fn scan(&self, mut f: impl FnMut(RowId, &Row) -> bool) {
        for (page_no, page) in self.snapshot().into_iter().enumerate() {
            let guard = page.read();
            for (slot, row) in guard.iter_live() {
                if !f(RowId::new(page_no as PageNo, slot), row) {
                    return;
                }
            }
        }
    }

    /// Visits live rows of one page only (page-granularity migration).
    pub fn scan_page(&self, page_no: PageNo, mut f: impl FnMut(RowId, &Row) -> bool) {
        if let Some(page) = self.page(page_no) {
            let guard = page.read();
            for (slot, row) in guard.iter_live() {
                if !f(RowId::new(page_no, slot), row) {
                    return;
                }
            }
        }
    }

    // ---- MVCC version chains (Snapshot engine mode) ----

    /// Inserts a row with `txn` marked as its pending writer, so snapshot
    /// readers do not see it until [`TableHeap::install_version`] runs.
    pub fn insert_versioned(&self, row: Row, txn: u64) -> RowId {
        self.pending_writers.fetch_add(1, Ordering::SeqCst);
        let _guard = self.append.lock();
        {
            let pages = self.pages.read();
            if let Some(last) = pages.last() {
                let page_no = (pages.len() - 1) as PageNo;
                let mut page = last.write();
                if let Some(slot) = page.append_versioned(row.clone(), txn) {
                    return RowId::new(page_no, slot);
                }
            }
        }
        let mut pages = self.pages.write();
        let mut page = Page::new(self.slots_per_page);
        let slot = page
            .append_versioned(row, txn)
            .expect("fresh page accepts at least one row");
        pages.push(Arc::new(RwLock::new(page)));
        RowId::new((pages.len() - 1) as PageNo, slot)
    }

    /// Marks `txn` as the pending writer of `rid` (call before the
    /// in-place update/delete; seeds the base version on first use).
    pub fn prepare_write(&self, rid: RowId, txn: u64) {
        if let Some(page) = self.page(rid.page()) {
            if page.write().prepare_write(rid.slot(), txn) {
                self.pending_writers.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Publishes `txn`'s pending write on `rid` at commit timestamp `ts`.
    ///
    /// The ts high-water mark is raised *before* the pending gauge drops:
    /// a reader that observes `pending_writers == 0` is then guaranteed to
    /// also observe `max_version_ts >= ts`, so the snapshot-read fast-path
    /// gate can never miss a concurrent commit.
    pub fn install_version(&self, rid: RowId, txn: u64, ts: u64) {
        self.max_version_ts.fetch_max(ts, Ordering::SeqCst);
        if let Some(page) = self.page(rid.page()) {
            if page.write().install_version(rid.slot(), txn, ts) {
                self.pending_writers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Clears `txn`'s pending-writer marker on `rid` after an abort.
    pub fn clear_pending(&self, rid: RowId, txn: u64) {
        if let Some(page) = self.page(rid.page()) {
            if page.write().clear_pending(rid.slot(), txn) {
                self.pending_writers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// True when the latest slot state is exactly the state at snapshot
    /// `snap`: no committed version is newer and no write is in flight.
    /// Under this condition index-assisted reads are exact for snapshot
    /// readers. Callers must re-check *after* collecting results — a
    /// writer that raced the read either still holds its pending marker
    /// or has installed a version above `snap`, failing the re-check.
    pub fn current_matches_snapshot(&self, snap: u64) -> bool {
        self.pending_writers.load(Ordering::SeqCst) == 0
            && self.max_version_ts.load(Ordering::SeqCst) <= snap
    }

    /// Reads the row at `rid` visible to `txn` at snapshot `snap`.
    pub fn get_visible(&self, rid: RowId, txn: Option<u64>, snap: u64) -> Option<Row> {
        let page = self.page(rid.page())?;
        let guard = page.read();
        guard.visible(rid.slot(), txn, snap).cloned()
    }

    /// Newest committed version timestamp at `rid` (0 when unversioned).
    pub fn newest_version_ts(&self, rid: RowId) -> u64 {
        match self.page(rid.page()) {
            Some(page) => page.read().newest_version_ts(rid.slot()),
            None => 0,
        }
    }

    /// Visits every row visible at snapshot `snap`, including rows whose
    /// slot is currently tombstoned or overwritten by an uncommitted
    /// writer but whose chain still holds a visible version.
    pub fn scan_visible(
        &self,
        txn: Option<u64>,
        snap: u64,
        mut f: impl FnMut(RowId, &Row) -> bool,
    ) {
        for (page_no, page) in self.snapshot().into_iter().enumerate() {
            let guard = page.read();
            for slot in 0..guard.used() {
                if let Some(row) = guard.visible(slot, txn, snap) {
                    if !f(RowId::new(page_no as PageNo, slot), row) {
                        return;
                    }
                }
            }
        }
    }

    /// [`TableHeap::scan_visible`] over a single page.
    pub fn scan_page_visible(
        &self,
        page_no: PageNo,
        txn: Option<u64>,
        snap: u64,
        mut f: impl FnMut(RowId, &Row) -> bool,
    ) {
        if let Some(page) = self.page(page_no) {
            let guard = page.read();
            for slot in 0..guard.used() {
                if let Some(row) = guard.visible(slot, txn, snap) {
                    if !f(RowId::new(page_no, slot), row) {
                        return;
                    }
                }
            }
        }
    }

    /// Number of retained chain nodes across all pages (O(pages)).
    pub fn version_count(&self) -> usize {
        self.snapshot()
            .iter()
            .map(|p| p.read().version_count())
            .sum()
    }

    /// Prunes version chains no snapshot at or above `horizon` needs.
    /// Returns the number of freed chain nodes.
    pub fn gc_versions(&self, horizon: u64) -> usize {
        self.snapshot()
            .iter()
            .map(|p| p.write().gc_versions(horizon))
            .sum()
    }

    /// Collects `(RowId, Row)` for every live row (test/loader convenience).
    pub fn all_rows(&self) -> Vec<(RowId, Row)> {
        let mut out = Vec::new();
        self.scan(|rid, row| {
            out.push((rid, row.clone()));
            true
        });
        out
    }
}

impl std::fmt::Debug for TableHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableHeap")
            .field("pages", &self.num_pages())
            .field("slots_per_page", &self.slots_per_page)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    #[test]
    fn insert_assigns_sequential_rids() {
        let h = TableHeap::new(2);
        assert_eq!(h.insert(row![1]), RowId::new(0, 0));
        assert_eq!(h.insert(row![2]), RowId::new(0, 1));
        assert_eq!(h.insert(row![3]), RowId::new(1, 0));
        assert_eq!(h.num_pages(), 2);
        assert_eq!(h.ordinal_bound(), 4);
    }

    #[test]
    fn get_update_delete_round_trip() {
        let h = TableHeap::new(4);
        let rid = h.insert(row![1, "a"]);
        assert_eq!(h.get(rid), Some(row![1, "a"]));
        assert_eq!(h.update(rid, row![2, "b"]), Some(row![1, "a"]));
        assert_eq!(h.get(rid), Some(row![2, "b"]));
        assert_eq!(h.delete(rid), Some(row![2, "b"]));
        assert_eq!(h.get(rid), None);
        assert_eq!(h.update(rid, row![3, "c"]), None);
        assert!(h.undelete(rid, row![2, "b"]));
        assert_eq!(h.get(rid), Some(row![2, "b"]));
    }

    #[test]
    fn scan_sees_all_live_rows() {
        let h = TableHeap::new(3);
        let rids: Vec<_> = (0..10).map(|i| h.insert(row![i])).collect();
        h.delete(rids[4]);
        let mut seen = Vec::new();
        h.scan(|rid, _| {
            seen.push(rid);
            true
        });
        assert_eq!(seen.len(), 9);
        assert!(!seen.contains(&rids[4]));
        assert_eq!(h.live_count(), 9);
    }

    #[test]
    fn scan_early_exit() {
        let h = TableHeap::new(4);
        for i in 0..10 {
            h.insert(row![i]);
        }
        let mut n = 0;
        h.scan(|_, _| {
            n += 1;
            n < 3
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn scan_page_visits_one_page() {
        let h = TableHeap::new(2);
        for i in 0..6 {
            h.insert(row![i]);
        }
        let mut seen = Vec::new();
        h.scan_page(1, |rid, _| {
            seen.push(rid);
            true
        });
        assert_eq!(seen, vec![RowId::new(1, 0), RowId::new(1, 1)]);
        // Out-of-range page: no rows, no panic.
        h.scan_page(99, |_, _| panic!("no rows expected"));
    }

    #[test]
    fn get_out_of_range_is_none() {
        let h = TableHeap::new(2);
        assert_eq!(h.get(RowId::new(0, 0)), None);
        h.insert(row![1]);
        assert_eq!(h.get(RowId::new(0, 1)), None);
        assert_eq!(h.get(RowId::new(5, 0)), None);
    }

    #[test]
    fn visible_scan_traverses_chains() {
        let h = TableHeap::new(2);
        let a = h.insert(row![1]);
        let b = h.insert(row![2]);
        // Txn 9 updates a and deletes b in place; commit at ts 10.
        h.prepare_write(a, 9);
        h.update(a, row![10]);
        h.prepare_write(b, 9);
        h.delete(b);
        let pre: Vec<_> = {
            let mut v = Vec::new();
            h.scan_visible(None, 5, |_, r| {
                v.push(r.clone());
                true
            });
            v
        };
        assert_eq!(pre, vec![row![1], row![2]], "pending writes invisible");
        h.install_version(a, 9, 10);
        h.install_version(b, 9, 10);
        let mut old = Vec::new();
        h.scan_visible(None, 9, |_, r| {
            old.push(r.clone());
            true
        });
        assert_eq!(old, vec![row![1], row![2]], "old snapshot still intact");
        let mut new = Vec::new();
        h.scan_visible(None, 10, |_, r| {
            new.push(r.clone());
            true
        });
        assert_eq!(new, vec![row![10]], "delete visible at ts 10");
        assert_eq!(h.get_visible(b, None, 9), Some(row![2]));
        assert_eq!(h.get_visible(b, None, 10), None);
        assert!(h.version_count() > 0);
        assert_eq!(h.gc_versions(10), 4);
        assert_eq!(h.version_count(), 0, "chains collapse past the horizon");
        assert_eq!(h.get_visible(a, None, 10), Some(row![10]));
    }

    #[test]
    fn insert_versioned_hidden_until_install() {
        let h = TableHeap::new(2);
        let rid = h.insert_versioned(row![7], 3);
        assert_eq!(h.get_visible(rid, None, 100), None);
        assert_eq!(h.get_visible(rid, Some(3), 0), Some(row![7]));
        assert_eq!(h.get(rid), Some(row![7]), "2PL read sees the slot");
        h.install_version(rid, 3, 4);
        assert_eq!(h.get_visible(rid, None, 4), Some(row![7]));
        assert_eq!(h.newest_version_ts(rid), 4);
    }

    #[test]
    fn concurrent_inserts_unique_rids() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let h = Arc::new(TableHeap::new(8));
        let mut handles = Vec::new();
        for t in 0..8 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                (0..500)
                    .map(|i| h.insert(row![t * 1000 + i]))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for handle in handles {
            for rid in handle.join().unwrap() {
                assert!(all.insert(rid), "duplicate rid {rid}");
            }
        }
        assert_eq!(all.len(), 4000);
        assert_eq!(h.live_count(), 4000);
    }
}
