//! Table heaps: append-only collections of slotted pages.

use std::sync::Arc;

use bullfrog_common::{PageNo, Row, RowId};
use parking_lot::{Mutex, RwLock};

use crate::page::Page;

/// A heap of slotted pages holding a table's rows.
///
/// - Inserts append to the last page (new pages are allocated under a small
///   append mutex).
/// - Rows are addressed by stable [`RowId`]s; deleted slots tombstone and
///   are never reused.
/// - Pages are individually latched; scans clone the page list (cheap — it
///   is a vector of `Arc`s) and then visit pages without holding the list
///   lock, so long scans never block inserts of new pages.
pub struct TableHeap {
    pages: RwLock<Vec<Arc<RwLock<Page>>>>,
    /// Serializes the "last page full → allocate" decision.
    append: Mutex<()>,
    slots_per_page: u16,
}

impl TableHeap {
    /// Creates an empty heap with the given page slot count.
    pub fn new(slots_per_page: u16) -> Self {
        assert!(slots_per_page > 0, "pages must hold at least one slot");
        TableHeap {
            pages: RwLock::new(Vec::new()),
            append: Mutex::new(()),
            slots_per_page,
        }
    }

    /// Slots per page (the bitmap tracker sizes ordinals with this).
    pub fn slots_per_page(&self) -> u16 {
        self.slots_per_page
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.read().len()
    }

    /// Upper bound on row ordinals (= pages × slots/page); the bitmap
    /// tracker uses this as its capacity.
    pub fn ordinal_bound(&self) -> u64 {
        self.num_pages() as u64 * self.slots_per_page as u64
    }

    /// Number of live rows (O(pages)).
    pub fn live_count(&self) -> usize {
        self.snapshot()
            .iter()
            .map(|p| p.read().live() as usize)
            .sum()
    }

    /// Inserts a row, returning its stable id.
    pub fn insert(&self, row: Row) -> RowId {
        let _guard = self.append.lock();
        // Fast path: last page has room.
        {
            let pages = self.pages.read();
            if let Some(last) = pages.last() {
                let page_no = (pages.len() - 1) as PageNo;
                let mut page = last.write();
                if let Some(slot) = page.append(row.clone()) {
                    return RowId::new(page_no, slot);
                }
            }
        }
        // Slow path: allocate a page. Safe because we hold `append`.
        let mut pages = self.pages.write();
        let mut page = Page::new(self.slots_per_page);
        let slot = page
            .append(row)
            .expect("fresh page accepts at least one row");
        pages.push(Arc::new(RwLock::new(page)));
        RowId::new((pages.len() - 1) as PageNo, slot)
    }

    /// Reads the live row at `rid`.
    pub fn get(&self, rid: RowId) -> Option<Row> {
        let page = self.page(rid.page())?;
        let guard = page.read();
        guard.get(rid.slot()).cloned()
    }

    /// Replaces the live row at `rid`, returning the previous row.
    pub fn update(&self, rid: RowId, row: Row) -> Option<Row> {
        let page = self.page(rid.page())?;
        let mut guard = page.write();
        guard.update(rid.slot(), row)
    }

    /// Tombstones the row at `rid`, returning it.
    pub fn delete(&self, rid: RowId) -> Option<Row> {
        let page = self.page(rid.page())?;
        let mut guard = page.write();
        guard.delete(rid.slot())
    }

    /// Restores a tombstoned slot (rollback of a delete).
    pub fn undelete(&self, rid: RowId, row: Row) -> bool {
        match self.page(rid.page()) {
            Some(page) => page.write().undelete(rid.slot(), row),
            None => false,
        }
    }

    /// Places a row at an exact id (WAL replay): allocates intermediate
    /// pages as needed. Fails when the slot is already live or out of page
    /// capacity.
    pub fn place(&self, rid: RowId, row: Row) -> bool {
        if rid.slot() >= self.slots_per_page {
            return false;
        }
        let _guard = self.append.lock();
        {
            let mut pages = self.pages.write();
            while pages.len() <= rid.page() as usize {
                pages.push(Arc::new(RwLock::new(Page::new(self.slots_per_page))));
            }
        }
        let page = self.page(rid.page()).expect("allocated above");
        let mut guard = page.write();
        guard.place(rid.slot(), row)
    }

    /// Clones the page list for lock-free iteration.
    fn snapshot(&self) -> Vec<Arc<RwLock<Page>>> {
        self.pages.read().clone()
    }

    fn page(&self, page_no: PageNo) -> Option<Arc<RwLock<Page>>> {
        self.pages.read().get(page_no as usize).cloned()
    }

    /// Visits every live row; `f` returning `false` stops the scan early.
    ///
    /// The scan sees a consistent snapshot of the *page list*; rows inserted
    /// into already-visited pages during the scan are missed, rows inserted
    /// into unvisited pages are seen — same as a heap scan in a real engine.
    pub fn scan(&self, mut f: impl FnMut(RowId, &Row) -> bool) {
        for (page_no, page) in self.snapshot().into_iter().enumerate() {
            let guard = page.read();
            for (slot, row) in guard.iter_live() {
                if !f(RowId::new(page_no as PageNo, slot), row) {
                    return;
                }
            }
        }
    }

    /// Visits live rows of one page only (page-granularity migration).
    pub fn scan_page(&self, page_no: PageNo, mut f: impl FnMut(RowId, &Row) -> bool) {
        if let Some(page) = self.page(page_no) {
            let guard = page.read();
            for (slot, row) in guard.iter_live() {
                if !f(RowId::new(page_no, slot), row) {
                    return;
                }
            }
        }
    }

    /// Collects `(RowId, Row)` for every live row (test/loader convenience).
    pub fn all_rows(&self) -> Vec<(RowId, Row)> {
        let mut out = Vec::new();
        self.scan(|rid, row| {
            out.push((rid, row.clone()));
            true
        });
        out
    }
}

impl std::fmt::Debug for TableHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableHeap")
            .field("pages", &self.num_pages())
            .field("slots_per_page", &self.slots_per_page)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    #[test]
    fn insert_assigns_sequential_rids() {
        let h = TableHeap::new(2);
        assert_eq!(h.insert(row![1]), RowId::new(0, 0));
        assert_eq!(h.insert(row![2]), RowId::new(0, 1));
        assert_eq!(h.insert(row![3]), RowId::new(1, 0));
        assert_eq!(h.num_pages(), 2);
        assert_eq!(h.ordinal_bound(), 4);
    }

    #[test]
    fn get_update_delete_round_trip() {
        let h = TableHeap::new(4);
        let rid = h.insert(row![1, "a"]);
        assert_eq!(h.get(rid), Some(row![1, "a"]));
        assert_eq!(h.update(rid, row![2, "b"]), Some(row![1, "a"]));
        assert_eq!(h.get(rid), Some(row![2, "b"]));
        assert_eq!(h.delete(rid), Some(row![2, "b"]));
        assert_eq!(h.get(rid), None);
        assert_eq!(h.update(rid, row![3, "c"]), None);
        assert!(h.undelete(rid, row![2, "b"]));
        assert_eq!(h.get(rid), Some(row![2, "b"]));
    }

    #[test]
    fn scan_sees_all_live_rows() {
        let h = TableHeap::new(3);
        let rids: Vec<_> = (0..10).map(|i| h.insert(row![i])).collect();
        h.delete(rids[4]);
        let mut seen = Vec::new();
        h.scan(|rid, _| {
            seen.push(rid);
            true
        });
        assert_eq!(seen.len(), 9);
        assert!(!seen.contains(&rids[4]));
        assert_eq!(h.live_count(), 9);
    }

    #[test]
    fn scan_early_exit() {
        let h = TableHeap::new(4);
        for i in 0..10 {
            h.insert(row![i]);
        }
        let mut n = 0;
        h.scan(|_, _| {
            n += 1;
            n < 3
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn scan_page_visits_one_page() {
        let h = TableHeap::new(2);
        for i in 0..6 {
            h.insert(row![i]);
        }
        let mut seen = Vec::new();
        h.scan_page(1, |rid, _| {
            seen.push(rid);
            true
        });
        assert_eq!(seen, vec![RowId::new(1, 0), RowId::new(1, 1)]);
        // Out-of-range page: no rows, no panic.
        h.scan_page(99, |_, _| panic!("no rows expected"));
    }

    #[test]
    fn get_out_of_range_is_none() {
        let h = TableHeap::new(2);
        assert_eq!(h.get(RowId::new(0, 0)), None);
        h.insert(row![1]);
        assert_eq!(h.get(RowId::new(0, 1)), None);
        assert_eq!(h.get(RowId::new(5, 0)), None);
    }

    #[test]
    fn concurrent_inserts_unique_rids() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let h = Arc::new(TableHeap::new(8));
        let mut handles = Vec::new();
        for t in 0..8 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                (0..500)
                    .map(|i| h.insert(row![t * 1000 + i]))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for handle in handles {
            for rid in handle.join().unwrap() {
                assert!(all.insert(rid), "duplicate rid {rid}");
            }
        }
        assert_eq!(all.len(), 4000);
        assert_eq!(h.live_count(), 4000);
    }
}
