//! Model-based property test: a `Table` (heap + indexes) against a plain
//! `BTreeMap` model, over random operation sequences. Verifies that heap
//! contents, primary-index lookups, and secondary-index postings never
//! diverge — including through failed (unique-violation) operations,
//! which must leave no debris.

use std::collections::BTreeMap;

use bullfrog_common::{ColumnDef, DataType};
use bullfrog_common::{Error, Row, RowId, TableId, TableSchema, Value};
use bullfrog_storage::Table;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, grp: i64 },
    UpdateGrp { id: i64, grp: i64 },
    Delete { id: i64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..40, 0i64..5).prop_map(|(id, grp)| Op::Insert { id, grp }),
        (0i64..40, 0i64..5).prop_map(|(id, grp)| Op::UpdateGrp { id, grp }),
        (0i64..40).prop_map(|id| Op::Delete { id }),
    ]
}

fn table() -> Table {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("grp", DataType::Int),
        ],
    )
    .with_primary_key(&["id"]);
    let t = Table::with_slots_per_page(TableId(1), schema, 4).unwrap();
    t.create_index("t_grp_idx", &["grp"], false).unwrap();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn table_matches_model(ops in proptest::collection::vec(arb_op(), 0..120)) {
        let t = table();
        // Model: id -> (rid, grp).
        let mut model: BTreeMap<i64, (RowId, i64)> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { id, grp } => {
                    let result = t.insert(Row(vec![Value::Int(id), Value::Int(grp)]));
                    if let std::collections::btree_map::Entry::Vacant(slot) = model.entry(id)
                    {
                        slot.insert((result.unwrap(), grp));
                    } else {
                        let is_unique_violation =
                            matches!(result, Err(Error::UniqueViolation { .. }));
                        prop_assert!(is_unique_violation);
                    }
                }
                Op::UpdateGrp { id, grp } => {
                    if let Some((rid, _)) = model.get(&id).copied() {
                        t.update(rid, Row(vec![Value::Int(id), Value::Int(grp)])).unwrap();
                        model.insert(id, (rid, grp));
                    }
                }
                Op::Delete { id } => {
                    if let Some((rid, _)) = model.remove(&id) {
                        t.delete(rid).unwrap();
                    }
                }
            }

            // Invariants after every op.
            prop_assert_eq!(t.live_count(), model.len());
            for (id, (rid, grp)) in &model {
                let found = t.get_by_pk(&[Value::Int(*id)]);
                prop_assert!(found.is_some(), "pk {} missing", id);
                let (got_rid, got_row) = found.unwrap();
                prop_assert_eq!(got_rid, *rid);
                prop_assert_eq!(&got_row[1], &Value::Int(*grp));
            }
            // Secondary index postings match exactly.
            let idx = t.index("t_grp_idx").unwrap();
            for g in 0..5i64 {
                let mut expect: Vec<RowId> = model
                    .values()
                    .filter(|(_, grp)| *grp == g)
                    .map(|(rid, _)| *rid)
                    .collect();
                expect.sort();
                let mut got = idx.get(&[Value::Int(g)]);
                got.sort();
                prop_assert_eq!(got, expect, "group {} postings", g);
            }
        }
    }

    #[test]
    fn place_round_trips_arbitrary_rids(
        slots in 1u16..16,
        positions in proptest::collection::btree_set((0u32..6, 0u16..16), 0..20),
    ) {
        let schema = TableSchema::new(
            "t",
            vec![ColumnDef::new("id", DataType::Int)],
        );
        let t = Table::with_slots_per_page(TableId(1), schema, slots).unwrap();
        let mut placed = Vec::new();
        for (i, (page, slot)) in positions.iter().enumerate() {
            if *slot >= slots {
                continue;
            }
            let rid = RowId::new(*page, *slot);
            t.place(rid, Row(vec![Value::Int(i as i64)])).unwrap();
            placed.push((rid, i as i64));
        }
        prop_assert_eq!(t.live_count(), placed.len());
        for (rid, v) in placed {
            prop_assert_eq!(t.heap().get(rid), Some(Row(vec![Value::Int(v)])));
        }
    }
}
