//! Rebuilding tracker state after a crash (paper §3.5).
//!
//! "BullFrog's status tracking data structures are stored in volatile
//! memory. Upon a crash, they must be reinitialized. While the REDO log is
//! scanned during recovery, for each tuple (or group) that is found in a
//! committed migration transaction, the corresponding status is set to
//! `[0 1]` in the bitmap or `migrated` in the hashmap." The paper lists
//! this as not yet implemented; here it is.
//!
//! Flow: `bullfrog_engine::recovery::replay` rebuilds table contents and
//! returns the `MigrationGranule` records of committed transactions;
//! [`rebuild_trackers`] applies them to freshly allocated trackers.

use std::sync::Arc;

use bullfrog_txn::wal::GranuleKey;

use crate::granule::Granule;
use crate::migrate::StatementRuntime;

/// Applies committed migration-granule records (as returned by engine
/// recovery) to the runtimes' trackers. Returns how many granules were
/// marked.
pub fn rebuild_trackers(
    runtimes: &[Arc<StatementRuntime>],
    migrated: &[(u32, GranuleKey)],
) -> usize {
    let mut applied = 0;
    for (stmt_id, key) in migrated {
        if let Some(rt) = runtimes.iter().find(|rt| rt.id == *stmt_id) {
            if rt.tracker.mark_migrated_direct(&Granule::from_wal(key)) {
                applied += 1;
            }
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::BitmapTracker;
    use crate::granule::GranuleState;
    use crate::hashmap::HashTracker;
    use crate::plan::MigrationStatement;
    use crate::stats::MigrationStats;
    use bullfrog_common::{ColumnDef, DataType, TableSchema, Value};
    use bullfrog_engine::Database;
    use bullfrog_query::{AggFunc, Expr, SelectSpec};
    use std::sync::atomic::AtomicU64;

    fn runtimes() -> Vec<Arc<StatementRuntime>> {
        let db = Database::new();
        db.create_table(
            TableSchema::new(
                "src",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
            )
            .with_primary_key(&["id"]),
        )
        .unwrap();
        let mut s0 = MigrationStatement::new(
            TableSchema::new("copy", vec![ColumnDef::new("id", DataType::Int)])
                .with_primary_key(&["id"]),
            SelectSpec::new()
                .from_table("src", "s")
                .select("id", Expr::col("s", "id")),
        );
        s0.resolve(&db).unwrap();
        let mut s1 = MigrationStatement::new(
            TableSchema::new(
                "totals",
                vec![
                    ColumnDef::new("v", DataType::Int),
                    ColumnDef::new("n", DataType::Int),
                ],
            )
            .with_primary_key(&["v"]),
            SelectSpec::new()
                .from_table("src", "s")
                .select("v", Expr::col("s", "v"))
                .select_agg("n", AggFunc::Count, Expr::lit(1)),
        );
        s1.resolve(&db).unwrap();
        vec![
            Arc::new(StatementRuntime {
                id: 0,
                stmt: s0,
                tracker: Arc::new(BitmapTracker::new(100, 1)),
                stats: Arc::new(MigrationStats::new()),
                in_flight: AtomicU64::new(0),
            }),
            Arc::new(StatementRuntime {
                id: 1,
                stmt: s1,
                tracker: Arc::new(HashTracker::new()),
                stats: Arc::new(MigrationStats::new()),
                in_flight: AtomicU64::new(0),
            }),
        ]
    }

    #[test]
    fn rebuild_marks_both_tracker_kinds() {
        let rts = runtimes();
        let records = vec![
            (0u32, GranuleKey::Ordinal(3)),
            (0, GranuleKey::Ordinal(7)),
            (1, GranuleKey::Group(vec![Value::Int(42)])),
        ];
        let applied = rebuild_trackers(&rts, &records);
        assert_eq!(applied, 3);
        assert_eq!(
            rts[0].tracker.state(&Granule::Ordinal(3)),
            GranuleState::Migrated
        );
        assert_eq!(
            rts[0].tracker.state(&Granule::Ordinal(4)),
            GranuleState::NotStarted
        );
        assert_eq!(
            rts[1].tracker.state(&Granule::Group(vec![Value::Int(42)])),
            GranuleState::Migrated
        );
    }

    #[test]
    fn duplicates_and_unknown_statements_ignored() {
        let rts = runtimes();
        let records = vec![
            (0u32, GranuleKey::Ordinal(3)),
            (0, GranuleKey::Ordinal(3)), // duplicate
            (9, GranuleKey::Ordinal(1)), // unknown statement
        ];
        assert_eq!(rebuild_trackers(&rts, &records), 1);
        assert_eq!(rts[0].tracker.migrated_count(), 1);
    }
}
