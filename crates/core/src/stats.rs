//! Migration progress and overhead counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters published by an active migration (all monotonically
/// increasing; read with relaxed ordering — they are diagnostics, not
/// synchronization).
#[derive(Debug, Default)]
pub struct MigrationStats {
    /// Granules physically migrated (committed).
    pub granules_migrated: AtomicU64,
    /// Output rows inserted by migration transactions.
    pub rows_migrated: AtomicU64,
    /// Migration transactions committed.
    pub migration_txns: AtomicU64,
    /// Migration transactions aborted (and their claims reset).
    pub migration_aborts: AtomicU64,
    /// Granules found claimed by another worker (SKIP-list appends).
    pub skips: AtomicU64,
    /// Times a worker blocked waiting for another worker's in-progress
    /// granule (Algorithm 1 line 10 loop).
    pub waits: AtomicU64,
    /// Output rows that violated a new-schema constraint and were dropped
    /// during migration (paper §2.4's "warning" path).
    pub rows_dropped: AtomicU64,
    /// Rows whose insert was skipped by ON CONFLICT dedup (§3.7 mode).
    pub conflict_skips: AtomicU64,
    /// Granules migrated by background threads (subset of
    /// `granules_migrated`).
    pub background_granules: AtomicU64,
}

impl MigrationStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// One-line progress summary.
    pub fn summary(&self) -> String {
        format!(
            "granules={} rows={} txns={} aborts={} skips={} waits={} dropped={} conflicts={} bg={}",
            Self::get(&self.granules_migrated),
            Self::get(&self.rows_migrated),
            Self::get(&self.migration_txns),
            Self::get(&self.migration_aborts),
            Self::get(&self.skips),
            Self::get(&self.waits),
            Self::get(&self.rows_dropped),
            Self::get(&self.conflict_skips),
            Self::get(&self.background_granules),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = MigrationStats::new();
        MigrationStats::add(&s.granules_migrated, 3);
        MigrationStats::add(&s.granules_migrated, 2);
        assert_eq!(MigrationStats::get(&s.granules_migrated), 5);
        assert!(s.summary().contains("granules=5"));
    }
}
