//! Migration progress and overhead counters, plus a snapshot of the
//! engine's durability (group-commit WAL + checkpoint) counters.

use std::sync::atomic::{AtomicU64, Ordering};

use bullfrog_engine::Database;
use bullfrog_txn::WalStatsSnapshot;

/// Counters published by an active migration (all monotonically
/// increasing; read with relaxed ordering — they are diagnostics, not
/// synchronization).
#[derive(Debug, Default)]
pub struct MigrationStats {
    /// Granules physically migrated (committed).
    pub granules_migrated: AtomicU64,
    /// Output rows inserted by migration transactions.
    pub rows_migrated: AtomicU64,
    /// Migration transactions committed.
    pub migration_txns: AtomicU64,
    /// Migration transactions aborted (and their claims reset).
    pub migration_aborts: AtomicU64,
    /// Granules found claimed by another worker (SKIP-list appends).
    pub skips: AtomicU64,
    /// Times a worker blocked waiting for another worker's in-progress
    /// granule (Algorithm 1 line 10 loop).
    pub waits: AtomicU64,
    /// Output rows that violated a new-schema constraint and were dropped
    /// during migration (paper §2.4's "warning" path).
    pub rows_dropped: AtomicU64,
    /// Rows whose insert was skipped by ON CONFLICT dedup (§3.7 mode).
    pub conflict_skips: AtomicU64,
    /// Granules migrated by background threads (subset of
    /// `granules_migrated`).
    pub background_granules: AtomicU64,
}

impl MigrationStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// A coherent-enough point-in-time copy of every counter (each read
    /// is individually atomic; the set is advisory, as all diagnostics
    /// here are).
    pub fn snapshot(&self) -> MigrationStatsSnapshot {
        MigrationStatsSnapshot {
            granules_migrated: Self::get(&self.granules_migrated),
            rows_migrated: Self::get(&self.rows_migrated),
            migration_txns: Self::get(&self.migration_txns),
            migration_aborts: Self::get(&self.migration_aborts),
            skips: Self::get(&self.skips),
            waits: Self::get(&self.waits),
            rows_dropped: Self::get(&self.rows_dropped),
            conflict_skips: Self::get(&self.conflict_skips),
            background_granules: Self::get(&self.background_granules),
        }
    }

    /// One-line progress summary.
    pub fn summary(&self) -> String {
        format!(
            "granules={} rows={} txns={} aborts={} skips={} waits={} dropped={} conflicts={} bg={}",
            Self::get(&self.granules_migrated),
            Self::get(&self.rows_migrated),
            Self::get(&self.migration_txns),
            Self::get(&self.migration_aborts),
            Self::get(&self.skips),
            Self::get(&self.waits),
            Self::get(&self.rows_dropped),
            Self::get(&self.conflict_skips),
            Self::get(&self.background_granules),
        )
    }
}

/// Plain-value copy of [`MigrationStats`], fit for shipping over the
/// wire (the server's `STATUS` opcode) or embedding in reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStatsSnapshot {
    /// See [`MigrationStats::granules_migrated`].
    pub granules_migrated: u64,
    /// See [`MigrationStats::rows_migrated`].
    pub rows_migrated: u64,
    /// See [`MigrationStats::migration_txns`].
    pub migration_txns: u64,
    /// See [`MigrationStats::migration_aborts`].
    pub migration_aborts: u64,
    /// See [`MigrationStats::skips`].
    pub skips: u64,
    /// See [`MigrationStats::waits`].
    pub waits: u64,
    /// See [`MigrationStats::rows_dropped`].
    pub rows_dropped: u64,
    /// See [`MigrationStats::conflict_skips`].
    pub conflict_skips: u64,
    /// See [`MigrationStats::background_granules`].
    pub background_granules: u64,
}

/// Point-in-time durability counters captured from a database: the WAL's
/// group-commit/flush/checkpoint totals plus the current log shape. One
/// capture per run is enough — everything in here is monotonic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DurabilityStats {
    /// The WAL's aggregated counters (flushes, group sizes, bytes,
    /// latency, checkpoints, truncated records) summed over every shard.
    pub wal: WalStatsSnapshot,
    /// Per-shard flush counters, indexed by durability shard.
    pub shards: Vec<WalStatsSnapshot>,
    /// LSN-space length of the log (records ever appended).
    pub log_len: u64,
    /// Records currently resident in memory (bounded by checkpointing).
    pub resident_records: u64,
    /// The merged durable horizon (min over shard frontiers).
    pub durable_lsn: u64,
}

impl DurabilityStats {
    /// Captures the counters from `db`'s WAL.
    pub fn capture(db: &Database) -> Self {
        let wal = db.wal();
        DurabilityStats {
            wal: wal.stats(),
            shards: wal.shard_stats(),
            log_len: wal.len() as u64,
            resident_records: wal.resident_records() as u64,
            durable_lsn: wal.durable_lsn(),
        }
    }

    /// One-line summary for bench reports: fsync count vs. batches (the
    /// group-commit win), group sizes, flush latency, per-shard fsync
    /// spread, and log footprint.
    pub fn summary(&self) -> String {
        let spread: Vec<String> = self.shards.iter().map(|s| s.flushes.to_string()).collect();
        format!(
            "{} shards[fsyncs]=[{}] len={} resident={} durable_lsn={}",
            self.wal.summary(),
            spread.join("/"),
            self.log_len,
            self.resident_records,
            self.durable_lsn,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_capture_reflects_wal_shape() {
        use bullfrog_common::{row, ColumnDef, DataType, TableSchema};
        let db = Database::new();
        db.create_table(
            TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int)])
                .with_primary_key(&["id"]),
        )
        .unwrap();
        db.with_txn(|txn| db.insert(txn, "t", row![1]).map(|_| ()))
            .unwrap();
        let d = DurabilityStats::capture(&db);
        // One txn = Insert + Commit records.
        assert_eq!(d.log_len, 2);
        assert_eq!(d.resident_records, 2);
        assert!(d.summary().contains("len=2"));
    }

    #[test]
    fn counters_accumulate() {
        let s = MigrationStats::new();
        MigrationStats::add(&s.granules_migrated, 3);
        MigrationStats::add(&s.granules_migrated, 2);
        assert_eq!(MigrationStats::get(&s.granules_migrated), 5);
        assert!(s.summary().contains("granules=5"));
    }
}
