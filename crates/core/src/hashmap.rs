//! The hashmap migration tracker (paper §3.4, Algorithm 3).
//!
//! n:1 and n:n migrations combine *groups* of input tuples into output
//! tuples, so migration status must be tracked per group — and since group
//! identifiers are arbitrary values, a hash table replaces the bitmap. Each
//! entry is `group key → InProgress | Migrated | Aborted`:
//!
//! - absent — never claimed (equivalent to bitmap `[0 0]`);
//! - `InProgress` — a worker holds the migration lock;
//! - `Migrated` — done;
//! - `Aborted` — a worker claimed it and aborted; claimable again (the
//!   hashmap's explicit analogue of resetting the bitmap to `[0 0]`).
//!
//! The table is partitioned, each partition under its own latch, "to
//! reduce cross-worker contention" (paper footnote 4 — and as there, no
//! two latches are ever held simultaneously, so the structure cannot
//! deadlock). Algorithm 3's check-then-insert race (its lines 11–12 GOTO)
//! is preserved in shape: an optimistic read under the shared latch, then
//! the exclusive latch with a full re-check.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use bullfrog_common::Value;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::granule::{Granule, GranuleState, Tracker, WorkList};

/// Per-group status stored in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupStatus {
    InProgress,
    Migrated,
    Aborted,
}

struct Partition {
    map: RwLock<HashMap<Vec<Value>, GroupStatus>>,
    wait_lock: Mutex<()>,
    changed: Condvar,
}

/// Hash tracker for n:1 and n:n migrations.
pub struct HashTracker {
    partitions: Vec<Partition>,
    migrated: AtomicU64,
}

/// Number of hash partitions (power of two).
const PARTITIONS: usize = 64;

impl HashTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        HashTracker {
            partitions: (0..PARTITIONS)
                .map(|_| Partition {
                    map: RwLock::new(HashMap::new()),
                    wait_lock: Mutex::new(()),
                    changed: Condvar::new(),
                })
                .collect(),
            migrated: AtomicU64::new(0),
        }
    }

    fn partition(&self, key: &[Value]) -> &Partition {
        // Deterministic FNV so partition assignment is stable across runs
        // (DESIGN.md: trackers partition by an in-repo FNV-style hash).
        &self.partitions[(bullfrog_common::fnv_hash_one(key) as usize) & (PARTITIONS - 1)]
    }

    fn status(&self, key: &[Value]) -> Option<GroupStatus> {
        self.partition(key).map.read().get(key).copied()
    }

    fn set_status(&self, key: &[Value], status: GroupStatus) {
        let part = self.partition(key);
        part.map.write().insert(key.to_vec(), status);
        let _guard = part.wait_lock.lock();
        part.changed.notify_all();
    }

    /// Number of keys ever inserted (diagnostics).
    pub fn key_count(&self) -> usize {
        self.partitions.iter().map(|p| p.map.read().len()).sum()
    }
}

impl Default for HashTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracker for HashTracker {
    /// Algorithm 3. `g` must be `Granule::Group`.
    fn try_claim(&self, g: &Granule, wip: &mut WorkList, skip: &mut WorkList) -> bool {
        let key = g.group().expect("hash tracker takes group keys");
        // Line 2: the worker already decided to migrate this group.
        if wip.contains(g) {
            return true;
        }
        // Line 3: the worker already found another worker migrating it.
        if skip.contains(g) {
            return false;
        }
        // Lines 4–10: optimistic check under the shared latch.
        match self.status(key) {
            Some(GroupStatus::InProgress) => {
                skip.push(g.clone()); // lines 5–6
                return false;
            }
            Some(GroupStatus::Migrated) => return false, // line 10
            Some(GroupStatus::Aborted) | None => {}
        }
        // Lines 11–13 (+ the GOTO 7 re-check): exclusive latch, re-check,
        // claim.
        let part = self.partition(key);
        let mut map = part.map.write();
        match map.get(key).copied() {
            Some(GroupStatus::InProgress) => {
                skip.push(g.clone());
                false
            }
            Some(GroupStatus::Migrated) => false,
            Some(GroupStatus::Aborted) | None => {
                // Line 8 / line 11 insert: acquire the group lock.
                map.insert(key.to_vec(), GroupStatus::InProgress);
                wip.push(g.clone()); // lines 9 / 13
                true
            }
        }
    }

    fn mark_migrated(&self, granules: &[Granule]) {
        for g in granules {
            let key = g.group().expect("hash tracker takes group keys");
            debug_assert_eq!(self.status(key), Some(GroupStatus::InProgress));
            self.set_status(key, GroupStatus::Migrated);
            self.migrated.fetch_add(1, Ordering::AcqRel);
        }
    }

    fn reset_aborted(&self, granules: &[Granule]) {
        for g in granules {
            let key = g.group().expect("hash tracker takes group keys");
            self.set_status(key, GroupStatus::Aborted);
        }
    }

    fn state(&self, g: &Granule) -> GranuleState {
        let key = g.group().expect("hash tracker takes group keys");
        match self.status(key) {
            None | Some(GroupStatus::Aborted) => GranuleState::NotStarted,
            Some(GroupStatus::InProgress) => GranuleState::InProgress,
            Some(GroupStatus::Migrated) => GranuleState::Migrated,
        }
    }

    fn wait_not_in_progress(&self, g: &Granule, timeout: Duration) -> GranuleState {
        let key = g.group().expect("hash tracker takes group keys");
        let deadline = Instant::now() + timeout;
        let part = self.partition(key);
        loop {
            let state = self.state(g);
            if state != GranuleState::InProgress {
                return state;
            }
            let mut guard = part.wait_lock.lock();
            let state = self.state(g);
            if state != GranuleState::InProgress {
                return state;
            }
            if part.changed.wait_until(&mut guard, deadline).timed_out() {
                return self.state(g);
            }
        }
    }

    fn mark_migrated_direct(&self, g: &Granule) -> bool {
        let key = g.group().expect("hash tracker takes group keys");
        let part = self.partition(key);
        let changed = {
            let mut map = part.map.write();
            !matches!(
                map.insert(key.to_vec(), GroupStatus::Migrated),
                Some(GroupStatus::Migrated)
            )
        };
        if changed {
            self.migrated.fetch_add(1, Ordering::AcqRel);
            let _guard = part.wait_lock.lock();
            part.changed.notify_all();
        }
        changed
    }

    fn migrated_count(&self) -> u64 {
        self.migrated.load(Ordering::Acquire)
    }

    fn total_granules(&self) -> u64 {
        self.key_count() as u64
    }
}

impl std::fmt::Debug for HashTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashTracker")
            .field("keys", &self.key_count())
            .field("migrated", &self.migrated_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn g(k: i64) -> Granule {
        Granule::Group(vec![Value::Int(k)])
    }

    #[test]
    fn claim_and_migrate_cycle() {
        let t = HashTracker::new();
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        assert!(t.try_claim(&g(1), &mut wip, &mut skip));
        assert_eq!(t.state(&g(1)), GranuleState::InProgress);
        t.mark_migrated(wip.items());
        assert_eq!(t.state(&g(1)), GranuleState::Migrated);
        assert_eq!(t.migrated_count(), 1);
        // Re-claim of a migrated group: false, nothing appended.
        let (mut wip2, mut skip2) = (WorkList::new(), WorkList::new());
        assert!(!t.try_claim(&g(1), &mut wip2, &mut skip2));
        assert!(wip2.is_empty() && skip2.is_empty());
    }

    #[test]
    fn wip_membership_returns_true_for_same_worker() {
        // Algorithm 3 line 2: a second tuple of the same group in the same
        // worker must also be migrated by it.
        let t = HashTracker::new();
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        assert!(t.try_claim(&g(1), &mut wip, &mut skip));
        assert!(t.try_claim(&g(1), &mut wip, &mut skip));
        assert_eq!(wip.len(), 1, "claimed once, migrate-eligible twice");
    }

    #[test]
    fn skip_membership_returns_false_without_requery() {
        let t = HashTracker::new();
        let (mut wip_other, mut skip_other) = (WorkList::new(), WorkList::new());
        t.try_claim(&g(1), &mut wip_other, &mut skip_other);
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        assert!(!t.try_claim(&g(1), &mut wip, &mut skip));
        assert_eq!(skip.len(), 1);
        // Line 3: the second check on the same worker consults SKIP only.
        assert!(!t.try_claim(&g(1), &mut wip, &mut skip));
        assert_eq!(skip.len(), 1, "not appended twice");
    }

    #[test]
    fn aborted_group_is_reclaimable() {
        // Algorithm 3 lines 7–9: an aborted group is claimed by updating
        // the existing entry.
        let t = HashTracker::new();
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        t.try_claim(&g(1), &mut wip, &mut skip);
        t.reset_aborted(wip.items());
        assert_eq!(t.state(&g(1)), GranuleState::NotStarted);
        let (mut wip2, mut skip2) = (WorkList::new(), WorkList::new());
        assert!(t.try_claim(&g(1), &mut wip2, &mut skip2));
        assert_eq!(t.key_count(), 1, "same entry reused");
    }

    #[test]
    fn composite_group_keys() {
        let t = HashTracker::new();
        let a = Granule::Group(vec![Value::Int(1), Value::text("x")]);
        let b = Granule::Group(vec![Value::Int(1), Value::text("y")]);
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        assert!(t.try_claim(&a, &mut wip, &mut skip));
        assert!(t.try_claim(&b, &mut wip, &mut skip));
        assert_eq!(wip.len(), 2);
    }

    #[test]
    fn wait_unblocks_on_abort() {
        let t = Arc::new(HashTracker::new());
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        t.try_claim(&g(1), &mut wip, &mut skip);
        let t2 = Arc::clone(&t);
        let waiter =
            std::thread::spawn(move || t2.wait_not_in_progress(&g(1), Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        t.reset_aborted(wip.items());
        assert_eq!(waiter.join().unwrap(), GranuleState::NotStarted);
    }

    #[test]
    fn exactly_once_under_contention() {
        let t = Arc::new(HashTracker::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
                for k in 0..500 {
                    t.try_claim(&g(k), &mut wip, &mut skip);
                }
                t.mark_migrated(wip.items());
                wip.len()
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 500);
        assert_eq!(t.migrated_count(), 500);
    }

    #[test]
    fn abort_storm_still_converges() {
        // Workers claim, abort half the time, retry: every group must end
        // Migrated with no duplicates.
        let t = Arc::new(HashTracker::new());
        let migrations = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for w in 0..8u64 {
            let t = Arc::clone(&t);
            let migrations = Arc::clone(&migrations);
            handles.push(std::thread::spawn(move || {
                let mut rng = w + 1;
                loop {
                    let mut pending: Vec<i64> = (0..200)
                        .filter(|k| t.state(&g(*k)) != GranuleState::Migrated)
                        .collect();
                    if pending.is_empty() {
                        break;
                    }
                    pending.truncate(20);
                    let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
                    for k in &pending {
                        t.try_claim(&g(*k), &mut wip, &mut skip);
                    }
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if rng & 1 == 0 {
                        t.reset_aborted(wip.items()); // simulated txn abort
                    } else {
                        migrations.fetch_add(wip.len() as u64, Ordering::Relaxed);
                        t.mark_migrated(wip.items());
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.migrated_count(), 200);
        assert_eq!(
            migrations.load(Ordering::Relaxed),
            200,
            "no double migration"
        );
    }
}
