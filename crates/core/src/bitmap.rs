//! The bitmap migration tracker (paper §3.3, Algorithm 2).
//!
//! Two bits per granule — `[lock-bit, migrate-bit]` in adjacent positions
//! of the same word, so both are read with a single memory access:
//!
//! | bits | meaning |
//! |------|---------|
//! | `00` | not yet migrated, unclaimed |
//! | `10` | in progress (a worker holds the migration lock) |
//! | `01` | migrated |
//! | `11` | **never occurs** (debug-asserted) |
//!
//! The bitmap is split into fixed-size **partitions**, each protected by
//! its own read–write latch, "to reduce cross-worker latch contention"
//! (§3.3). Algorithm 2's structure is kept exactly: an optimistic check
//! under the read latch (lines 1–4), then the exclusive latch and a
//! re-check before setting the lock bit (lines 5–16).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use crate::granule::{Granule, GranuleState, Tracker, WorkList};

/// Granules per partition (a power of two; 4096 granules = 128 words).
const PART_GRANULES: u64 = 4096;
const BITS_PER_GRANULE: u64 = 2;
const GRANULES_PER_WORD: u64 = 64 / BITS_PER_GRANULE;

struct Partition {
    words: RwLock<Vec<u64>>,
    /// Waiters blocked on an in-progress granule in this partition.
    wait_lock: Mutex<()>,
    changed: Condvar,
}

/// Bitmap tracker for 1:1 and 1:n migrations.
///
/// `granule_size` rows map onto one granule (1 = tuple granularity; larger
/// values give the page-granularity mode of §4.4.3 — the caller maps row
/// ordinals to granule ordinals by division, see
/// [`BitmapTracker::granule_of_ordinal`]).
pub struct BitmapTracker {
    partitions: Vec<Partition>,
    capacity: u64,
    granule_size: u64,
    migrated: AtomicU64,
}

impl BitmapTracker {
    /// A tracker for `row_capacity` rows at `granule_size` rows/granule.
    pub fn new(row_capacity: u64, granule_size: u64) -> Self {
        assert!(granule_size > 0);
        let capacity = row_capacity.div_ceil(granule_size);
        let nparts = capacity.div_ceil(PART_GRANULES).max(1);
        let partitions = (0..nparts)
            .map(|p| {
                let in_part = (capacity - p * PART_GRANULES).min(PART_GRANULES);
                let words = in_part.div_ceil(GRANULES_PER_WORD) as usize;
                Partition {
                    words: RwLock::new(vec![0u64; words]),
                    wait_lock: Mutex::new(()),
                    changed: Condvar::new(),
                }
            })
            .collect();
        BitmapTracker {
            partitions,
            capacity,
            granule_size,
            migrated: AtomicU64::new(0),
        }
    }

    /// Number of granules tracked.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Rows per granule.
    pub fn granule_size(&self) -> u64 {
        self.granule_size
    }

    /// Maps a row ordinal (dense `RowId` position) to its granule ordinal.
    pub fn granule_of_ordinal(&self, row_ordinal: u64) -> u64 {
        row_ordinal / self.granule_size
    }

    /// The row-ordinal range `[start, end)` covered by a granule.
    pub fn rows_of_granule(&self, granule: u64) -> std::ops::Range<u64> {
        let start = granule * self.granule_size;
        start..(start + self.granule_size)
    }

    /// True when every granule is migrated.
    pub fn is_complete(&self) -> bool {
        self.migrated.load(Ordering::Acquire) >= self.capacity
    }

    #[inline]
    fn locate(&self, g: u64) -> (usize, usize, u32) {
        debug_assert!(
            g < self.capacity,
            "granule {g} out of range {}",
            self.capacity
        );
        let part = (g / PART_GRANULES) as usize;
        let within = g % PART_GRANULES;
        let word = (within / GRANULES_PER_WORD) as usize;
        let shift = ((within % GRANULES_PER_WORD) * BITS_PER_GRANULE) as u32;
        (part, word, shift)
    }

    #[inline]
    fn decode(bits: u64) -> GranuleState {
        // bit layout within the pair: bit0 = lock, bit1 = migrate.
        match bits & 0b11 {
            0b00 => GranuleState::NotStarted,
            0b01 => GranuleState::InProgress, // lock bit set
            0b10 => GranuleState::Migrated,   // migrate bit set
            _ => {
                debug_assert!(false, "bitmap state [1 1] must never occur");
                GranuleState::Migrated
            }
        }
    }

    const LOCK: u64 = 0b01;
    const MIGRATE: u64 = 0b10;

    fn read_state(&self, g: u64) -> GranuleState {
        let (p, w, s) = self.locate(g);
        let words = self.partitions[p].words.read();
        Self::decode(words[w] >> s)
    }

    fn set_bits(&self, g: u64, bits: u64) {
        let (p, w, s) = self.locate(g);
        let part = &self.partitions[p];
        {
            let mut words = part.words.write();
            words[w] = (words[w] & !(0b11 << s)) | (bits << s);
        }
        let _guard = part.wait_lock.lock();
        part.changed.notify_all();
    }
}

impl Tracker for BitmapTracker {
    /// Algorithm 2, line by line. `g` must be `Granule::Ordinal`.
    fn try_claim(&self, g: &Granule, wip: &mut WorkList, skip: &mut WorkList) -> bool {
        let ordinal = g.ordinal().expect("bitmap tracker takes ordinals");
        // Lines 1–4: optimistic check under the shared latch.
        match self.read_state(ordinal) {
            GranuleState::Migrated => return false, // line 17
            GranuleState::InProgress => {
                skip.push(g.clone()); // lines 3–4
                return false;
            }
            GranuleState::NotStarted => {}
        }
        // Lines 5–16: exclusive latch, re-check, set lock bit.
        let (p, w, s) = self.locate(ordinal);
        let mut words = self.partitions[p].words.write();
        match Self::decode(words[w] >> s) {
            GranuleState::Migrated => false, // line 16 + 17
            GranuleState::InProgress => {
                skip.push(g.clone()); // lines 13–15
                false
            }
            GranuleState::NotStarted => {
                words[w] |= Self::LOCK << s; // line 8
                wip.push(g.clone()); // line 10
                true // line 11
            }
        }
    }

    fn mark_migrated(&self, granules: &[Granule]) {
        for g in granules {
            let ordinal = g.ordinal().expect("bitmap tracker takes ordinals");
            debug_assert_eq!(
                self.read_state(ordinal),
                GranuleState::InProgress,
                "only claimed granules are marked migrated"
            );
            self.set_bits(ordinal, Self::MIGRATE);
            self.migrated.fetch_add(1, Ordering::AcqRel);
        }
    }

    fn reset_aborted(&self, granules: &[Granule]) {
        for g in granules {
            let ordinal = g.ordinal().expect("bitmap tracker takes ordinals");
            self.set_bits(ordinal, 0); // back to [0 0]
        }
    }

    fn state(&self, g: &Granule) -> GranuleState {
        self.read_state(g.ordinal().expect("bitmap tracker takes ordinals"))
    }

    fn wait_not_in_progress(&self, g: &Granule, timeout: Duration) -> GranuleState {
        let ordinal = g.ordinal().expect("bitmap tracker takes ordinals");
        let deadline = Instant::now() + timeout;
        let (p, _, _) = self.locate(ordinal);
        let part = &self.partitions[p];
        loop {
            let state = self.read_state(ordinal);
            if state != GranuleState::InProgress {
                return state;
            }
            let mut guard = part.wait_lock.lock();
            // Re-check under the wait lock to not miss a notify between the
            // read above and parking.
            let state = self.read_state(ordinal);
            if state != GranuleState::InProgress {
                return state;
            }
            if part.changed.wait_until(&mut guard, deadline).timed_out() {
                return self.read_state(ordinal);
            }
        }
    }

    fn mark_migrated_direct(&self, g: &Granule) -> bool {
        let ordinal = g.ordinal().expect("bitmap tracker takes ordinals");
        let (p, w, s) = self.locate(ordinal);
        let part = &self.partitions[p];
        let changed = {
            let mut words = part.words.write();
            if (words[w] >> s) & Self::MIGRATE != 0 {
                false
            } else {
                words[w] = (words[w] & !(0b11 << s)) | (Self::MIGRATE << s);
                true
            }
        };
        if changed {
            self.migrated.fetch_add(1, Ordering::AcqRel);
            let _guard = part.wait_lock.lock();
            part.changed.notify_all();
        }
        changed
    }

    fn migrated_count(&self) -> u64 {
        self.migrated.load(Ordering::Acquire)
    }

    fn total_granules(&self) -> u64 {
        self.capacity
    }
}

impl std::fmt::Debug for BitmapTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BitmapTracker")
            .field("capacity", &self.capacity)
            .field("granule_size", &self.granule_size)
            .field("migrated", &self.migrated_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn g(o: u64) -> Granule {
        Granule::Ordinal(o)
    }

    #[test]
    fn claim_marks_in_progress() {
        let t = BitmapTracker::new(100, 1);
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        assert!(t.try_claim(&g(5), &mut wip, &mut skip));
        assert_eq!(wip.items(), &[g(5)]);
        assert!(skip.is_empty());
        assert_eq!(t.state(&g(5)), GranuleState::InProgress);
        assert_eq!(t.state(&g(6)), GranuleState::NotStarted);
    }

    #[test]
    fn second_claim_skips() {
        let t = BitmapTracker::new(100, 1);
        let (mut wip1, mut skip1) = (WorkList::new(), WorkList::new());
        assert!(t.try_claim(&g(5), &mut wip1, &mut skip1));
        // Another worker: ends up in SKIP.
        let (mut wip2, mut skip2) = (WorkList::new(), WorkList::new());
        assert!(!t.try_claim(&g(5), &mut wip2, &mut skip2));
        assert!(wip2.is_empty());
        assert_eq!(skip2.items(), &[g(5)]);
    }

    #[test]
    fn migrated_claim_returns_false_without_skip() {
        let t = BitmapTracker::new(100, 1);
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        t.try_claim(&g(5), &mut wip, &mut skip);
        t.mark_migrated(wip.items());
        assert_eq!(t.state(&g(5)), GranuleState::Migrated);
        assert_eq!(t.migrated_count(), 1);
        let (mut wip2, mut skip2) = (WorkList::new(), WorkList::new());
        assert!(!t.try_claim(&g(5), &mut wip2, &mut skip2));
        assert!(wip2.is_empty() && skip2.is_empty());
    }

    #[test]
    fn reset_makes_claimable_again() {
        let t = BitmapTracker::new(100, 1);
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        t.try_claim(&g(7), &mut wip, &mut skip);
        t.reset_aborted(wip.items());
        assert_eq!(t.state(&g(7)), GranuleState::NotStarted);
        let (mut wip2, mut skip2) = (WorkList::new(), WorkList::new());
        assert!(t.try_claim(&g(7), &mut wip2, &mut skip2));
    }

    #[test]
    fn granule_size_maps_rows_to_pages() {
        let t = BitmapTracker::new(1000, 64);
        assert_eq!(t.capacity(), 16); // ceil(1000/64)
        assert_eq!(t.granule_of_ordinal(0), 0);
        assert_eq!(t.granule_of_ordinal(63), 0);
        assert_eq!(t.granule_of_ordinal(64), 1);
        assert_eq!(t.rows_of_granule(1), 64..128);
    }

    #[test]
    fn completion_detection() {
        let t = BitmapTracker::new(10, 1);
        assert!(!t.is_complete());
        for o in 0..10 {
            let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
            t.try_claim(&g(o), &mut wip, &mut skip);
            t.mark_migrated(wip.items());
        }
        assert!(t.is_complete());
    }

    #[test]
    fn spans_partitions() {
        let cap = PART_GRANULES * 3 + 17;
        let t = BitmapTracker::new(cap, 1);
        for o in [0, PART_GRANULES - 1, PART_GRANULES, cap - 1] {
            let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
            assert!(t.try_claim(&g(o), &mut wip, &mut skip), "granule {o}");
            t.mark_migrated(wip.items());
            assert_eq!(t.state(&g(o)), GranuleState::Migrated);
        }
        assert_eq!(t.migrated_count(), 4);
    }

    #[test]
    fn wait_unblocks_on_migrate_and_on_reset() {
        for reset in [false, true] {
            let t = Arc::new(BitmapTracker::new(10, 1));
            let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
            t.try_claim(&g(3), &mut wip, &mut skip);
            let t2 = Arc::clone(&t);
            let waiter =
                std::thread::spawn(move || t2.wait_not_in_progress(&g(3), Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(30));
            if reset {
                t.reset_aborted(wip.items());
            } else {
                t.mark_migrated(wip.items());
            }
            let state = waiter.join().unwrap();
            if reset {
                assert_eq!(state, GranuleState::NotStarted);
            } else {
                assert_eq!(state, GranuleState::Migrated);
            }
        }
    }

    #[test]
    fn wait_times_out_while_held() {
        let t = BitmapTracker::new(10, 1);
        let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
        t.try_claim(&g(3), &mut wip, &mut skip);
        let state = t.wait_not_in_progress(&g(3), Duration::from_millis(30));
        assert_eq!(state, GranuleState::InProgress);
    }

    #[test]
    fn exactly_once_under_contention() {
        // 8 workers race to claim all 2000 granules; each granule is
        // claimed by exactly one worker.
        let t = Arc::new(BitmapTracker::new(2000, 1));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let (mut wip, mut skip) = (WorkList::new(), WorkList::new());
                for o in 0..2000 {
                    t.try_claim(&g(o), &mut wip, &mut skip);
                }
                t.mark_migrated(wip.items());
                wip.len()
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 2000, "every granule claimed exactly once");
        assert_eq!(t.migrated_count(), 2000);
        assert!(t.is_complete());
    }
}
