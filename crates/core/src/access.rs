//! The client-facing access interface shared by BullFrog and the
//! baselines.
//!
//! Workload drivers (TPC-C, the examples, the benches) speak to the
//! database exclusively through [`ClientAccess`]. Each evolution strategy —
//! lazy BullFrog, eager, multi-step, or no migration at all — implements
//! the trait and interposes whatever its approach requires (lazy migration
//! before reads, dual writes, blocking, rejection of retired tables).
//! [`ClientAccess::version`] tells the driver which schema generation its
//! transactions should be written against *right now*: the big flip moves
//! it to `New` instantly for BullFrog and eager, while multi-step keeps it
//! at `Old` until the background copy has caught up.

use bullfrog_common::{Result, Row, RowId, Value};
use bullfrog_engine::exec::{ExecOptions, QueryOutput};
use bullfrog_engine::{Database, LockPolicy};
use bullfrog_query::{Expr, SelectSpec};
use bullfrog_txn::Transaction;
use std::sync::Arc;

/// Which schema generation clients should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemaVersion {
    /// Pre-migration schema.
    Old,
    /// Post-migration schema.
    New,
}

/// Uniform client DML surface. All methods are transactional: the caller
/// owns the [`Transaction`] and commits/aborts through the underlying
/// [`Database`].
pub trait ClientAccess: Send + Sync {
    /// The underlying database (for `begin`/`commit`/`abort` and DDL).
    fn db(&self) -> &Arc<Database>;

    /// Which schema version clients should currently submit against.
    fn version(&self) -> SchemaVersion;

    /// Predicate select.
    fn select(
        &self,
        txn: &mut Transaction,
        table: &str,
        predicate: Option<&Expr>,
        policy: LockPolicy,
    ) -> Result<Vec<(RowId, Row)>>;

    /// Primary-key point read.
    fn get_by_pk(
        &self,
        txn: &mut Transaction,
        table: &str,
        key: &[Value],
        policy: LockPolicy,
    ) -> Result<Option<(RowId, Row)>>;

    /// Insert.
    fn insert(&self, txn: &mut Transaction, table: &str, row: Row) -> Result<RowId>;

    /// Update by row id.
    fn update(&self, txn: &mut Transaction, table: &str, rid: RowId, row: Row) -> Result<()>;

    /// Delete by row id.
    fn delete(&self, txn: &mut Transaction, table: &str, rid: RowId) -> Result<Row>;

    /// Read-only spec execution (joins/aggregates, e.g. StockLevel).
    fn execute_spec(
        &self,
        txn: &mut Transaction,
        spec: &SelectSpec,
        opts: &ExecOptions,
    ) -> Result<QueryOutput>;
}

/// Direct passthrough to the engine — the "no migration" control, also
/// used by workloads before any migration is submitted.
pub struct Passthrough {
    db: Arc<Database>,
    version: SchemaVersion,
}

impl Passthrough {
    /// A passthrough reporting the old schema.
    pub fn new(db: Arc<Database>) -> Self {
        Passthrough {
            db,
            version: SchemaVersion::Old,
        }
    }

    /// A passthrough reporting the new schema (for post-migration runs).
    pub fn new_schema(db: Arc<Database>) -> Self {
        Passthrough {
            db,
            version: SchemaVersion::New,
        }
    }
}

impl ClientAccess for Passthrough {
    fn db(&self) -> &Arc<Database> {
        &self.db
    }

    fn version(&self) -> SchemaVersion {
        self.version
    }

    fn select(
        &self,
        txn: &mut Transaction,
        table: &str,
        predicate: Option<&Expr>,
        policy: LockPolicy,
    ) -> Result<Vec<(RowId, Row)>> {
        self.db.select(txn, table, predicate, policy)
    }

    fn get_by_pk(
        &self,
        txn: &mut Transaction,
        table: &str,
        key: &[Value],
        policy: LockPolicy,
    ) -> Result<Option<(RowId, Row)>> {
        self.db.get_by_pk(txn, table, key, policy)
    }

    fn insert(&self, txn: &mut Transaction, table: &str, row: Row) -> Result<RowId> {
        self.db.insert(txn, table, row)
    }

    fn update(&self, txn: &mut Transaction, table: &str, rid: RowId, row: Row) -> Result<()> {
        self.db.update(txn, table, rid, row)
    }

    fn delete(&self, txn: &mut Transaction, table: &str, rid: RowId) -> Result<Row> {
        self.db.delete(txn, table, rid)
    }

    fn execute_spec(
        &self,
        txn: &mut Transaction,
        spec: &SelectSpec,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        bullfrog_engine::exec::execute_spec(&self.db, txn, spec, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::{row, ColumnDef, DataType, TableSchema};

    #[test]
    fn passthrough_delegates() {
        let db = Arc::new(Database::new());
        db.create_table(
            TableSchema::new("t", vec![ColumnDef::new("id", DataType::Int)])
                .with_primary_key(&["id"]),
        )
        .unwrap();
        let access = Passthrough::new(Arc::clone(&db));
        assert_eq!(access.version(), SchemaVersion::Old);
        let mut txn = db.begin();
        let rid = access.insert(&mut txn, "t", row![1]).unwrap();
        let got = access
            .get_by_pk(&mut txn, "t", &[Value::Int(1)], LockPolicy::Shared)
            .unwrap();
        assert_eq!(got, Some((rid, row![1])));
        access.update(&mut txn, "t", rid, row![2]).unwrap();
        let all = access
            .select(&mut txn, "t", None, LockPolicy::Shared)
            .unwrap();
        assert_eq!(all, vec![(rid, row![2])]);
        access.delete(&mut txn, "t", rid).unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(Passthrough::new_schema(db).version(), SchemaVersion::New);
    }
}
