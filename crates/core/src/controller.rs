//! The BullFrog controller: logical flip + lazy migration interposition.
//!
//! [`Bullfrog::submit_migration`] performs the paper's §2.1 protocol:
//!
//! 1. validate & classify the plan (optionally running the §2.4
//!    synchronous validation);
//! 2. create the new (empty) output tables;
//! 3. **logically switch**: the new schema is immediately active, and for
//!    big-flip plans every request that touches the old tables is rejected
//!    with [`Error::SchemaRetired`];
//! 4. allocate the trackers and (optionally) schedule background
//!    migration threads (§2.2).
//!
//! Afterwards, every client operation that reaches a new-schema table goes
//! through `ensure_migrated`: the request predicate is transposed onto the
//! old tables, the candidate granules are computed, and Algorithm 1 runs
//! to completion **before** the client's own operation executes on the new
//! schema. Inserts widen the migrated scope to whatever the new table's
//! uniqueness and foreign-key constraints need checked (§2.1, §4.5).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{Error, Result, Row, RowId, TxnId, Value};
use bullfrog_engine::exec::{ExecOptions, QueryOutput};
use bullfrog_engine::{Database, LockPolicy};
use bullfrog_query::{conjoin, conjuncts, Expr, SelectSpec};
use bullfrog_txn::Transaction;
use parking_lot::{Mutex, RwLock};

use crate::access::{ClientAccess, SchemaVersion};
use crate::background::BackgroundConfig;
use crate::bitmap::BitmapTracker;
use crate::granule::Tracker;
use crate::hashmap::HashTracker;
use crate::migrate::{
    candidates_for, migrate_candidates, DedupMode, MigrateOptions, StatementRuntime,
};
use crate::plan::{MigrationPlan, Tracking};
use crate::stats::MigrationStats;

/// Controller configuration.
#[derive(Clone)]
pub struct BullfrogConfig {
    /// Duplicate-migration detection mode (§3.7).
    pub dedup: DedupMode,
    /// Background migration settings (§2.2).
    pub background: BackgroundConfig,
    /// How long a worker blocks on another worker's in-progress granule
    /// before rechecking.
    pub wait_timeout: Duration,
    /// Abort-injection hook for tests (fires in migration transactions).
    pub failpoint: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
}

impl Default for BullfrogConfig {
    fn default() -> Self {
        BullfrogConfig {
            dedup: DedupMode::Tracker,
            background: BackgroundConfig::default(),
            wait_timeout: Duration::from_millis(10),
            failpoint: None,
        }
    }
}

impl std::fmt::Debug for BullfrogConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BullfrogConfig")
            .field("dedup", &self.dedup)
            .field("background", &self.background)
            .field("wait_timeout", &self.wait_timeout)
            .field("failpoint", &self.failpoint.is_some())
            .finish()
    }
}

/// A live migration: runtimes plus lookup structures.
pub struct ActiveMigration {
    /// Plan name.
    pub name: String,
    /// One runtime per statement.
    pub runtimes: Vec<Arc<StatementRuntime>>,
    /// Output table name → runtime index.
    by_output: HashMap<String, usize>,
    /// Old input table names.
    pub inputs: HashSet<String>,
    /// Shared counters.
    pub stats: Arc<MigrationStats>,
    /// Whether writes to the input tables are rejected while migrating.
    pub frozen_inputs: bool,
    /// Per-statement completion flags.
    complete: Vec<AtomicBool>,
    /// Gate opened once the flip-time writer quiesce finishes (snapshot
    /// engine mode). Granule reads run lock-free at their own snapshots,
    /// so they must not start while a pre-flip writer could still commit
    /// an input-table write behind them; 2PL needs no gate (its S locks
    /// queue behind any straggler's X lock) and starts open.
    ready: AtomicBool,
}

impl ActiveMigration {
    /// The runtime producing `output_table`, if any.
    pub fn runtime_for(&self, output_table: &str) -> Option<&Arc<StatementRuntime>> {
        self.by_output.get(output_table).map(|i| &self.runtimes[*i])
    }

    /// Marks a statement complete.
    pub fn set_complete(&self, idx: usize) {
        self.complete[idx].store(true, Ordering::Release);
    }

    /// True when the statement's migration has fully finished.
    pub fn is_statement_complete(&self, idx: usize) -> bool {
        self.complete[idx].load(Ordering::Acquire)
    }

    /// True when every statement finished **and** no migration transaction
    /// is still in flight. The quiescence half matters in ON-CONFLICT mode,
    /// where a redundant worker may still hold uncommitted duplicate
    /// inserts after another worker marked the last granule migrated;
    /// finalize and input-unfreeze also key off this, so old tables are
    /// never dropped under a straggler transaction.
    pub fn is_complete(&self) -> bool {
        (0..self.runtimes.len()).all(|i| self.is_statement_complete(i)) && self.quiescent()
    }

    /// True when no migration transaction is currently in flight.
    fn quiescent(&self) -> bool {
        self.runtimes
            .iter()
            .all(|rt| rt.in_flight.load(Ordering::SeqCst) == 0)
    }

    /// Blocks until the flip-time quiesce gate opens (no-op under 2PL,
    /// where the gate starts open).
    pub fn wait_ready(&self) {
        while !self.ready.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

impl std::fmt::Debug for ActiveMigration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveMigration")
            .field("name", &self.name)
            .field("statements", &self.runtimes.len())
            .field("complete", &self.is_complete())
            .finish()
    }
}

/// Per-statement `(row_capacity, granule_size)` bitmap tracker
/// dimensions; `(0, 0)` entries mean "hash-tracked, nothing to size".
pub type TrackerCaps = Vec<(u64, u64)>;

/// Controls for a non-standard migration submission, used by replication
/// mirrors ([`Bullfrog::submit_migration_with`]). The default mirrors
/// [`Bullfrog::submit_migration`] exactly.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Overrides `config.background.enabled` for this migration. Replicas
    /// pass `Some(false)`: their granule state comes from the primary's
    /// log, never from local migration work.
    pub background: Option<bool>,
    /// Per-statement bitmap dimensions to use instead of deriving them
    /// from the local heap.
    pub tracker_caps: Option<TrackerCaps>,
    /// Skips §2.4 eager validation even when the plan requests it (the
    /// primary already validated; re-running against a lagging replica
    /// heap could spuriously fail).
    pub skip_validation: bool,
}

/// Point-in-time view of an active migration's progress, as reported by
/// [`Bullfrog::progress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationProgress {
    /// Plan name.
    pub name: String,
    /// Statements in the plan.
    pub statements: u64,
    /// Statements whose physical migration has finished.
    pub statements_complete: u64,
    /// Whether every statement finished.
    pub complete: bool,
    /// Whether the old input tables reject writes while migrating.
    pub frozen_inputs: bool,
    /// Granules marked migrated, summed over every statement's tracker.
    pub granules_done: u64,
    /// Total granules across every tracker (hash-tracked statements
    /// report groups observed so far, converging on the true total).
    pub granules_total: u64,
    /// Counter snapshot.
    pub stats: crate::stats::MigrationStatsSnapshot,
}

/// The BullFrog database: an engine plus lazy schema evolution.
pub struct Bullfrog {
    db: Arc<Database>,
    config: BullfrogConfig,
    active: RwLock<Option<Arc<ActiveMigration>>>,
    retired: RwLock<HashSet<String>>,
    flipped: AtomicBool,
    shutdown: Arc<AtomicBool>,
    bg_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Bullfrog {
    /// Wraps a database with default configuration.
    pub fn new(db: Arc<Database>) -> Self {
        Self::with_config(db, BullfrogConfig::default())
    }

    /// Wraps a database with the given configuration.
    pub fn with_config(db: Arc<Database>, config: BullfrogConfig) -> Self {
        Bullfrog {
            db,
            config,
            active: RwLock::new(None),
            retired: RwLock::new(HashSet::new()),
            flipped: AtomicBool::new(false),
            shutdown: Arc::new(AtomicBool::new(false)),
            bg_threads: Mutex::new(Vec::new()),
        }
    }

    /// The controller configuration.
    pub fn config(&self) -> &BullfrogConfig {
        &self.config
    }

    /// The active migration, if one is running.
    pub fn active(&self) -> Option<Arc<ActiveMigration>> {
        self.active.read().clone()
    }

    /// Point-in-time progress of the active migration (`None` when no
    /// migration is live). This is what the server's `STATUS` opcode
    /// reports to remote clients.
    pub fn progress(&self) -> Option<MigrationProgress> {
        let active = self.active()?;
        Some(MigrationProgress {
            name: active.name.clone(),
            statements: active.runtimes.len() as u64,
            statements_complete: (0..active.runtimes.len())
                .filter(|&i| active.is_statement_complete(i))
                .count() as u64,
            complete: active.is_complete(),
            frozen_inputs: active.frozen_inputs,
            granules_done: active
                .runtimes
                .iter()
                .map(|rt| rt.tracker.migrated_count())
                .sum(),
            granules_total: active
                .runtimes
                .iter()
                .map(|rt| rt.tracker.total_granules())
                .sum(),
            stats: active.stats.snapshot(),
        })
    }

    /// Submits a migration: validates, creates output tables, flips the
    /// logical schema, and (per config) schedules background migration.
    /// Returns as soon as the flip is done — O(statements), never O(data).
    pub fn submit_migration(&self, plan: MigrationPlan) -> Result<Arc<ActiveMigration>> {
        self.submit_migration_with(plan, SubmitOptions::default())
            .map(|(m, _)| m)
    }

    /// As [`Bullfrog::submit_migration`], with replication-mirror controls,
    /// returning the per-statement bitmap tracker dimensions actually used
    /// (`(row_capacity, granule_size)`; `(0, 0)` for hash-tracked
    /// statements). A primary journals these so its replicas allocate
    /// identically-shaped trackers: the replica's heap bound at apply time
    /// can lag the primary's at submit time, and a smaller bitmap would
    /// panic on out-of-range granule marks shipped in the log.
    pub fn submit_migration_with(
        &self,
        mut plan: MigrationPlan,
        opts: SubmitOptions,
    ) -> Result<(Arc<ActiveMigration>, TrackerCaps)> {
        if self.active.read().is_some() {
            return Err(Error::InvalidMigration(
                "a migration is already in progress".into(),
            ));
        }
        let obs = Arc::clone(self.db.obs());
        let flip_started = std::time::Instant::now();
        let flip_t0 = obs.now_us();
        plan.resolve(&self.db)?;

        if plan.validate_eagerly && !opts.skip_validation {
            self.validate_plan(&plan)?;
        }

        // ON CONFLICT mode requires a unique constraint on every output
        // (paper §3.7's applicability condition).
        if self.config.dedup == DedupMode::OnConflict {
            for s in &plan.statements {
                if s.output.primary_key.is_empty() && s.output.uniques.is_empty() {
                    return Err(Error::InvalidMigration(format!(
                        "ON CONFLICT dedup requires a unique constraint on {}",
                        s.output.name
                    )));
                }
            }
        }

        // Create the (empty) output tables.
        for s in &plan.statements {
            self.db.create_table(s.output.clone())?;
        }

        // Allocate trackers.
        let stats = Arc::new(MigrationStats::new());
        let mut runtimes = Vec::with_capacity(plan.statements.len());
        let mut caps = Vec::with_capacity(plan.statements.len());
        for (i, s) in plan.statements.iter().enumerate() {
            let tracker: Arc<dyn Tracker> = match s.tracking() {
                Tracking::Bitmap {
                    driving_alias,
                    granule_rows,
                } => {
                    let (cap, gran) = match opts.tracker_caps.as_ref().and_then(|c| c.get(i)) {
                        Some(&(cap, gran)) if cap > 0 => (cap, gran),
                        _ => {
                            let table_name =
                                &s.spec.input(driving_alias).expect("resolved alias").table;
                            let cap = self.db.table(table_name)?.heap().ordinal_bound();
                            (cap.max(1), *granule_rows)
                        }
                    };
                    caps.push((cap, gran));
                    Arc::new(BitmapTracker::new(cap, gran))
                }
                Tracking::Hash { .. } | Tracking::PairHash { .. } => {
                    caps.push((0, 0));
                    Arc::new(HashTracker::new())
                }
            };
            runtimes.push(Arc::new(StatementRuntime {
                id: i as u32,
                stmt: s.clone(),
                tracker,
                stats: Arc::clone(&stats),
                in_flight: std::sync::atomic::AtomicU64::new(0),
            }));
        }

        let by_output = runtimes
            .iter()
            .enumerate()
            .map(|(i, rt)| (rt.stmt.output.name.clone(), i))
            .collect();
        let si = self.db.config().mode.is_snapshot();
        let migration = Arc::new(ActiveMigration {
            name: plan.name.clone(),
            complete: runtimes.iter().map(|_| AtomicBool::new(false)).collect(),
            by_output,
            inputs: plan.input_tables().into_iter().collect(),
            stats,
            frozen_inputs: plan.freeze_inputs,
            runtimes,
            ready: AtomicBool::new(!si),
        });

        // The logical switch: new schema live, old schema (big flip)
        // retired.
        if plan.big_flip {
            let mut retired = self.retired.write();
            for t in plan.input_tables() {
                retired.insert(t);
            }
        }
        *self.active.write() = Some(Arc::clone(&migration));
        self.flipped.store(true, Ordering::Release);

        // Snapshot mode: drain pre-flip writers before any granule work
        // starts. Granule reads run lock-free at their own snapshots, so a
        // transaction that wrote an input table before the flip and is
        // still uncommitted could commit *behind* a granule read and be
        // lost from the new schema. The flip above already makes new
        // input-table writes fail the frozen/retired checks (those
        // rejections also unwind any straggler blocked on this gate);
        // draining the rest closes the window. On timeout (a writer held a
        // write open pathologically long) we open the gate anyway — that
        // degrades to at-flip-race semantics rather than wedging the
        // migration forever.
        if si {
            let oracle = self.db.wal().oracle();
            let barrier = oracle.barrier_seq();
            let quiesce = obs.tracer().span("migrate.quiesce", barrier);
            oracle.quiesce_writers_before(barrier, Duration::from_secs(5));
            obs.histogram("migrate.quiesce_us").record(quiesce.finish());
            migration.ready.store(true, Ordering::Release);
        }

        // Background migration threads (§2.2).
        if opts.background.unwrap_or(self.config.background.enabled) {
            self.spawn_background_for(&migration);
        }
        obs.tracer().record(
            "migrate.flip",
            migration.runtimes.len() as u64,
            flip_t0,
            obs.now_us(),
        );
        obs.histogram("migrate.flip_us")
            .record_micros(flip_started.elapsed());
        Ok((migration, caps))
    }

    /// Spawns background migration workers for `migration` and tracks
    /// their join handles.
    fn spawn_background_for(&self, migration: &Arc<ActiveMigration>) {
        let mut bg_opts = self.migrate_options(true, migration.runtimes.clone(), None);
        bg_opts.cancel = Some(Arc::clone(&self.shutdown));
        let handles = crate::background::spawn_background(
            Arc::clone(&self.db),
            Arc::clone(migration),
            self.config.background.clone(),
            bg_opts,
            Arc::clone(&self.shutdown),
        );
        self.bg_threads.lock().extend(handles);
    }

    /// (Re)spawns background migration workers for the currently active
    /// migration, if any and if it is still incomplete. Recovery and
    /// replication promotion call this after rebuilding the tracker state:
    /// [`Bullfrog::submit_migration_with`] with `background: Some(false)`
    /// (the mirror path) deliberately skips the spawn, and a restored
    /// primary would otherwise never finish its migration without client
    /// traffic. Honors `config.background.enabled`; idempotent in the
    /// sense that extra workers cooperate harmlessly through the trackers,
    /// but callers should invoke it once per restore.
    pub fn respawn_background(&self) {
        if !self.config.background.enabled {
            return;
        }
        let Some(migration) = self.active() else {
            return;
        };
        if migration.is_complete() {
            return;
        }
        self.spawn_background_for(&migration);
    }

    /// §2.4 synchronous validation: evaluates every statement fully and
    /// checks the output rows against the new schema (types, NOT NULL,
    /// CHECK, and duplicate unique keys) without inserting anything.
    fn validate_plan(&self, plan: &MigrationPlan) -> Result<()> {
        for s in &plan.statements {
            let mut txn = self.db.begin();
            let result = bullfrog_engine::exec::execute_spec(
                &self.db,
                &mut txn,
                &s.spec,
                &ExecOptions::default(),
            );
            self.db.abort(&mut txn); // read-only; discard
            let out = result?;
            // Collect unique key sets.
            let mut unique_sets: Vec<(String, Vec<usize>, HashSet<Vec<Value>>)> = Vec::new();
            if !s.output.primary_key.is_empty() {
                unique_sets.push((
                    format!("{}_pkey", s.output.name),
                    s.output.pk_indices()?,
                    HashSet::new(),
                ));
            }
            for u in &s.output.uniques {
                unique_sets.push((
                    u.name.clone(),
                    s.output.col_indices(&u.columns)?,
                    HashSet::new(),
                ));
            }
            for row in &out.rows {
                s.output.validate_row(row)?;
                for (name, cols, seen) in &mut unique_sets {
                    if !seen.insert(row.key(cols)) {
                        return Err(Error::UniqueViolation {
                            table: s.output.name.clone(),
                            constraint: name.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn migrate_options(
        &self,
        background: bool,
        peers: Vec<Arc<StatementRuntime>>,
        parent: Option<TxnId>,
    ) -> MigrateOptions {
        MigrateOptions {
            dedup: self.config.dedup,
            wait_timeout: self.config.wait_timeout,
            failpoint: self.config.failpoint.clone(),
            background,
            peers,
            fk_depth: 0,
            parent,
            ..Default::default()
        }
    }

    /// Rejects access to retired (pre-flip) tables.
    fn check_not_retired(&self, table: &str) -> Result<()> {
        if self.retired.read().contains(table) {
            return Err(Error::SchemaRetired(table.to_owned()));
        }
        Ok(())
    }

    /// Lazily migrates everything a request with `pred` over
    /// `output_table` might touch. No-op when the table is not an output
    /// of the active migration or its statement already completed.
    pub fn ensure_migrated(&self, output_table: &str, pred: Option<&Expr>) -> Result<()> {
        self.ensure_migrated_as(output_table, pred, None)
    }

    /// As [`Bullfrog::ensure_migrated`], on behalf of client transaction
    /// `parent`: the migration transactions it spawns treat `parent`'s
    /// locks as compatible, so a transaction that wrote input rows itself
    /// (co-maintained plans keep inputs writable) can still lazily migrate
    /// the granules those rows belong to.
    fn ensure_migrated_as(
        &self,
        output_table: &str,
        pred: Option<&Expr>,
        parent: Option<TxnId>,
    ) -> Result<()> {
        let Some(active) = self.active() else {
            return Ok(());
        };
        let Some(idx) = active.by_output.get(output_table).copied() else {
            return Ok(());
        };
        if active.is_statement_complete(idx) {
            return Ok(());
        }
        active.wait_ready();
        let rt = &active.runtimes[idx];
        let candidates = candidates_for(&self.db, rt, pred)?;
        migrate_candidates(
            &self.db,
            rt,
            candidates,
            &self.migrate_options(false, active.runtimes.clone(), parent),
        )
    }

    /// Constraint-driven widening for an insert into `table` (§2.1, §4.5):
    /// before the insert's uniqueness and FK checks can be trusted, any
    /// old-schema data that could conflict or be referenced must be in the
    /// new schema.
    fn ensure_for_insert(&self, table: &str, row: &Row, parent: Option<TxnId>) -> Result<()> {
        let Some(active) = self.active() else {
            return Ok(());
        };
        let Some(rt) = active.runtime_for(table) else {
            return Ok(());
        };
        let schema = &rt.stmt.output;
        // Unique constraints: migrate rows sharing the key values.
        let mut key_sets: Vec<Vec<usize>> = Vec::new();
        if !schema.primary_key.is_empty() {
            key_sets.push(schema.pk_indices()?);
        }
        for u in &schema.uniques {
            key_sets.push(schema.col_indices(&u.columns)?);
        }
        for cols in key_sets {
            let pred = conjoin(
                cols.iter()
                    .map(|&i| {
                        Expr::column(schema.columns[i].name.clone()).eq(Expr::Lit(row[i].clone()))
                    })
                    .collect(),
            );
            self.ensure_migrated_as(table, pred.as_ref(), parent)?;
        }
        // FK constraints whose target is itself being migrated: the
        // referenced key must exist in the new schema before the check.
        for fk in &schema.foreign_keys {
            if active.runtime_for(&fk.ref_table).is_none() {
                continue;
            }
            let cols = schema.col_indices(&fk.columns)?;
            let key: Vec<Value> = row.key(&cols);
            if key.iter().any(Value::is_null) {
                continue;
            }
            let pred = conjoin(
                fk.ref_columns
                    .iter()
                    .zip(key)
                    .map(|(c, v)| Expr::column(c.clone()).eq(Expr::Lit(v)))
                    .collect(),
            );
            self.ensure_migrated_as(&fk.ref_table, pred.as_ref(), parent)?;
        }
        Ok(())
    }

    /// Writes to old-schema input tables are rejected while a
    /// backwards-compatible migration runs (lazy migration requires frozen
    /// inputs; big-flip plans retire them outright).
    fn check_not_frozen_input(&self, table: &str) -> Result<()> {
        if let Some(active) = self.active() {
            if active.frozen_inputs && !active.is_complete() && active.inputs.contains(table) {
                return Err(Error::SchemaRetired(format!(
                    "{table} is frozen while migration '{}' is in progress",
                    active.name
                )));
            }
        }
        Ok(())
    }

    /// True when the active migration (if any) has fully completed.
    pub fn migration_complete(&self) -> bool {
        match self.active() {
            None => true,
            Some(m) => m.is_complete(),
        }
    }

    /// Blocks until the migration completes or `timeout` elapses.
    pub fn wait_migration_complete(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.migration_complete() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.migration_complete()
    }

    /// Finishes a completed migration: drops the old tables (when
    /// `drop_old`) and clears the active slot. Errors when incomplete or
    /// when no migration is active.
    ///
    /// The per-statement completion flags are normally set by the
    /// background workers; when they are unset (e.g. background migration
    /// disabled and clients did all the work), this performs the
    /// authoritative check itself: every candidate granule of every
    /// statement must be migrated.
    pub fn finalize_migration(&self, drop_old: bool) -> Result<()> {
        self.finalize_inner(drop_old, false)
    }

    /// Finalizes without the completeness gate. A replication replica
    /// mirrors a primary's already-gated `FINALIZE MIGRATION`: granule
    /// records committed between the journal point and the finalize check
    /// may still sit in the unapplied tail, so the replica's local tracker
    /// can lag even though the primary proved completeness.
    pub fn finalize_migration_force(&self, drop_old: bool) -> Result<()> {
        self.finalize_inner(drop_old, true)
    }

    fn finalize_inner(&self, drop_old: bool, force: bool) -> Result<()> {
        let obs = Arc::clone(self.db.obs());
        let started = std::time::Instant::now();
        let t0 = obs.now_us();
        let Some(active) = self.active() else {
            // Forced (mirror) finalizes stay idempotent: a replica that
            // bootstrapped from a post-finalize snapshot has no active
            // migration when the journaled Finalize event replays.
            if force {
                return Ok(());
            }
            return Err(Error::InvalidMigration(
                "no active migration to finalize".into(),
            ));
        };
        if !force && !active.is_complete() {
            for (idx, rt) in active.runtimes.iter().enumerate() {
                if active.is_statement_complete(idx) {
                    continue;
                }
                let all = candidates_for(&self.db, rt, None)?;
                if all
                    .iter()
                    .all(|g| rt.tracker.state(g) == crate::granule::GranuleState::Migrated)
                {
                    active.set_complete(idx);
                }
            }
        }
        if !force && !active.is_complete() {
            return Err(Error::InvalidMigration(format!(
                "migration '{}' is not complete",
                active.name
            )));
        }
        if drop_old {
            for t in &active.inputs {
                let _ = self.db.drop_table(t);
            }
        }
        *self.active.write() = None;
        // Only a finalize that actually retired the migration records;
        // probes that error ("not complete") are drain-polling noise.
        obs.tracer()
            .record("migrate.finalize", u64::from(drop_old), t0, obs.now_us());
        obs.histogram("migrate.finalize_us")
            .record_micros(started.elapsed());
        Ok(())
    }

    /// Stops background threads (joins them).
    pub fn shutdown_background(&self) {
        self.shutdown.store(true, Ordering::Release);
        for h in self.bg_threads.lock().drain(..) {
            let _ = h.join();
        }
        self.shutdown.store(false, Ordering::Release);
    }
}

impl Drop for Bullfrog {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for h in self.bg_threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl ClientAccess for Bullfrog {
    fn db(&self) -> &Arc<Database> {
        &self.db
    }

    fn version(&self) -> SchemaVersion {
        if self.flipped.load(Ordering::Acquire) {
            SchemaVersion::New
        } else {
            SchemaVersion::Old
        }
    }

    fn select(
        &self,
        txn: &mut Transaction,
        table: &str,
        predicate: Option<&Expr>,
        policy: LockPolicy,
    ) -> Result<Vec<(RowId, Row)>> {
        self.check_not_retired(table)?;
        self.ensure_migrated_as(table, predicate, Some(txn.id()))?;
        // The lazy migration just committed rows this client's snapshot
        // predates; advance a still-unused snapshot so the read sees them.
        self.db.refresh_snapshot(txn);
        self.db.select(txn, table, predicate, policy)
    }

    fn get_by_pk(
        &self,
        txn: &mut Transaction,
        table: &str,
        key: &[Value],
        policy: LockPolicy,
    ) -> Result<Option<(RowId, Row)>> {
        self.check_not_retired(table)?;
        // Build the pk predicate for migration scoping.
        if let Ok(t) = self.db.table(table) {
            let pk = &t.schema().primary_key;
            if pk.len() == key.len() {
                let pred = conjoin(
                    pk.iter()
                        .zip(key)
                        .map(|(c, v)| Expr::column(c.clone()).eq(Expr::Lit(v.clone())))
                        .collect(),
                );
                self.ensure_migrated_as(table, pred.as_ref(), Some(txn.id()))?;
            } else {
                self.ensure_migrated_as(table, None, Some(txn.id()))?;
            }
        }
        self.db.refresh_snapshot(txn);
        self.db.get_by_pk(txn, table, key, policy)
    }

    fn insert(&self, txn: &mut Transaction, table: &str, row: Row) -> Result<RowId> {
        self.check_not_retired(table)?;
        self.check_not_frozen_input(table)?;
        self.ensure_for_insert(table, &row, Some(txn.id()))?;
        self.db.refresh_snapshot(txn);
        self.db.insert(txn, table, row)
    }

    fn update(&self, txn: &mut Transaction, table: &str, rid: RowId, row: Row) -> Result<()> {
        self.check_not_retired(table)?;
        self.check_not_frozen_input(table)?;
        // Updates changing a unique key must respect the same widening as
        // inserts (§2.1: "updates to the unique attribute").
        self.ensure_for_insert(table, &row, Some(txn.id()))?;
        self.db.refresh_snapshot(txn);
        self.db.update(txn, table, rid, row)
    }

    fn delete(&self, txn: &mut Transaction, table: &str, rid: RowId) -> Result<Row> {
        self.check_not_retired(table)?;
        self.check_not_frozen_input(table)?;
        self.db.delete(txn, table, rid)
    }

    fn execute_spec(
        &self,
        txn: &mut Transaction,
        spec: &SelectSpec,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        // Every input that is a new-schema output must be migrated for the
        // slice this read touches: transpose the read's own single-alias
        // conjuncts into per-output-table predicates.
        for input in &spec.inputs {
            self.check_not_retired(&input.table)?;
            let mut parts: Vec<Expr> = Vec::new();
            if let Some(f) = &spec.filter {
                for c in conjuncts(f) {
                    let mut cols = Vec::new();
                    c.columns(&mut cols);
                    let all_this_alias = !cols.is_empty()
                        && cols
                            .iter()
                            .all(|cr| cr.table.as_deref() == Some(input.alias.as_str()));
                    if all_this_alias {
                        parts.push(bullfrog_engine::exec::strip_aliases(&c));
                    }
                }
            }
            if let Some(extra) = opts.extra_filters.get(&input.alias) {
                parts.push(bullfrog_engine::exec::strip_aliases(extra));
            }
            self.ensure_migrated_as(&input.table, conjoin(parts).as_ref(), Some(txn.id()))?;
        }
        self.db.refresh_snapshot(txn);
        bullfrog_engine::exec::execute_spec(&self.db, txn, spec, opts)
    }
}

impl std::fmt::Debug for Bullfrog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bullfrog")
            .field("flipped", &self.flipped.load(Ordering::Relaxed))
            .field("active", &self.active().map(|a| a.name.clone()))
            .finish()
    }
}
