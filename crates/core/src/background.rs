//! Background migration (paper §2.2).
//!
//! Client requests alone may never touch some tuples, so a purely lazy
//! system would never finish. BullFrog therefore starts background threads
//! that "slowly inject simulated client requests that cumulatively cover
//! the entirety of the old tables". Here each thread walks its statement's
//! granule space in batches, claiming and migrating through exactly the
//! same Algorithm-1 loop that client requests use, so client and
//! background workers cooperate safely through the trackers.
//!
//! In the paper's experiments the background threads start **after a
//! delay** (20 s in Figure 3) because early on the client requests
//! themselves keep the migration moving; [`BackgroundConfig::start_delay`]
//! reproduces that knob, and a batch pause bounds the interference with
//! foreground work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_engine::Database;

use crate::controller::ActiveMigration;
use crate::granule::{Granule, GranuleState};
use crate::migrate::{candidates_for, migrate_candidates, MigrateOptions};

/// Background migration settings.
#[derive(Debug, Clone)]
pub struct BackgroundConfig {
    /// Whether background threads run at all (the paper's "without
    /// background migration" dotted lines disable this).
    pub enabled: bool,
    /// Delay before the threads start working (paper: 20 s).
    pub start_delay: Duration,
    /// Granules per background migration transaction.
    pub batch: usize,
    /// Pause between batches (throttling).
    pub pause: Duration,
    /// Worker threads per migration statement.
    pub threads: usize,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            enabled: true,
            start_delay: Duration::from_millis(500),
            batch: 256,
            pause: Duration::from_millis(1),
            threads: 1,
        }
    }
}

/// Spawns the background workers for every statement of `migration`.
/// Threads exit when their statement completes or `shutdown` is set; the
/// statement's completion flag is set once its granule space is fully
/// migrated.
pub fn spawn_background(
    db: Arc<Database>,
    migration: Arc<ActiveMigration>,
    cfg: BackgroundConfig,
    opts: MigrateOptions,
    shutdown: Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();
    let opts = Arc::new(opts);
    for (idx, rt) in migration.runtimes.iter().enumerate() {
        for worker in 0..cfg.threads.max(1) {
            let db = Arc::clone(&db);
            let migration = Arc::clone(&migration);
            let rt = Arc::clone(rt);
            let cfg = cfg.clone();
            let opts = Arc::clone(&opts);
            let shutdown = Arc::clone(&shutdown);
            handles.push(std::thread::spawn(move || {
                // Interruptible start delay.
                let deadline = std::time::Instant::now() + cfg.start_delay;
                while std::time::Instant::now() < deadline {
                    if shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(2).min(cfg.start_delay));
                }
                run_worker(&db, &migration, idx, &rt, worker, &cfg, &opts, &shutdown);
            }));
        }
    }
    handles
}

/// One background worker: sweeps the statement's granule space, striding
/// by worker index so multiple workers split the work.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    db: &Database,
    migration: &ActiveMigration,
    stmt_idx: usize,
    rt: &crate::migrate::StatementRuntime,
    worker: usize,
    cfg: &BackgroundConfig,
    opts: &MigrateOptions,
    shutdown: &AtomicBool,
) {
    // Wait out the flip-time writer quiesce (snapshot mode; opens
    // immediately under 2PL).
    migration.wait_ready();
    // Enumerate the full candidate space once (the old schema is frozen
    // during migration, so the space is stable).
    let all_granules = match candidates_for(db, rt, None) {
        Ok(c) => c,
        Err(_) => return, // tables dropped under us — nothing to do
    };
    let mine: Vec<Granule> = all_granules
        .iter()
        .enumerate()
        .filter(|(i, _)| i % cfg.threads.max(1) == worker)
        .map(|(_, g)| g.clone())
        .collect();

    let all = {
        for chunk in mine.chunks(cfg.batch.max(1)) {
            if shutdown.load(Ordering::Acquire) {
                return;
            }
            let pending: Vec<Granule> = chunk
                .iter()
                .filter(|g| rt.tracker.state(g) != GranuleState::Migrated)
                .cloned()
                .collect();
            if !pending.is_empty() && migrate_candidates(db, rt, pending, opts).is_err() {
                // Unretryable failure (e.g. finalize dropped the old
                // tables because the foreground finished everything):
                // stop quietly.
                return;
            }
            if !cfg.pause.is_zero() {
                std::thread::sleep(cfg.pause);
            }
        }
        all_granules
    };

    // This worker's slice is done; now settle the whole space. A one-shot
    // check would be racy: a granule may be InProgress under a *client*
    // request right now, and if every background worker exited on that
    // observation, nobody would ever set the completion flag. Instead,
    // loop: re-claim anything claimable (e.g. reset after an abort), wait
    // out in-flight claims, and flip the flag once everything is migrated.
    loop {
        if shutdown.load(Ordering::Acquire) || migration.is_statement_complete(stmt_idx) {
            return;
        }
        let pending: Vec<Granule> = all
            .iter()
            .filter(|g| rt.tracker.state(g) != GranuleState::Migrated)
            .cloned()
            .collect();
        if pending.is_empty() {
            migration.set_complete(stmt_idx);
            return;
        }
        if migrate_candidates(db, rt, pending, opts).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_enabled() {
        let c = BackgroundConfig::default();
        assert!(c.enabled);
        assert!(c.threads >= 1);
    }
}
