//! The migration baselines the paper evaluates BullFrog against (§4):
//! **eager** (single-step, blocking) and **multi-step** (background copy
//! with dual writes). Both implement [`ClientAccess`] so the same workload
//! driver runs against every strategy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{Error, Result, Row, RowId, Value};
use bullfrog_engine::exec::{execute_spec, ExecOptions, QueryOutput};
use bullfrog_engine::{Database, LockPolicy};
use bullfrog_query::{Expr, SelectSpec};
use bullfrog_txn::{LockKey, LockMode, Transaction};
use parking_lot::Mutex;

use crate::access::{ClientAccess, SchemaVersion};
use crate::plan::{MigrationPlan, MigrationStatement, Tracking};

// ---------------------------------------------------------------------------
// Eager migration
// ---------------------------------------------------------------------------

/// Eager single-step migration: on [`EagerMigrator::migrate`], every input
/// and output table is locked exclusively, all data is transformed and
/// copied, and only then do client requests proceed. Requests that touch
/// the affected tables during the window block on the table locks (the
/// paper's request queue); unrelated requests (e.g. TPC-C StockLevel
/// during the customer split) keep running.
pub struct EagerMigrator {
    db: Arc<Database>,
    flipped: AtomicBool,
}

impl EagerMigrator {
    /// Wraps a database.
    pub fn new(db: Arc<Database>) -> Self {
        EagerMigrator {
            db,
            flipped: AtomicBool::new(false),
        }
    }

    /// Runs the whole migration synchronously; returns when the new schema
    /// is fully populated. The logical flip happens at call time: clients
    /// seeing [`SchemaVersion::New`] will block on the table locks until
    /// the copy finishes.
    pub fn migrate(&self, mut plan: MigrationPlan) -> Result<()> {
        plan.resolve(&self.db)?;
        for s in &plan.statements {
            self.db.create_table(s.output.clone())?;
        }
        self.flipped.store(true, Ordering::Release);

        let mut txn = self.db.begin();
        let result = (|| -> Result<()> {
            // X-lock every affected table for the duration (clients queue).
            for name in plan.input_tables().into_iter().chain(plan.output_tables()) {
                let t = self.db.table(&name)?;
                // Eager migration may hold these locks for a long time;
                // wait well beyond the normal client deadline.
                self.db
                    .lock_manager()
                    .acquire_deadline(
                        txn.id(),
                        LockKey::Table(t.id()),
                        LockMode::X,
                        Duration::from_secs(3600),
                    )
                    .map(|newly| {
                        if newly {
                            txn.record_lock(LockKey::Table(t.id()));
                        }
                    })?;
            }
            for s in &plan.statements {
                let out = execute_spec(&self.db, &mut txn, &s.spec, &ExecOptions::default())?;
                for row in out.rows {
                    self.db.insert_with(&mut txn, &s.output.name, row, false)?;
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => self.db.commit(&mut txn),
            Err(e) => {
                self.db.abort(&mut txn);
                self.flipped.store(false, Ordering::Release);
                Err(e)
            }
        }
    }
}

impl ClientAccess for EagerMigrator {
    fn db(&self) -> &Arc<Database> {
        &self.db
    }

    fn version(&self) -> SchemaVersion {
        if self.flipped.load(Ordering::Acquire) {
            SchemaVersion::New
        } else {
            SchemaVersion::Old
        }
    }

    fn select(
        &self,
        txn: &mut Transaction,
        table: &str,
        predicate: Option<&Expr>,
        policy: LockPolicy,
    ) -> Result<Vec<(RowId, Row)>> {
        self.db.select(txn, table, predicate, policy)
    }

    fn get_by_pk(
        &self,
        txn: &mut Transaction,
        table: &str,
        key: &[Value],
        policy: LockPolicy,
    ) -> Result<Option<(RowId, Row)>> {
        // Block on the table lock first so eager migration actually queues
        // point reads too (the pk index itself is not lock-mediated).
        let t = self.db.table(table)?;
        self.db.lock(
            txn,
            LockKey::Table(t.id()),
            match policy {
                LockPolicy::None | LockPolicy::Shared => LockMode::IS,
                LockPolicy::Exclusive => LockMode::IX,
            },
        )?;
        self.db.get_by_pk(txn, table, key, policy)
    }

    fn insert(&self, txn: &mut Transaction, table: &str, row: Row) -> Result<RowId> {
        self.db.insert(txn, table, row)
    }

    fn update(&self, txn: &mut Transaction, table: &str, rid: RowId, row: Row) -> Result<()> {
        self.db.update(txn, table, rid, row)
    }

    fn delete(&self, txn: &mut Transaction, table: &str, rid: RowId) -> Result<Row> {
        self.db.delete(txn, table, rid)
    }

    fn execute_spec(
        &self,
        txn: &mut Transaction,
        spec: &SelectSpec,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        execute_spec(&self.db, txn, spec, opts)
    }
}

// ---------------------------------------------------------------------------
// Multi-step migration
// ---------------------------------------------------------------------------

/// Per-statement mirroring metadata: how a write to an input table maps to
/// the output slice it invalidates.
struct MirrorRule {
    /// Statement index.
    stmt: usize,
    /// Input table name this rule fires on.
    input_table: String,
    /// Key column positions in the *input* row identifying the slice.
    input_key_cols: Vec<usize>,
    /// The alias the recompute filter applies to.
    filter_alias: String,
    /// Column names within `filter_alias`'s table matching the key.
    filter_cols: Vec<String>,
    /// Output column positions carrying the key (for the delete).
    output_key_cols: Vec<usize>,
}

/// Multi-step ("shadow table") migration, the state of the art the paper
/// compares against (§1, §4): the migration is registered ahead of time, a
/// background process copies data into the new schema, **reads are served
/// from the old schema while writes go to both schemas**, and only once
/// the copy has caught up does the system switch clients to the new
/// schema.
pub struct MultiStepMigrator {
    db: Arc<Database>,
    plan: Mutex<Option<MigrationPlan>>,
    rules: Mutex<Vec<MirrorRule>>,
    caught_up: Arc<AtomicBool>,
    copier: Mutex<Option<std::thread::JoinHandle<Result<()>>>>,
    /// Granules per copier transaction.
    pub copy_batch: usize,
    /// Pause between copier batches.
    pub copy_pause: Duration,
}

impl MultiStepMigrator {
    /// Wraps a database.
    pub fn new(db: Arc<Database>) -> Self {
        MultiStepMigrator {
            db,
            plan: Mutex::new(None),
            rules: Mutex::new(Vec::new()),
            caught_up: Arc::new(AtomicBool::new(false)),
            copier: Mutex::new(None),
            copy_batch: 256,
            copy_pause: Duration::from_millis(1),
        }
    }

    /// Registers the migration: creates the output tables, derives the
    /// dual-write mirror rules, and starts the background copier.
    pub fn register(&self, mut plan: MigrationPlan) -> Result<()> {
        plan.resolve(&self.db)?;
        for s in &plan.statements {
            self.db.create_table(s.output.clone())?;
        }
        let mut rules = Vec::new();
        for (i, s) in plan.statements.iter().enumerate() {
            rules.extend(derive_mirror_rules(&self.db, i, s)?);
        }
        *self.rules.lock() = rules;

        // Background copier.
        let db = Arc::clone(&self.db);
        let statements = plan.statements.clone();
        let caught_up = Arc::clone(&self.caught_up);
        let batch = self.copy_batch;
        let pause = self.copy_pause;
        let handle = std::thread::spawn(move || -> Result<()> {
            for s in &statements {
                copy_statement(&db, s, batch, pause)?;
            }
            caught_up.store(true, Ordering::Release);
            Ok(())
        });
        *self.copier.lock() = Some(handle);
        *self.plan.lock() = Some(plan);
        Ok(())
    }

    /// True once the background copy finished and clients may switch.
    pub fn is_caught_up(&self) -> bool {
        self.caught_up.load(Ordering::Acquire)
    }

    /// Blocks until the copier finishes (tests/benches).
    pub fn wait_caught_up(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.is_caught_up() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.is_caught_up()
    }

    /// Applies the dual-write mirror for a write to `table` in `txn`:
    /// recomputes the output slices keyed by the written row(s).
    fn mirror(&self, txn: &mut Transaction, table: &str, rows: &[&Row]) -> Result<()> {
        let plan_guard = self.plan.lock();
        let Some(plan) = plan_guard.as_ref() else {
            return Ok(());
        };
        let rules = self.rules.lock();
        for rule in rules.iter().filter(|r| r.input_table == table) {
            let s = &plan.statements[rule.stmt];
            let mut keys: Vec<Vec<Value>> =
                rows.iter().map(|r| r.key(&rule.input_key_cols)).collect();
            keys.sort();
            keys.dedup();
            for key in keys {
                rewrite_slice(&self.db, txn, s, rule, &key)?;
            }
        }
        Ok(())
    }

    /// Delta mirror for a fresh insert: when the written table is the
    /// statement's driving/key table and the statement does not aggregate,
    /// only the new row's join products need inserting — the trigger-based
    /// tools the paper cites propagate exactly this delta. Statements where
    /// the delta shortcut does not apply fall back to the slice rewrite.
    fn mirror_insert(&self, txn: &mut Transaction, table: &str, row: &Row) -> Result<()> {
        let plan_guard = self.plan.lock();
        let Some(plan) = plan_guard.as_ref() else {
            return Ok(());
        };
        let rules = self.rules.lock();
        for rule in rules.iter().filter(|r| r.input_table == table) {
            let s = &plan.statements[rule.stmt];
            let driving_alias = match s.tracking() {
                Tracking::Bitmap { driving_alias, .. } => driving_alias,
                Tracking::Hash { key_alias, .. } => key_alias,
                Tracking::PairHash { left_alias, .. } => left_alias,
            };
            let driving_table = &s.spec.input(driving_alias).expect("resolved").table;
            if !s.spec.is_aggregate() && driving_table == table {
                // RowId is irrelevant for pinned rows; use a placeholder.
                let opts = ExecOptions {
                    driving: vec![(
                        driving_alias.clone(),
                        vec![(bullfrog_common::RowId::new(0, 0), row.clone())],
                    )],
                    lock: LockPolicy::None,
                    ..Default::default()
                };
                let out = execute_spec(&self.db, txn, &s.spec, &opts)?;
                for out_row in out.rows {
                    self.db
                        .insert_or_ignore_with(txn, &s.output.name, out_row, false)?;
                }
            } else {
                let key = row.key(&rule.input_key_cols);
                rewrite_slice(&self.db, txn, s, rule, &key)?;
            }
        }
        Ok(())
    }
}

impl MultiStepMigrator {
    /// Delta mirror for an update: when the slice key did not change and
    /// the statement does not aggregate, recompute only the updated row's
    /// join products (pinning its alias) and upsert them by the output
    /// primary key — the per-row propagation a trigger would do. Key
    /// changes and aggregates fall back to slice rewrites of both keys.
    fn mirror_update(
        &self,
        txn: &mut Transaction,
        table: &str,
        old: &Row,
        new: &Row,
    ) -> Result<()> {
        let plan_guard = self.plan.lock();
        let Some(plan) = plan_guard.as_ref() else {
            return Ok(());
        };
        let rules = self.rules.lock();
        for rule in rules.iter().filter(|r| r.input_table == table) {
            let s = &plan.statements[rule.stmt];
            let old_key = old.key(&rule.input_key_cols);
            let new_key = new.key(&rule.input_key_cols);
            let pk_upsertable =
                !s.spec.is_aggregate() && !s.output.primary_key.is_empty() && old_key == new_key;
            if !pk_upsertable {
                rewrite_slice(&self.db, txn, s, rule, &old_key)?;
                if new_key != old_key {
                    rewrite_slice(&self.db, txn, s, rule, &new_key)?;
                }
                continue;
            }
            // Pin the written table's alias to the new row image.
            let Some(alias) = s
                .spec
                .inputs
                .iter()
                .find(|i| i.table == table)
                .map(|i| i.alias.clone())
            else {
                continue;
            };
            let opts = ExecOptions {
                driving: vec![(
                    alias,
                    vec![(bullfrog_common::RowId::new(0, 0), new.clone())],
                )],
                lock: LockPolicy::None,
                ..Default::default()
            };
            let out = execute_spec(&self.db, txn, &s.spec, &opts)?;
            let pk = s.output.pk_indices()?;
            for out_row in out.rows {
                let key = out_row.key(&pk);
                if let Some((rid, _)) =
                    self.db
                        .get_by_pk(txn, &s.output.name, &key, LockPolicy::Exclusive)?
                {
                    self.db.update(txn, &s.output.name, rid, out_row)?;
                } else {
                    self.db
                        .insert_or_ignore_with(txn, &s.output.name, out_row, false)?;
                }
            }
        }
        Ok(())
    }
}

/// Recomputes one keyed slice of a statement's output inside `txn`:
/// deletes the existing output rows for the key, re-evaluates the spec
/// restricted to the key, and inserts the fresh rows.
fn rewrite_slice(
    db: &Database,
    txn: &mut Transaction,
    s: &MigrationStatement,
    rule: &MirrorRule,
    key: &[Value],
) -> Result<()> {
    // Delete existing slice (matched on the projected key columns).
    let out_schema = &s.output;
    let mut pred: Option<Expr> = None;
    for (pos, v) in rule.output_key_cols.iter().zip(key) {
        let c = Expr::column(out_schema.columns[*pos].name.clone()).eq(Expr::Lit(v.clone()));
        pred = Some(match pred {
            None => c,
            Some(p) => p.and(c),
        });
    }
    let existing = db.select(txn, &out_schema.name, pred.as_ref(), LockPolicy::Exclusive)?;
    for (rid, _) in existing {
        db.delete(txn, &out_schema.name, rid)?;
    }
    // Recompute.
    let mut filter: Option<Expr> = None;
    for (col, v) in rule.filter_cols.iter().zip(key) {
        let c = Expr::col(rule.filter_alias.clone(), col.clone()).eq(Expr::Lit(v.clone()));
        filter = Some(match filter {
            None => c,
            Some(f) => f.and(c),
        });
    }
    let mut opts = ExecOptions {
        lock: LockPolicy::None,
        ..Default::default()
    };
    if let Some(f) = filter {
        opts.extra_filters.insert(rule.filter_alias.clone(), f);
    }
    let out = execute_spec(db, txn, &s.spec, &opts)?;
    for row in out.rows {
        db.insert_with(txn, &out_schema.name, row, false)?;
    }
    Ok(())
}

/// Derives the mirror rules of a statement: for each input alias, the
/// slice key is the tracking key (hash statements) or the driving table's
/// primary key (bitmap statements), translated to each alias through the
/// join-equivalence classes; the key must also be projected into the
/// output so stale slices can be deleted.
fn derive_mirror_rules(
    db: &Database,
    stmt_idx: usize,
    s: &MigrationStatement,
) -> Result<Vec<MirrorRule>> {
    // The canonical key: expressions over the driving/key alias.
    let (key_alias, key_exprs): (String, Vec<Expr>) = match s.tracking() {
        Tracking::PairHash { .. } => {
            return Err(Error::InvalidMigration(
                "multi-step migration does not support pairwise tracking                  (a BullFrog-only option)"
                    .into(),
            ))
        }
        Tracking::Hash { key_alias, key_exprs } => (key_alias.clone(), key_exprs.clone()),
        Tracking::Bitmap { driving_alias, .. } => {
            let table = db.table(&s.spec.input(driving_alias).expect("resolved").table)?;
            let pk = table.schema().primary_key.clone();
            if pk.is_empty() {
                return Err(Error::InvalidMigration(format!(
                    "multi-step mirroring needs a primary key on {}",
                    table.name()
                )));
            }
            (
                driving_alias.clone(),
                pk.into_iter()
                    .map(|c| Expr::col(driving_alias.clone(), c))
                    .collect(),
            )
        }
    };

    // The key must be projected in the output (to delete stale slices).
    let mut output_key_cols = Vec::with_capacity(key_exprs.len());
    for e in &key_exprs {
        let pos = s.spec.columns.iter().position(|c| match c {
            bullfrog_query::OutputColumn::Scalar { expr, .. } => expr == e,
            _ => false,
        });
        match pos {
            Some(p) => output_key_cols.push(p),
            None => {
                return Err(Error::InvalidMigration(format!(
                    "multi-step mirroring requires the slice key {e} to be \
                     projected into {}",
                    s.output.name
                )))
            }
        }
    }

    // Canonical key as bare column names on the key alias (mirroring only
    // supports plain column keys, which covers the evaluated migrations).
    let mut key_cols: Vec<bullfrog_query::ColRef> = Vec::new();
    for e in &key_exprs {
        match e {
            Expr::Col(c) => key_cols.push(c.clone()),
            other => {
                return Err(Error::InvalidMigration(format!(
                    "multi-step mirroring supports column keys only, got {other}"
                )))
            }
        }
    }

    // Equivalence classes from the join conditions let us express the key
    // on every input alias.
    let mut rules = Vec::new();
    for input in &s.spec.inputs {
        let table = db.table(&input.table)?;
        let mut input_cols: Vec<String> = Vec::with_capacity(key_cols.len());
        let mut ok = true;
        for kc in &key_cols {
            if kc.table.as_deref() == Some(input.alias.as_str()) {
                input_cols.push(kc.column.clone());
                continue;
            }
            // Find an equivalent column on this alias via join conditions.
            let mut found = None;
            for (a, b) in &s.spec.join_conds {
                if a == kc && b.table.as_deref() == Some(input.alias.as_str()) {
                    found = Some(b.column.clone());
                } else if b == kc && a.table.as_deref() == Some(input.alias.as_str()) {
                    found = Some(a.column.clone());
                }
            }
            match found {
                Some(c) => input_cols.push(c),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            // Writes to this input can't be mirrored precisely; reject at
            // registration rather than silently diverging.
            return Err(Error::InvalidMigration(format!(
                "multi-step mirroring cannot key writes to {} for output {}",
                input.table, s.output.name
            )));
        }
        let input_key_cols = table.schema().col_indices(&input_cols)?;
        rules.push(MirrorRule {
            stmt: stmt_idx,
            input_table: input.table.clone(),
            input_key_cols,
            filter_alias: key_alias.clone(),
            filter_cols: key_cols.iter().map(|c| c.column.clone()).collect(),
            output_key_cols: output_key_cols.clone(),
        });
    }
    Ok(rules)
}

/// The initial background copy of one statement: batches of slice keys,
/// copied with `INSERT ... ON CONFLICT DO NOTHING` so slices already
/// refreshed by dual writes are never clobbered with stale data.
fn copy_statement(
    db: &Database,
    s: &MigrationStatement,
    batch: usize,
    pause: Duration,
) -> Result<()> {
    match s.tracking() {
        Tracking::PairHash { .. } => {
            return Err(Error::InvalidMigration(
                "multi-step migration does not support pairwise tracking".into(),
            ))
        }
        Tracking::Bitmap { driving_alias, .. } => {
            let input = &s.spec.input(driving_alias).expect("resolved").table;
            // Snapshot only the row ids; the rows themselves are re-read
            // under shared locks inside each copy transaction, so the
            // copier never propagates a stale image past a concurrent
            // dual-written update or delete.
            let rids: Vec<bullfrog_common::RowId> = db
                .select_unlocked(input, None)?
                .into_iter()
                .map(|(rid, _)| rid)
                .collect();
            // Under snapshot isolation a Shared read serves the txn's
            // snapshot, which can predate a concurrent dual-written
            // update or delete — the copier would resurrect the stale
            // image. Exclusive reads observe the latest committed state
            // in both engine modes.
            let reread = if db.config().mode.is_snapshot() {
                LockPolicy::Exclusive
            } else {
                LockPolicy::Shared
            };
            for chunk in rids.chunks(batch.max(1)) {
                db.with_txn_retry(20, |txn| {
                    let mut fresh = Vec::with_capacity(chunk.len());
                    for rid in chunk {
                        if let Some(row) = db.get(txn, input, *rid, reread)? {
                            fresh.push((*rid, row));
                        }
                    }
                    let opts = ExecOptions {
                        driving: vec![(driving_alias.clone(), fresh)],
                        lock: LockPolicy::None,
                        ..Default::default()
                    };
                    let out = execute_spec(db, txn, &s.spec, &opts)?;
                    for row in out.rows {
                        db.insert_or_ignore_with(txn, &s.output.name, row, false)?;
                    }
                    Ok(())
                })?;
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
        }
        Tracking::Hash {
            key_alias,
            key_exprs,
        } => {
            let input = &s.spec.input(key_alias).expect("resolved").table;
            let table = db.table(input)?;
            let scope = bullfrog_engine::db::table_scope(&table);
            let stripped: Vec<Expr> = key_exprs
                .iter()
                .map(bullfrog_engine::exec::strip_aliases)
                .collect();
            let rows = db.select_unlocked(input, None)?;
            let mut keys: Vec<Vec<Value>> = Vec::new();
            for (_, row) in &rows {
                keys.push(
                    stripped
                        .iter()
                        .map(|e| e.eval(&scope, row))
                        .collect::<Result<_>>()?,
                );
            }
            keys.sort();
            keys.dedup();
            for chunk in keys.chunks(batch.max(1)) {
                db.with_txn_retry(20, |txn| {
                    for key in chunk {
                        let mut filter: Option<Expr> = None;
                        for (e, v) in key_exprs.iter().zip(key.iter()) {
                            let c = e.clone().eq(Expr::Lit(v.clone()));
                            filter = Some(match filter {
                                None => c,
                                Some(f) => f.and(c),
                            });
                        }
                        // Group contents must be committed, stable, and
                        // *current* for the copied aggregate; Shared
                        // reads under snapshot isolation would serve a
                        // snapshot that can trail dual writes.
                        let mut opts = ExecOptions {
                            lock: if db.config().mode.is_snapshot() {
                                LockPolicy::Exclusive
                            } else {
                                LockPolicy::Shared
                            },
                            ..Default::default()
                        };
                        if let Some(f) = filter {
                            opts.extra_filters.insert(key_alias.clone(), f);
                        }
                        let out = execute_spec(db, txn, &s.spec, &opts)?;
                        for row in out.rows {
                            db.insert_or_ignore_with(txn, &s.output.name, row, false)?;
                        }
                    }
                    Ok(())
                })?;
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
        }
    }
    Ok(())
}

impl ClientAccess for MultiStepMigrator {
    fn db(&self) -> &Arc<Database> {
        &self.db
    }

    fn version(&self) -> SchemaVersion {
        if self.is_caught_up() {
            SchemaVersion::New
        } else {
            SchemaVersion::Old
        }
    }

    fn select(
        &self,
        txn: &mut Transaction,
        table: &str,
        predicate: Option<&Expr>,
        policy: LockPolicy,
    ) -> Result<Vec<(RowId, Row)>> {
        self.db.select(txn, table, predicate, policy)
    }

    fn get_by_pk(
        &self,
        txn: &mut Transaction,
        table: &str,
        key: &[Value],
        policy: LockPolicy,
    ) -> Result<Option<(RowId, Row)>> {
        self.db.get_by_pk(txn, table, key, policy)
    }

    fn insert(&self, txn: &mut Transaction, table: &str, row: Row) -> Result<RowId> {
        let rid = self.db.insert(txn, table, row.clone())?;
        if !self.is_caught_up() {
            self.mirror_insert(txn, table, &row)?;
        }
        Ok(rid)
    }

    fn update(&self, txn: &mut Transaction, table: &str, rid: RowId, row: Row) -> Result<()> {
        let old = self
            .db
            .get(txn, table, rid, LockPolicy::Exclusive)?
            .ok_or(Error::RowNotFound)?;
        self.db.update(txn, table, rid, row.clone())?;
        if !self.is_caught_up() {
            self.mirror_update(txn, table, &old, &row)?;
        }
        Ok(())
    }

    fn delete(&self, txn: &mut Transaction, table: &str, rid: RowId) -> Result<Row> {
        let old = self.db.delete(txn, table, rid)?;
        if !self.is_caught_up() {
            self.mirror(txn, table, &[&old])?;
        }
        Ok(old)
    }

    fn execute_spec(
        &self,
        txn: &mut Transaction,
        spec: &SelectSpec,
        opts: &ExecOptions,
    ) -> Result<QueryOutput> {
        execute_spec(&self.db, txn, spec, opts)
    }
}

impl Drop for MultiStepMigrator {
    fn drop(&mut self) {
        if let Some(h) = self.copier.lock().take() {
            let _ = h.join();
        }
    }
}
