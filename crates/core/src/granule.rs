//! Migration granules and the tracker abstraction.

use bullfrog_common::Value;
use bullfrog_txn::wal::GranuleKey;

/// The unit of migration tracking.
///
/// Bitmap migrations (1:1, 1:n) track *ordinals* — dense positions derived
/// from the driving table's row ids (one per tuple, or one per page group
/// under coarse granularity). Hashmap migrations (n:1, n:n) track *groups*
/// — the value of the group key (GROUP BY columns, or the join attribute).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Granule {
    /// Dense bitmap ordinal.
    Ordinal(u64),
    /// Group key values.
    Group(Vec<Value>),
}

impl Granule {
    /// The ordinal, when this is a bitmap granule.
    pub fn ordinal(&self) -> Option<u64> {
        match self {
            Granule::Ordinal(o) => Some(*o),
            Granule::Group(_) => None,
        }
    }

    /// The group key, when this is a hashmap granule.
    pub fn group(&self) -> Option<&[Value]> {
        match self {
            Granule::Group(g) => Some(g),
            Granule::Ordinal(_) => None,
        }
    }

    /// Conversion to the WAL representation.
    pub fn to_wal(&self) -> GranuleKey {
        match self {
            Granule::Ordinal(o) => GranuleKey::Ordinal(*o),
            Granule::Group(g) => GranuleKey::Group(g.clone()),
        }
    }

    /// Conversion from the WAL representation.
    pub fn from_wal(k: &GranuleKey) -> Self {
        match k {
            GranuleKey::Ordinal(o) => Granule::Ordinal(*o),
            GranuleKey::Group(g) => Granule::Group(g.clone()),
        }
    }
}

/// Migration status of a granule, as readable from a tracker.
///
/// Bitmap encoding (paper §3.3): `[0 0]` = `NotStarted`, `[1 0]` =
/// `InProgress`, `[0 1]` = `Migrated`; `[1 1]` never occurs. The hashmap
/// adds an explicit `Aborted` state (paper §3.4), which is claimable like
/// `NotStarted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GranuleState {
    /// Not yet migrated, not locked. (Also the hashmap's `Aborted`, which
    /// is equivalent for claiming purposes.)
    NotStarted,
    /// A worker holds the migration lock.
    InProgress,
    /// Physically migrated; the old-schema copy is dead.
    Migrated,
}

/// A worker-local granule list (the paper's WIP and SKIP lists) with a
/// hash index so Algorithm 3's membership checks (its lines 2–3) stay
/// O(1) even when a migration transaction covers thousands of groups.
#[derive(Debug, Default)]
pub struct WorkList {
    items: Vec<Granule>,
    index: std::collections::HashSet<Granule>,
}

impl WorkList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `g` (idempotent).
    pub fn push(&mut self, g: Granule) {
        if self.index.insert(g.clone()) {
            self.items.push(g);
        }
    }

    /// Membership test.
    pub fn contains(&self, g: &Granule) -> bool {
        self.index.contains(g)
    }

    /// Number of granules.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The granules in insertion order.
    pub fn items(&self) -> &[Granule] {
        &self.items
    }

    /// Drains into the plain granule vector.
    pub fn into_items(self) -> Vec<Granule> {
        self.items
    }
}

/// Common interface of the bitmap and hashmap trackers, as consumed by the
/// migration loop (Algorithm 1).
pub trait Tracker: Send + Sync {
    /// Algorithms 2/3: decide whether the calling worker may migrate `g`.
    /// On `true`, `g` was appended to `wip` (the worker must migrate it in
    /// the current migration transaction). On `false`, either the granule
    /// is already migrated (nothing appended) or another worker is
    /// migrating it (`g` appended to `skip` for the recheck loop).
    fn try_claim(&self, g: &Granule, wip: &mut WorkList, skip: &mut WorkList) -> bool;

    /// Post-commit (Algorithm 1 line 9): statuses of `wip` become Migrated.
    fn mark_migrated(&self, granules: &[Granule]);

    /// Abort handling (§3.5): release the claims so another worker (or a
    /// retry) can migrate them.
    fn reset_aborted(&self, granules: &[Granule]);

    /// Current status (diagnostics, waiting).
    fn state(&self, g: &Granule) -> GranuleState;

    /// Blocks until `g` stops being `InProgress` (either outcome), up to
    /// `timeout`; returns the state seen last. This is worker w3 in Figure
    /// 1 waiting on tuple 6.
    fn wait_not_in_progress(&self, g: &Granule, timeout: std::time::Duration) -> GranuleState;

    /// Marks a granule migrated without a prior claim — used by the ON
    /// CONFLICT mode (§3.7), where the unique index, not the tracker,
    /// arbitrates duplicates. Returns `true` when the granule was not
    /// already migrated (idempotent counting).
    fn mark_migrated_direct(&self, g: &Granule) -> bool;

    /// Number of granules currently marked migrated.
    fn migrated_count(&self) -> u64;

    /// Total granules this tracker spans. Bitmap trackers know it up
    /// front (capacity / granule size); hash trackers discover groups
    /// lazily and report the count observed so far, which converges on
    /// the true total as migration proceeds.
    fn total_granules(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_round_trip() {
        let g = Granule::Ordinal(17);
        assert_eq!(Granule::from_wal(&g.to_wal()), g);
        let g = Granule::Group(vec![Value::Int(1), Value::text("x")]);
        assert_eq!(Granule::from_wal(&g.to_wal()), g);
    }

    #[test]
    fn accessors() {
        assert_eq!(Granule::Ordinal(3).ordinal(), Some(3));
        assert_eq!(Granule::Ordinal(3).group(), None);
        let g = Granule::Group(vec![Value::Int(1)]);
        assert_eq!(g.group(), Some(&[Value::Int(1)][..]));
        assert_eq!(g.ordinal(), None);
    }
}
