//! Migration plans: what to migrate, and how to track it.
//!
//! A [`MigrationPlan`] is the programmatic form of the paper's migration
//! DDL: one or more [`MigrationStatement`]s, each creating an output table
//! from a [`SelectSpec`] over old ("input") tables. At submission the plan
//! is **classified** (paper §3.1): each statement resolves to a tracking
//! choice —
//!
//! - **bitmap** (1:1 and 1:n): granules are driving-table row positions;
//! - **hashmap** (n:1 and n:n): granules are group keys (GROUP BY values,
//!   or the join attribute of a many-to-many join).
//!
//! For FK-PK joins the paper's §3.6 gives two options: drive from the
//! foreign-key side (its option 2, the default here — the PK side carries
//! no tracking structures at all) or drive from the primary-key side (its
//! option 1). Both are selectable via [`JoinStrategy`].

use bullfrog_common::{Error, Result, TableSchema};
use bullfrog_engine::Database;
use bullfrog_query::{ColRef, Expr, SelectSpec};

/// The four migration categories of paper §3.1, as resolved for a
/// statement's *tracked* input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCategory {
    /// Each input tuple produces at most one output tuple.
    OneToOne,
    /// Each input tuple may produce several output tuples.
    OneToMany,
    /// A group of input tuples produces one output tuple.
    ManyToOne,
    /// Groups on both sides (many-to-many join, or grouped multi-input).
    ManyToMany,
}

impl MigrationCategory {
    /// Whether this category is tracked by a bitmap (vs a hashmap) —
    /// the paper's "bitmap migrations" vs "hashmap migrations".
    pub fn uses_bitmap(self) -> bool {
        matches!(
            self,
            MigrationCategory::OneToOne | MigrationCategory::OneToMany
        )
    }
}

/// How to handle a join migration (paper §3.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Drive from the named side: a bitmap tracks that table's tuples; the
    /// other side carries no lock/migration state (§3.6 option 2 when
    /// driving the FK side, option 1 when driving the PK side).
    DrivingSide {
        /// Alias of the driving input.
        alias: String,
    },
    /// Track by join-key value in a hashmap: one granule = all tuples from
    /// both sides sharing a join-attribute value (the n:n approach used
    /// for many-to-many joins, §3.6/§4.3).
    JoinKeyGroups,
    /// §3.6's third option for many-to-many joins: track by the
    /// *combination* of tuples — `(x.tupleID, y.tupleID) → (lock_status,
    /// migrate_status)` — which makes the lazy migration maximally
    /// fine-grained even under join-key skew. Requires exactly two inputs.
    TuplePairs,
}

/// The resolved tracking choice for a statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tracking {
    /// Bitmap over the driving alias's row ordinals.
    Bitmap {
        /// Which input table's rows the bitmap covers.
        driving_alias: String,
        /// Rows per granule (1 = tuple granularity; >1 = page granularity,
        /// §4.4.3).
        granule_rows: u64,
    },
    /// Hashmap keyed by the given expressions (evaluated over rows of
    /// `key_alias`).
    Hash {
        /// Alias whose rows the key expressions are evaluated on.
        key_alias: String,
        /// Group key expressions (bare column references within
        /// `key_alias`'s table, stored alias-qualified).
        key_exprs: Vec<Expr>,
    },
    /// Hashmap keyed by `(left row ordinal, right row ordinal)` pairs
    /// (§3.6 option 3).
    PairHash {
        /// First join side.
        left_alias: String,
        /// Second join side.
        right_alias: String,
    },
}

/// One migration statement: `CREATE TABLE <output> AS <spec>`.
#[derive(Debug, Clone)]
pub struct MigrationStatement {
    /// Schema of the output table (its `name` is the new table's name).
    pub output: TableSchema,
    /// The defining query over the old schema.
    pub spec: SelectSpec,
    /// Rows per bitmap granule (ignored for hashmap statements).
    pub granule_rows: u64,
    /// Optional explicit join strategy (otherwise classified).
    pub join_strategy: Option<JoinStrategy>,
    /// Resolved at submission.
    pub category: Option<MigrationCategory>,
    /// Resolved at submission.
    pub tracking: Option<Tracking>,
}

impl MigrationStatement {
    /// A statement with default (auto-classified) tracking.
    pub fn new(output: TableSchema, spec: SelectSpec) -> Self {
        MigrationStatement {
            output,
            spec,
            granule_rows: 1,
            join_strategy: None,
            category: None,
            tracking: None,
        }
    }

    /// Sets the bitmap granule size (page-granularity migration, §4.4.3).
    pub fn with_granule_rows(mut self, rows: u64) -> Self {
        self.granule_rows = rows.max(1);
        self
    }

    /// Overrides the join strategy (§3.6 options).
    pub fn with_join_strategy(mut self, s: JoinStrategy) -> Self {
        self.join_strategy = Some(s);
        self
    }

    /// The resolved category (after [`MigrationStatement::resolve`]).
    pub fn category(&self) -> MigrationCategory {
        self.category.expect("statement resolved at submission")
    }

    /// The resolved tracking (after [`MigrationStatement::resolve`]).
    pub fn tracking(&self) -> &Tracking {
        self.tracking
            .as_ref()
            .expect("statement resolved at submission")
    }

    /// Validates the statement against the catalog and resolves category +
    /// tracking (paper §3.1 classification).
    pub fn resolve(&mut self, db: &Database) -> Result<()> {
        // Structural validation.
        if self.spec.inputs.is_empty() {
            return Err(Error::InvalidMigration(format!(
                "statement for {} has no input tables",
                self.output.name
            )));
        }
        for input in &self.spec.inputs {
            db.table(&input.table)?;
        }
        let out_names = self.spec.output_names();
        let schema_names: Vec<String> =
            self.output.columns.iter().map(|c| c.name.clone()).collect();
        if out_names != schema_names {
            return Err(Error::InvalidMigration(format!(
                "output schema columns {schema_names:?} do not match spec outputs {out_names:?}"
            )));
        }

        let (category, tracking) = self.classify(db)?;
        self.category = Some(category);
        self.tracking = Some(tracking);
        Ok(())
    }

    fn classify(&self, db: &Database) -> Result<(MigrationCategory, Tracking)> {
        // Aggregation ⇒ hashmap keyed by the group key.
        if self.spec.is_aggregate() {
            let keys = self.spec.group_key_exprs();
            if keys.is_empty() {
                // A global aggregate has a single implicit group; model it
                // as one constant key.
                let alias = self.spec.inputs[0].alias.clone();
                return Ok((
                    MigrationCategory::ManyToOne,
                    Tracking::Hash {
                        key_alias: alias,
                        key_exprs: vec![Expr::lit(0)],
                    },
                ));
            }
            // Determine the alias the keys live on; group keys must all be
            // resolvable on one alias for tracking purposes.
            let mut alias: Option<String> = None;
            for k in &keys {
                let mut cols = Vec::new();
                k.columns(&mut cols);
                for c in cols {
                    let a = c
                        .table
                        .clone()
                        .unwrap_or_else(|| self.spec.inputs[0].alias.clone());
                    match &alias {
                        None => alias = Some(a),
                        Some(prev) if *prev == a => {}
                        Some(prev) => {
                            return Err(Error::InvalidMigration(format!(
                                "group key spans aliases {prev} and {a}; key must be \
                                 evaluable on one input"
                            )));
                        }
                    }
                }
            }
            let key_alias = alias.unwrap_or_else(|| self.spec.inputs[0].alias.clone());
            let category = if self.spec.inputs.len() == 1 {
                MigrationCategory::ManyToOne
            } else {
                MigrationCategory::ManyToMany
            };
            return Ok((
                category,
                Tracking::Hash {
                    key_alias,
                    key_exprs: keys.into_iter().cloned().collect(),
                },
            ));
        }

        // Explicit strategies are honored (and validated) even for shapes
        // the classifier would handle differently.
        if let Some(strategy) = &self.join_strategy {
            return self.tracking_for_strategy(db, strategy.clone());
        }

        // No aggregation, single input ⇒ 1:1, bitmap on that input. (A
        // table *split* is several such statements; the paper's multiple
        // bitmaps per input table, §3.1.)
        if self.spec.inputs.len() == 1 {
            return Ok((
                MigrationCategory::OneToOne,
                Tracking::Bitmap {
                    driving_alias: self.spec.inputs[0].alias.clone(),
                    granule_rows: self.granule_rows,
                },
            ));
        }

        // Default classification: find an alias that is on the non-unique
        // side of every join edge it participates in — the FK-side "spine".
        let mut fk_side: Vec<String> = Vec::new();
        let mut any_unique = false;
        for input in &self.spec.inputs {
            let unique = self.join_side_unique(db, &input.alias)?;
            if unique {
                any_unique = true;
            } else {
                fk_side.push(input.alias.clone());
            }
        }
        match (fk_side.len(), any_unique) {
            // Pure FK→PK shape (one non-unique spine): §3.6 option 2 —
            // drive the FK side, PK side untracked.
            (1, true) => self.tracking_for_strategy(
                db,
                JoinStrategy::DrivingSide {
                    alias: fk_side[0].clone(),
                },
            ),
            // All sides unique (PK-PK join): 1:1 either way; drive first.
            (0, true) => self.tracking_for_strategy(
                db,
                JoinStrategy::DrivingSide {
                    alias: self.spec.inputs[0].alias.clone(),
                },
            ),
            // Many-to-many (or mixed): hash on the join key.
            _ => self.tracking_for_strategy(db, JoinStrategy::JoinKeyGroups),
        }
    }

    fn tracking_for_strategy(
        &self,
        db: &Database,
        strategy: JoinStrategy,
    ) -> Result<(MigrationCategory, Tracking)> {
        match strategy {
            JoinStrategy::DrivingSide { alias } => {
                self.spec.input(&alias).ok_or_else(|| {
                    Error::InvalidMigration(format!("driving alias {alias} not an input"))
                })?;
                // Category is relative to the tracked (driving) table: 1:1
                // when each driving tuple joins to at most one output row
                // (its own join side unique on the others is irrelevant —
                // what matters is the *other* side being unique). We report
                // 1:1 when every other side is unique on its join columns,
                // else 1:n.
                let mut one_to_one = true;
                for other in &self.spec.inputs {
                    if other.alias != alias && !self.join_side_unique(db, &other.alias)? {
                        one_to_one = false;
                    }
                }
                Ok((
                    if one_to_one {
                        MigrationCategory::OneToOne
                    } else {
                        MigrationCategory::OneToMany
                    },
                    Tracking::Bitmap {
                        driving_alias: alias,
                        granule_rows: self.granule_rows,
                    },
                ))
            }
            JoinStrategy::TuplePairs => {
                if self.spec.inputs.len() != 2 {
                    return Err(Error::InvalidMigration(
                        "pairwise tracking requires exactly two inputs".into(),
                    ));
                }
                if self.spec.join_conds.is_empty() {
                    return Err(Error::InvalidMigration(
                        "pairwise tracking requires a join condition".into(),
                    ));
                }
                Ok((
                    MigrationCategory::ManyToMany,
                    Tracking::PairHash {
                        left_alias: self.spec.inputs[0].alias.clone(),
                        right_alias: self.spec.inputs[1].alias.clone(),
                    },
                ))
            }
            JoinStrategy::JoinKeyGroups => {
                // Key = the join columns of the first input that appear in
                // join conditions.
                let alias = &self.spec.inputs[0].alias;
                let key_cols = self.join_columns_of(alias);
                if key_cols.is_empty() {
                    return Err(Error::InvalidMigration(
                        "join-key tracking requires join conditions".into(),
                    ));
                }
                Ok((
                    MigrationCategory::ManyToMany,
                    Tracking::Hash {
                        key_alias: alias.clone(),
                        key_exprs: key_cols.into_iter().map(Expr::Col).collect(),
                    },
                ))
            }
        }
    }

    /// The join-condition columns belonging to `alias`.
    fn join_columns_of(&self, alias: &str) -> Vec<ColRef> {
        let mut cols = Vec::new();
        for (a, b) in &self.spec.join_conds {
            for c in [a, b] {
                if c.table.as_deref() == Some(alias) && !cols.contains(c) {
                    cols.push(c.clone());
                }
            }
        }
        cols
    }

    /// True when `alias`'s join columns contain a unique key of its table
    /// (i.e. each value matches at most one row — the "PK side").
    fn join_side_unique(&self, db: &Database, alias: &str) -> Result<bool> {
        let input = self
            .spec
            .input(alias)
            .ok_or_else(|| Error::InvalidMigration(format!("unknown alias {alias}")))?;
        let table = db.table(&input.table)?;
        let cols = self.join_columns_of(alias);
        if cols.is_empty() {
            return Ok(false);
        }
        let positions: Vec<usize> = cols
            .iter()
            .map(|c| table.schema().col_index(&c.column))
            .collect::<Result<_>>()?;
        Ok(table.indexes().iter().any(|idx| {
            idx.def().unique && idx.def().key_columns.iter().all(|k| positions.contains(k))
        }))
    }
}

/// A complete migration: several statements submitted as one unit.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// Human-readable name (shows up in stats and logs).
    pub name: String,
    /// The statements.
    pub statements: Vec<MigrationStatement>,
    /// Non-backwards-compatible ("big flip", §2.1): the old schema becomes
    /// inactive and requests against its tables are rejected.
    pub big_flip: bool,
    /// §2.4: run a synchronous validation of the migration query (and its
    /// constraints) before going live, returning an error in advance
    /// instead of lazily discovering doomed records.
    pub validate_eagerly: bool,
    /// Whether the old input tables are frozen for writes while the
    /// migration runs. Big-flip plans retire them outright; backwards-
    /// compatible plans freeze them by default. Set to `false` only when
    /// the application co-maintains the outputs and its writes cannot
    /// change any not-yet-migrated granule's contents (the §4.2
    /// aggregation scenario: new orders create new groups, and existing
    /// groups' sums never change).
    pub freeze_inputs: bool,
}

impl MigrationPlan {
    /// A big-flip plan (the paper's default scenario).
    pub fn new(name: impl Into<String>) -> Self {
        MigrationPlan {
            name: name.into(),
            statements: Vec::new(),
            big_flip: true,
            validate_eagerly: false,
            freeze_inputs: true,
        }
    }

    /// Adds a statement (builder).
    pub fn with_statement(mut self, stmt: MigrationStatement) -> Self {
        self.statements.push(stmt);
        self
    }

    /// Marks the plan backwards-compatible (no big flip; old tables stay
    /// readable).
    pub fn backwards_compatible(mut self) -> Self {
        self.big_flip = false;
        self
    }

    /// Enables synchronous up-front validation (§2.4).
    pub fn with_eager_validation(mut self) -> Self {
        self.validate_eagerly = true;
        self
    }

    /// All old-schema table names this plan reads.
    pub fn input_tables(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .statements
            .iter()
            .flat_map(|s| s.spec.inputs.iter().map(|t| t.table.clone()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// All new-schema table names this plan creates.
    pub fn output_tables(&self) -> Vec<String> {
        self.statements
            .iter()
            .map(|s| s.output.name.clone())
            .collect()
    }

    /// Resolves every statement (validation + classification).
    pub fn resolve(&mut self, db: &Database) -> Result<()> {
        if self.statements.is_empty() {
            return Err(Error::InvalidMigration("plan has no statements".into()));
        }
        let mut outputs = std::collections::HashSet::new();
        for s in &mut self.statements {
            if !outputs.insert(s.output.name.clone()) {
                return Err(Error::InvalidMigration(format!(
                    "duplicate output table {}",
                    s.output.name
                )));
            }
            s.resolve(db)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::{ColumnDef, DataType};
    use bullfrog_query::AggFunc;

    /// Catalog with FK-PK shaped tables: orders(pk o_id) and lines(fk
    /// l_o_id, non-unique), plus tag tables for m:n.
    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            TableSchema::new(
                "orders",
                vec![
                    ColumnDef::new("o_id", DataType::Int),
                    ColumnDef::new("o_c_id", DataType::Int),
                ],
            )
            .with_primary_key(&["o_id"]),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "lines",
                vec![
                    ColumnDef::new("l_id", DataType::Int),
                    ColumnDef::new("l_o_id", DataType::Int),
                    ColumnDef::new("l_amount", DataType::Decimal),
                ],
            )
            .with_primary_key(&["l_id"]),
        )
        .unwrap();
        db.create_table(TableSchema::new(
            "stock",
            vec![
                ColumnDef::new("s_i_id", DataType::Int),
                ColumnDef::new("s_qty", DataType::Int),
            ],
        ))
        .unwrap();
        db
    }

    fn out_schema(name: &str, cols: &[(&str, DataType)]) -> TableSchema {
        TableSchema::new(
            name,
            cols.iter()
                .map(|(n, t)| ColumnDef::nullable(*n, *t))
                .collect(),
        )
    }

    #[test]
    fn single_input_classifies_one_to_one_bitmap() {
        let db = db();
        let spec = SelectSpec::new()
            .from_table("lines", "l")
            .select("l_id", Expr::col("l", "l_id"));
        let mut s = MigrationStatement::new(out_schema("lines2", &[("l_id", DataType::Int)]), spec);
        s.resolve(&db).unwrap();
        assert_eq!(s.category(), MigrationCategory::OneToOne);
        assert!(matches!(
            s.tracking(),
            Tracking::Bitmap { driving_alias, granule_rows: 1 } if driving_alias == "l"
        ));
    }

    #[test]
    fn aggregate_classifies_many_to_one_hash() {
        let db = db();
        let spec = SelectSpec::new()
            .from_table("lines", "l")
            .select("o_id", Expr::col("l", "l_o_id"))
            .select_agg("total", AggFunc::Sum, Expr::col("l", "l_amount"));
        let mut s = MigrationStatement::new(
            out_schema(
                "order_totals",
                &[("o_id", DataType::Int), ("total", DataType::Decimal)],
            ),
            spec,
        );
        s.resolve(&db).unwrap();
        assert_eq!(s.category(), MigrationCategory::ManyToOne);
        match s.tracking() {
            Tracking::Hash {
                key_alias,
                key_exprs,
            } => {
                assert_eq!(key_alias, "l");
                assert_eq!(key_exprs.len(), 1);
            }
            other => panic!("expected hash tracking, got {other:?}"),
        }
    }

    #[test]
    fn fk_pk_join_drives_fk_side() {
        let db = db();
        let spec = SelectSpec::new()
            .from_table("lines", "l")
            .from_table("orders", "o")
            .join_on(ColRef::new("l", "l_o_id"), ColRef::new("o", "o_id"))
            .select("l_id", Expr::col("l", "l_id"))
            .select("o_c_id", Expr::col("o", "o_c_id"));
        let mut s = MigrationStatement::new(
            out_schema(
                "lines_denorm",
                &[("l_id", DataType::Int), ("o_c_id", DataType::Int)],
            ),
            spec,
        );
        s.resolve(&db).unwrap();
        // FK side (lines) drives; PK side unique ⇒ 1:1 for the tracked side.
        assert_eq!(s.category(), MigrationCategory::OneToOne);
        assert!(matches!(
            s.tracking(),
            Tracking::Bitmap { driving_alias, .. } if driving_alias == "l"
        ));
    }

    #[test]
    fn pk_side_driving_is_one_to_many() {
        let db = db();
        let spec = SelectSpec::new()
            .from_table("lines", "l")
            .from_table("orders", "o")
            .join_on(ColRef::new("l", "l_o_id"), ColRef::new("o", "o_id"))
            .select("l_id", Expr::col("l", "l_id"));
        let mut s = MigrationStatement::new(out_schema("x", &[("l_id", DataType::Int)]), spec)
            .with_join_strategy(JoinStrategy::DrivingSide { alias: "o".into() });
        s.resolve(&db).unwrap();
        // Driving the PK side: each order joins many lines ⇒ 1:n.
        assert_eq!(s.category(), MigrationCategory::OneToMany);
        assert!(matches!(
            s.tracking(),
            Tracking::Bitmap { driving_alias, .. } if driving_alias == "o"
        ));
    }

    #[test]
    fn many_to_many_join_uses_join_key_hash() {
        let db = db();
        // lines ⋈ stock on a non-unique attribute on both sides.
        let spec = SelectSpec::new()
            .from_table("lines", "l")
            .from_table("stock", "s")
            .join_on(ColRef::new("l", "l_o_id"), ColRef::new("s", "s_i_id"))
            .select("l_id", Expr::col("l", "l_id"))
            .select("s_qty", Expr::col("s", "s_qty"));
        let mut s = MigrationStatement::new(
            out_schema("ls", &[("l_id", DataType::Int), ("s_qty", DataType::Int)]),
            spec,
        );
        s.resolve(&db).unwrap();
        assert_eq!(s.category(), MigrationCategory::ManyToMany);
        assert!(matches!(s.tracking(), Tracking::Hash { key_alias, .. } if key_alias == "l"));
    }

    #[test]
    fn output_schema_mismatch_rejected() {
        let db = db();
        let spec = SelectSpec::new()
            .from_table("lines", "l")
            .select("l_id", Expr::col("l", "l_id"));
        let mut s =
            MigrationStatement::new(out_schema("bad", &[("wrong_name", DataType::Int)]), spec);
        assert!(matches!(s.resolve(&db), Err(Error::InvalidMigration(_))));
    }

    #[test]
    fn unknown_input_table_rejected() {
        let db = db();
        let spec = SelectSpec::new()
            .from_table("nope", "n")
            .select("x", Expr::col("n", "x"));
        let mut s = MigrationStatement::new(out_schema("o", &[("x", DataType::Int)]), spec);
        assert!(matches!(s.resolve(&db), Err(Error::TableNotFound(_))));
    }

    #[test]
    fn plan_collects_inputs_outputs() {
        let db = db();
        let mut plan = MigrationPlan::new("split")
            .with_statement(MigrationStatement::new(
                out_schema("a", &[("l_id", DataType::Int)]),
                SelectSpec::new()
                    .from_table("lines", "l")
                    .select("l_id", Expr::col("l", "l_id")),
            ))
            .with_statement(MigrationStatement::new(
                out_schema("b", &[("l_amount", DataType::Decimal)]),
                SelectSpec::new()
                    .from_table("lines", "l")
                    .select("l_amount", Expr::col("l", "l_amount")),
            ));
        plan.resolve(&db).unwrap();
        assert_eq!(plan.input_tables(), vec!["lines"]);
        assert_eq!(plan.output_tables(), vec!["a", "b"]);
        assert!(plan.big_flip);
    }

    #[test]
    fn duplicate_outputs_rejected() {
        let db = db();
        let stmt = || {
            MigrationStatement::new(
                out_schema("a", &[("l_id", DataType::Int)]),
                SelectSpec::new()
                    .from_table("lines", "l")
                    .select("l_id", Expr::col("l", "l_id")),
            )
        };
        let mut plan = MigrationPlan::new("dup")
            .with_statement(stmt())
            .with_statement(stmt());
        assert!(matches!(plan.resolve(&db), Err(Error::InvalidMigration(_))));
    }

    #[test]
    fn global_aggregate_gets_constant_key() {
        let db = db();
        let spec = SelectSpec::new().from_table("lines", "l").select_agg(
            "total",
            AggFunc::Sum,
            Expr::col("l", "l_amount"),
        );
        let mut s = MigrationStatement::new(
            out_schema("grand_total", &[("total", DataType::Decimal)]),
            spec,
        );
        s.resolve(&db).unwrap();
        assert_eq!(s.category(), MigrationCategory::ManyToOne);
        match s.tracking() {
            Tracking::Hash { key_exprs, .. } => assert_eq!(key_exprs.len(), 1),
            other => panic!("{other:?}"),
        }
    }
}
