//! The per-transaction migration loop (paper §3.2, Algorithm 1).
//!
//! A client request over the new schema precipitates migration work that
//! runs in a **series of transactions separate from, and completed prior
//! to, the client request transaction** ("Dividing work into multiple
//! transactions simplifies abort handling and avoids deadlock").
//!
//! Each loop iteration:
//!
//! 1. starts a fresh migration transaction;
//! 2. walks the candidate granules, calling the tracker (Algorithm 2 or 3)
//!    for each — claimed granules go to the worker-local **WIP** list and
//!    are migrated inside the transaction, contended ones go to **SKIP**;
//! 3. commits, then flips the WIP granules' statuses to *migrated*
//!    (Algorithm 1 line 9) — or, on abort, resets them so another worker
//!    can take over (§3.5);
//! 4. repeats with the SKIP list until it drains (line 10), blocking
//!    briefly on in-progress granules rather than spinning.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{Error, Result, Row, RowId, Value};
use bullfrog_engine::exec::{execute_spec, strip_aliases, ExecOptions};
use bullfrog_engine::{Database, LockPolicy};
use bullfrog_query::{transpose, Expr};
use bullfrog_txn::wal::GranuleKey;
use bullfrog_txn::{LockKey, LockMode, LogRecord, Transaction};

use crate::granule::{Granule, GranuleState, Tracker, WorkList};
use crate::plan::{MigrationStatement, Tracking};
use crate::stats::MigrationStats;

/// Duplicate-migration detection mode (paper §3.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupMode {
    /// BullFrog's native trackers: claim before migrating (Algorithms 2/3).
    Tracker,
    /// `INSERT ... ON CONFLICT DO NOTHING`: migrate optimistically and let
    /// the output table's unique index reject duplicates at insert time.
    OnConflict,
}

/// A resolved statement plus its live tracker — everything the migration
/// loop needs.
pub struct StatementRuntime {
    /// Statement index within the plan (identifies WAL granule records).
    pub id: u32,
    /// The resolved statement.
    pub stmt: MigrationStatement,
    /// Its tracker (bitmap or hashmap per the resolved category).
    pub tracker: Arc<dyn Tracker>,
    /// Shared overhead counters.
    pub stats: Arc<MigrationStats>,
    /// Migration transactions currently in flight for this statement.
    /// Completion requires this gauge at zero as well as every granule
    /// migrated: in ON-CONFLICT mode several workers may copy the same
    /// granule, and a redundant worker can still hold uncommitted
    /// duplicate inserts (pending heap slots) after another worker marked
    /// the granule migrated. Declaring completion before that straggler
    /// commits or rolls back would let post-migration observers see its
    /// transient rows.
    pub in_flight: AtomicU64,
}

/// RAII in-flight marker: one per migration transaction, covering it from
/// before its first row copy until its commit/abort has fully applied.
struct InFlight<'a>(&'a AtomicU64);

impl<'a> InFlight<'a> {
    fn enter(rt: &'a StatementRuntime) -> Self {
        rt.in_flight.fetch_add(1, Ordering::SeqCst);
        InFlight(&rt.in_flight)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl StatementRuntime {
    /// The driving/key alias whose table enumerates candidates.
    pub fn driving_alias(&self) -> &str {
        match self.stmt.tracking() {
            Tracking::Bitmap { driving_alias, .. } => driving_alias,
            Tracking::Hash { key_alias, .. } => key_alias,
            Tracking::PairHash { left_alias, .. } => left_alias,
        }
    }

    /// The catalog name of the driving/key table.
    pub fn driving_table(&self) -> &str {
        let alias = self.driving_alias();
        &self
            .stmt
            .spec
            .input(alias)
            .expect("resolved statement has valid aliases")
            .table
    }

    /// Bitmap granule size in rows (1 for hash statements).
    pub fn granule_rows(&self) -> u64 {
        match self.stmt.tracking() {
            Tracking::Bitmap { granule_rows, .. } => *granule_rows,
            Tracking::Hash { .. } | Tracking::PairHash { .. } => 1,
        }
    }
}

/// Computes the candidate granules a client predicate makes *potentially
/// relevant* (paper §2.1). `None` = the whole table.
pub fn candidates_for(
    db: &Database,
    rt: &StatementRuntime,
    client_pred: Option<&Expr>,
) -> Result<Vec<Granule>> {
    let transposed = transpose(&rt.stmt.spec, client_pred);
    let driving_alias = rt.driving_alias();
    let driving_table = rt.driving_table();

    match rt.stmt.tracking() {
        Tracking::Bitmap { granule_rows, .. } => {
            let filter = transposed.filter_for(driving_alias).map(strip_aliases);
            let table = db.table(driving_table)?;
            let slots = table.heap().slots_per_page();
            let rows = db.select_unlocked(driving_table, filter.as_ref())?;
            let mut granules: Vec<u64> = rows
                .iter()
                .map(|(rid, _)| rid.ordinal(slots) / granule_rows)
                .collect();
            granules.sort_unstable();
            granules.dedup();
            Ok(granules.into_iter().map(Granule::Ordinal).collect())
        }
        Tracking::Hash {
            key_alias,
            key_exprs,
        } => {
            let filter = transposed.filter_for(key_alias).map(strip_aliases);
            let table = db.table(driving_table)?;
            let scope = bullfrog_engine::db::table_scope(&table);
            let stripped_keys: Vec<Expr> = key_exprs.iter().map(strip_aliases).collect();
            let rows = db.select_unlocked(driving_table, filter.as_ref())?;
            let mut keys: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
            for (_, row) in &rows {
                let key: Vec<Value> = stripped_keys
                    .iter()
                    .map(|e| e.eval(&scope, row))
                    .collect::<Result<_>>()?;
                keys.push(key);
            }
            keys.sort();
            keys.dedup();
            Ok(keys.into_iter().map(Granule::Group).collect())
        }
        Tracking::PairHash {
            left_alias,
            right_alias,
        } => pair_candidates(db, rt, &transposed, left_alias, right_alias),
    }
}

/// §3.6 option 3: enumerates the joining `(left row, right row)` pairs the
/// transposed filters make potentially relevant. Each pair is its own
/// granule, keyed by the two row ordinals.
fn pair_candidates(
    db: &Database,
    rt: &StatementRuntime,
    transposed: &bullfrog_query::TransposedPredicates,
    left_alias: &str,
    right_alias: &str,
) -> Result<Vec<Granule>> {
    let spec = &rt.stmt.spec;
    let left_table = db.table(&spec.input(left_alias).expect("resolved").table)?;
    let right_table = db.table(&spec.input(right_alias).expect("resolved").table)?;

    // Join column positions on each side.
    let mut left_cols: Vec<usize> = Vec::new();
    let mut right_cols: Vec<usize> = Vec::new();
    for (a, b) in &spec.join_conds {
        let (l, r) = if a.table.as_deref() == Some(left_alias) {
            (a, b)
        } else {
            (b, a)
        };
        left_cols.push(left_table.schema().col_index(&l.column)?);
        right_cols.push(right_table.schema().col_index(&r.column)?);
    }

    let left_filter = transposed.filter_for(left_alias).map(strip_aliases);
    let right_filter = transposed.filter_for(right_alias).map(strip_aliases);
    let left_rows = db.select_unlocked(left_table.name(), left_filter.as_ref())?;
    let right_rows = db.select_unlocked(right_table.name(), right_filter.as_ref())?;

    // Hash the right side by join key, then probe with the left.
    let right_slots = right_table.heap().slots_per_page();
    let left_slots = left_table.heap().slots_per_page();
    let mut by_key: std::collections::HashMap<Vec<Value>, Vec<u64>> =
        std::collections::HashMap::new();
    for (rid, row) in &right_rows {
        let key = row.key(&right_cols);
        if key.iter().any(Value::is_null) {
            continue;
        }
        by_key
            .entry(key)
            .or_default()
            .push(rid.ordinal(right_slots));
    }
    let mut out = Vec::new();
    for (rid, row) in &left_rows {
        let key = row.key(&left_cols);
        if key.iter().any(Value::is_null) {
            continue;
        }
        if let Some(rights) = by_key.get(&key) {
            let l = rid.ordinal(left_slots);
            for r in rights {
                out.push(Granule::Group(vec![
                    Value::Int(l as i64),
                    Value::Int(*r as i64),
                ]));
            }
        }
    }
    Ok(out)
}

/// Options for one migration-loop run.
#[derive(Clone)]
pub struct MigrateOptions {
    /// Dedup mode (§3.7).
    pub dedup: DedupMode,
    /// How long to block on an in-progress granule before rechecking.
    pub wait_timeout: Duration,
    /// Abort-injection hook for tests: called once per migration
    /// transaction just before commit; returning `true` aborts it.
    pub failpoint: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
    /// Marks granules migrated by a background worker in the stats.
    pub background: bool,
    /// Maximum granules claimed per migration transaction. Algorithm 1
    /// already splits migration work from the client transaction; this
    /// additionally bounds each migration transaction's lock footprint and
    /// abort-retry cost when a request's scope is huge (the
    /// untransposable-predicate worst case migrates a whole table).
    pub txn_granule_cap: usize,
    /// Sibling statement runtimes of the same plan: when an output row
    /// carries a foreign key into another *migrating* output table, the
    /// referenced slice is migrated first through the peer's runtime
    /// (paper §4.5 — constraints widen the migrated unit of data).
    pub peers: Vec<Arc<StatementRuntime>>,
    /// Recursion guard for FK chains between outputs.
    pub fk_depth: u32,
    /// The client transaction that triggered this lazy migration, when
    /// there is one. The migration transaction declares it an ally so the
    /// client's own X locks on input rows (co-maintained plans with
    /// unfrozen inputs write both schemas in one transaction) don't
    /// deadlock the shared thread; locks held by *other* transactions
    /// still block the migration's S reads.
    pub parent: Option<bullfrog_common::TxnId>,
    /// Cooperative cancellation: when set, the migration loop stops with
    /// an error between transactions (background workers pass the
    /// controller's shutdown flag so `Drop` can never hang on a granule
    /// that another worker wedged).
    pub cancel: Option<Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for MigrateOptions {
    fn default() -> Self {
        MigrateOptions {
            dedup: DedupMode::Tracker,
            wait_timeout: Duration::from_millis(10),
            failpoint: None,
            background: false,
            txn_granule_cap: 1024,
            peers: Vec::new(),
            fk_depth: 0,
            parent: None,
            cancel: None,
        }
    }
}

/// Maximum FK-chain depth between migrating outputs before we give up
/// (cyclic foreign keys between new tables are a schema bug).
const MAX_FK_DEPTH: u32 = 4;

/// Migrates whatever peer-output slices the given rows' foreign keys
/// reference, so the FK checks on the upcoming inserts can pass.
fn ensure_fk_targets(
    db: &Database,
    rt: &StatementRuntime,
    rows: &[Row],
    opts: &MigrateOptions,
) -> Result<()> {
    let schema = &rt.stmt.output;
    if schema.foreign_keys.is_empty() || rows.is_empty() {
        return Ok(());
    }
    for fk in &schema.foreign_keys {
        let Some(peer) = opts
            .peers
            .iter()
            .find(|p| p.stmt.output.name == fk.ref_table)
        else {
            continue; // target is not a migrating output
        };
        if opts.fk_depth >= MAX_FK_DEPTH {
            return Err(Error::InvalidMigration(format!(
                "foreign-key chain between migrating outputs deeper than {MAX_FK_DEPTH}                  (cycle through {})",
                fk.ref_table
            )));
        }
        let cols = schema.col_indices(&fk.columns)?;
        let mut keys: Vec<Vec<Value>> = rows.iter().map(|r| r.key(&cols)).collect();
        keys.sort();
        keys.dedup();
        let mut sub_opts = opts.clone();
        sub_opts.fk_depth += 1;
        sub_opts.failpoint = None; // failure injection targets the top level
        for key in keys {
            if key.iter().any(Value::is_null) {
                continue;
            }
            let pred = fk
                .ref_columns
                .iter()
                .zip(key)
                .map(|(c, v)| Expr::column(c.clone()).eq(Expr::Lit(v)))
                .reduce(Expr::and);
            let candidates = candidates_for(db, peer, pred.as_ref())?;
            migrate_candidates(db, peer, candidates, &sub_opts)?;
        }
    }
    Ok(())
}

/// Runs Algorithm 1 to completion for the given candidates: when this
/// returns `Ok`, every candidate granule is *migrated* (by this worker or
/// another) and the client request may proceed on the new schema.
pub fn migrate_candidates(
    db: &Database,
    rt: &StatementRuntime,
    mut candidates: Vec<Granule>,
    opts: &MigrateOptions,
) -> Result<()> {
    match opts.dedup {
        DedupMode::OnConflict => migrate_on_conflict(db, rt, candidates, opts),
        DedupMode::Tracker => {
            let cap = opts.txn_granule_cap.max(1);
            loop {
                if candidates.is_empty() {
                    return Ok(());
                }
                if let Some(cancel) = &opts.cancel {
                    if cancel.load(std::sync::atomic::Ordering::Acquire) {
                        return Err(Error::Internal("migration cancelled".into()));
                    }
                }
                let chunk: Vec<Granule> = candidates[..candidates.len().min(cap)].to_vec();
                match migrate_once(db, rt, &chunk, opts) {
                    Ok(skip) => {
                        let mut rest: Vec<Granule> = candidates.split_off(chunk.len());
                        if skip.is_empty() && rest.is_empty() {
                            return Ok(());
                        }
                        if !skip.is_empty() {
                            // Line 10: block on the first contended granule
                            // until its owner finishes or aborts, then
                            // recheck it (appended after the fresh work).
                            MigrationStats::add(&rt.stats.waits, 1);
                            rt.tracker.wait_not_in_progress(&skip[0], opts.wait_timeout);
                            rest.extend(skip);
                        }
                        candidates = rest;
                    }
                    Err(e) if e.is_retryable() => {
                        // The migration transaction aborted (lock timeout /
                        // injected): its WIP was reset; retry everything.
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
}

/// One iteration of Algorithm 1's do-loop: a single migration transaction.
/// Returns the SKIP list. On abort the WIP statuses are reset and the
/// retryable error is returned.
fn migrate_once(
    db: &Database,
    rt: &StatementRuntime,
    candidates: &[Granule],
    opts: &MigrateOptions,
) -> Result<Vec<Granule>> {
    let _in_flight = InFlight::enter(rt);
    let mut wip = WorkList::new();
    let mut skip = WorkList::new();
    let mut txn = db.begin();
    if let Some(parent) = opts.parent {
        txn.set_ally(parent);
    }

    let mut counts = RowCounts::default();
    let mut failure: Option<Error> = None;
    for g in candidates {
        if rt.tracker.try_claim(g, &mut wip, &mut skip) {
            match migrate_granule(db, &mut txn, rt, g, DedupMode::Tracker, opts) {
                Ok(c) => counts.merge(c),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
    }
    MigrationStats::add(&rt.stats.skips, skip.len() as u64);

    let inject_abort = opts.failpoint.as_ref().map(|f| f()).unwrap_or(false);

    if let Some(e) = failure {
        db.abort(&mut txn);
        rt.tracker.reset_aborted(wip.items());
        MigrationStats::add(&rt.stats.migration_aborts, 1);
        return Err(e);
    }
    if inject_abort {
        db.abort(&mut txn);
        rt.tracker.reset_aborted(wip.items());
        MigrationStats::add(&rt.stats.migration_aborts, 1);
        return Err(Error::TxnAborted(txn.id()));
    }
    // Background migrations pipeline past the group-commit barrier:
    // their batch is ordered in the WAL at enqueue time, and every
    // durability acknowledgement waits on the *merged* (all-shard)
    // horizon, so a client that later reads migrated rows and commits
    // at a higher LSN transitively covers this batch regardless of
    // which shards the two transactions hash to. Recovery replays only
    // the gap-free durable prefix, so granule marks and rows stay
    // atomic, and a crash can only lose this batch together with
    // everything that depended on it — the granule then simply shows
    // unmigrated and is copied again. Foreground (lazy, on the client's
    // query path) keeps synchronous semantics — the client is about to
    // read what it migrated.
    let committed = if opts.background {
        db.commit_nowait(&mut txn).map(drop)
    } else {
        db.commit(&mut txn)
    };
    match committed {
        Ok(()) => {
            rt.tracker.mark_migrated(wip.items());
            counts.apply(&rt.stats);
            MigrationStats::add(&rt.stats.migration_txns, 1);
            MigrationStats::add(&rt.stats.granules_migrated, wip.len() as u64);
            if opts.background {
                MigrationStats::add(&rt.stats.background_granules, wip.len() as u64);
            }
            Ok(skip.into_items())
        }
        Err(e) => {
            db.abort(&mut txn);
            rt.tracker.reset_aborted(wip.items());
            MigrationStats::add(&rt.stats.migration_aborts, 1);
            Err(e)
        }
    }
}

/// §3.7 mode: no claims; every candidate is migrated optimistically with
/// `ON CONFLICT DO NOTHING` inserts, then recorded as migrated (so
/// completion is still observable).
fn migrate_on_conflict(
    db: &Database,
    rt: &StatementRuntime,
    candidates: Vec<Granule>,
    opts: &MigrateOptions,
) -> Result<()> {
    let _in_flight = InFlight::enter(rt);
    let mut txn = db.begin();
    if let Some(parent) = opts.parent {
        txn.set_ally(parent);
    }
    let mut counts = RowCounts::default();
    for g in &candidates {
        if rt.tracker.state(g) == GranuleState::Migrated {
            // Skips row copies for already-migrated granules. Also load-
            // bearing for quiescence: once every granule is migrated and
            // `in_flight` has drained, any later transaction skips all its
            // candidates here, so no new duplicate rows appear after
            // completion was observable.
            continue;
        }
        match migrate_granule(db, &mut txn, rt, g, DedupMode::OnConflict, opts) {
            Ok(c) => counts.merge(c),
            Err(e) => {
                db.abort(&mut txn);
                return Err(e);
            }
        }
    }
    let inject_abort = opts.failpoint.as_ref().map(|f| f()).unwrap_or(false);
    if inject_abort {
        db.abort(&mut txn);
        MigrationStats::add(&rt.stats.migration_aborts, 1);
        return Err(Error::TxnAborted(txn.id()));
    }
    // Same async-commit rule as `migrate_once`: background transactions
    // enqueue and move on, foreground ones wait for durability.
    let committed = if opts.background {
        db.commit_nowait(&mut txn).map(drop)
    } else {
        db.commit(&mut txn)
    };
    match committed {
        Ok(()) => {
            counts.apply(&rt.stats);
            MigrationStats::add(&rt.stats.migration_txns, 1);
            let mut newly = 0;
            for g in &candidates {
                if rt.tracker.mark_migrated_direct(g) {
                    newly += 1;
                }
            }
            MigrationStats::add(&rt.stats.granules_migrated, newly);
            if opts.background {
                MigrationStats::add(&rt.stats.background_granules, newly);
            }
            Ok(())
        }
        Err(e) => {
            db.abort(&mut txn);
            MigrationStats::add(&rt.stats.migration_aborts, 1);
            Err(e)
        }
    }
}

/// Row-level outcome counters of one granule migration, applied to the
/// shared stats only after the surrounding transaction commits (aborted
/// attempts must not inflate the counters).
#[derive(Debug, Default, Clone, Copy)]
struct RowCounts {
    migrated: u64,
    dropped: u64,
    conflicts: u64,
}

impl RowCounts {
    fn merge(&mut self, other: RowCounts) {
        self.migrated += other.migrated;
        self.dropped += other.dropped;
        self.conflicts += other.conflicts;
    }

    fn apply(&self, stats: &MigrationStats) {
        MigrationStats::add(&stats.rows_migrated, self.migrated);
        MigrationStats::add(&stats.rows_dropped, self.dropped);
        MigrationStats::add(&stats.conflict_skips, self.conflicts);
    }
}

/// Physically migrates one granule inside `txn`: evaluates the migration
/// statement restricted to the granule and inserts the outputs into the
/// new table.
fn migrate_granule(
    db: &Database,
    txn: &mut Transaction,
    rt: &StatementRuntime,
    g: &Granule,
    dedup: DedupMode,
    opts: &MigrateOptions,
) -> Result<RowCounts> {
    let obs = db.obs();
    let started = std::time::Instant::now();
    let t0 = obs.now_us();
    let mut counts = RowCounts::default();
    let output = execute_granule_spec(db, txn, rt, g)?;
    ensure_fk_targets(db, rt, &output, opts)?;
    let out_table = &rt.stmt.output.name;
    for row in output {
        match dedup {
            DedupMode::Tracker => match db.insert_with(txn, out_table, row, false) {
                Ok(_) => counts.migrated += 1,
                Err(Error::UniqueViolation { .. }) => {
                    // §2.4: a constraint added by the migration drops this
                    // record; warn (count) and continue lazily.
                    counts.dropped += 1;
                }
                Err(e) => return Err(e),
            },
            DedupMode::OnConflict => {
                if db
                    .insert_or_ignore_with(txn, out_table, row, false)?
                    .is_some()
                {
                    counts.migrated += 1;
                } else {
                    counts.conflicts += 1;
                }
            }
        }
    }
    // Granule record for tracker recovery (§3.5).
    txn.push_redo(LogRecord::MigrationGranule {
        txn: txn.id(),
        migration: rt.id,
        granule: match g {
            Granule::Ordinal(o) => GranuleKey::Ordinal(*o),
            Granule::Group(k) => GranuleKey::Group(k.clone()),
        },
    });
    // Only completed granules record: an aborted attempt retries and
    // would otherwise double-count its copy window.
    obs.tracer()
        .record("migrate.granule", counts.migrated, t0, obs.now_us());
    obs.histogram("migrate.granule_us")
        .record_micros(started.elapsed());
    Ok(counts)
}

/// Evaluates the statement spec restricted to one granule.
///
/// Under 2PL, old-schema reads take SHARED locks in the migration
/// transaction: the logical flip freezes the input tables against *new*
/// writers, but a client transaction that updated an input row *before*
/// the flip may still be in flight, holding X locks over dirty in-place
/// heap values. An unlocked read in that window can capture an
/// uncommitted update that later aborts (or see half of one that
/// commits) and freeze the wrong value into the output table. The S lock
/// blocks until the straggler resolves, so the copied value is always a
/// committed one; the freeze guarantees the wait is bounded by the
/// in-flight transactions alone.
///
/// Under snapshot isolation there are no S locks to take: the migration
/// transaction reads the version chains at its own snapshot, which is a
/// committed prefix by construction. The flip quiesces pre-flip writers
/// before migrations start (see the controller), so the value visible at
/// any post-flip snapshot is the input row's final committed value — the
/// same value the 2PL S lock would have waited for.
fn execute_granule_spec(
    db: &Database,
    txn: &mut Transaction,
    rt: &StatementRuntime,
    g: &Granule,
) -> Result<Vec<Row>> {
    let driving_alias = rt.driving_alias().to_owned();
    let driving_table = db.table(rt.driving_table())?;
    let snap = txn.snapshot_ts();
    // Visibility id for chain reads: the ally (the suspended client this
    // migration runs on behalf of) when set, so a co-maintained client's
    // own uncommitted input-table writes are migrated — the snapshot-mode
    // analogue of the ally lock pass-through. The migration transaction
    // itself never writes input tables, so its own id is only needed when
    // there is no ally.
    let vis = txn.ally().map(|a| a.0).unwrap_or(txn.id().0);

    let mut opts = ExecOptions {
        lock: LockPolicy::Shared,
        ..Default::default()
    };
    match (rt.stmt.tracking(), g) {
        (Tracking::Bitmap { granule_rows, .. }, Granule::Ordinal(go)) => {
            // The granule covers `granule_rows` consecutive row ordinals;
            // ALL its live rows migrate together (page granularity migrates
            // the page, §4.4.3). Lock each row before reading it (2PL) or
            // read its chain at the migration snapshot (SI).
            let slots = driving_table.heap().slots_per_page();
            let start = go * granule_rows;
            let mut rows: Vec<(RowId, Row)> = Vec::new();
            if snap.is_none() {
                db.lock(txn, LockKey::Table(driving_table.id()), LockMode::IS)?;
            }
            for ordinal in start..start + granule_rows {
                let rid = RowId::from_ordinal(ordinal, slots);
                let row = match snap {
                    Some(snap) => driving_table.heap().get_visible(rid, Some(vis), snap),
                    None => {
                        db.lock(txn, LockKey::Row(driving_table.id(), rid), LockMode::S)?;
                        driving_table.heap().get(rid)
                    }
                };
                if let Some(row) = row {
                    rows.push((rid, row));
                }
            }
            opts.driving = vec![(driving_alias, rows)];
        }
        (
            Tracking::Hash {
                key_alias,
                key_exprs,
            },
            Granule::Group(key),
        ) => {
            // Restrict the spec to the group: key_exprs = key values.
            let mut filter: Option<Expr> = None;
            for (e, v) in key_exprs.iter().zip(key.iter()) {
                let conj = e.clone().eq(Expr::Lit(v.clone()));
                filter = Some(match filter {
                    None => conj,
                    Some(f) => f.and(conj),
                });
            }
            if let Some(f) = filter {
                opts.extra_filters.insert(key_alias.clone(), f);
            }
        }
        (
            Tracking::PairHash {
                left_alias,
                right_alias,
            },
            Granule::Group(key),
        ) => {
            // key = [left ordinal, right ordinal]; pin one row per side.
            let (l, r) = match key.as_slice() {
                [Value::Int(l), Value::Int(r)] => (*l as u64, *r as u64),
                other => {
                    return Err(Error::Internal(format!(
                        "pair granule key must be two ordinals, got {other:?}"
                    )))
                }
            };
            let spec = &rt.stmt.spec;
            let right_table = db.table(&spec.input(right_alias).expect("resolved").table)?;
            let left_rid = RowId::from_ordinal(l, driving_table.heap().slots_per_page());
            let right_rid = RowId::from_ordinal(r, right_table.heap().slots_per_page());
            let (left_row, right_row) = match snap {
                Some(snap) => (
                    driving_table.heap().get_visible(left_rid, Some(vis), snap),
                    right_table.heap().get_visible(right_rid, Some(vis), snap),
                ),
                None => {
                    db.lock(txn, LockKey::Table(driving_table.id()), LockMode::IS)?;
                    db.lock(txn, LockKey::Row(driving_table.id(), left_rid), LockMode::S)?;
                    db.lock(txn, LockKey::Table(right_table.id()), LockMode::IS)?;
                    db.lock(txn, LockKey::Row(right_table.id(), right_rid), LockMode::S)?;
                    (
                        driving_table.heap().get(left_rid),
                        right_table.heap().get(right_rid),
                    )
                }
            };
            let left_rows = left_row
                .map(|row| vec![(left_rid, row)])
                .unwrap_or_default();
            let right_rows = right_row
                .map(|row| vec![(right_rid, row)])
                .unwrap_or_default();
            opts.driving = vec![
                (left_alias.clone(), left_rows),
                (right_alias.clone(), right_rows),
            ];
        }
        (t, g) => {
            return Err(Error::Internal(format!(
                "granule kind {g:?} does not match tracking {t:?}"
            )))
        }
    }
    let out = execute_spec(db, txn, &rt.stmt.spec, &opts)?;
    Ok(out.rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::BitmapTracker;
    use crate::hashmap::HashTracker;
    use crate::plan::MigrationStatement;
    use bullfrog_common::{row, ColumnDef, DataType, TableSchema};
    use bullfrog_query::{AggFunc, SelectSpec};
    use std::sync::atomic::Ordering;

    fn orders_db() -> Arc<Database> {
        let db = Arc::new(Database::new());
        db.create_table(
            TableSchema::new(
                "order_line",
                vec![
                    ColumnDef::new("ol_o_id", DataType::Int),
                    ColumnDef::new("ol_number", DataType::Int),
                    ColumnDef::new("ol_amount", DataType::Decimal),
                ],
            )
            .with_primary_key(&["ol_o_id", "ol_number"]),
        )
        .unwrap();
        db.with_txn(|txn| {
            for o in 0..20i64 {
                for n in 0..5i64 {
                    db.insert(txn, "order_line", row![o, n, o * 100 + n])?;
                }
            }
            Ok(())
        })
        .unwrap();
        db
    }

    /// 1:1 statement: copy order_line adding a derived column.
    fn copy_runtime(db: &Database) -> StatementRuntime {
        let spec = SelectSpec::new()
            .from_table("order_line", "ol")
            .select("ol_o_id", Expr::col("ol", "ol_o_id"))
            .select("ol_number", Expr::col("ol", "ol_number"))
            .select(
                "double_amount",
                Expr::col("ol", "ol_amount").mul(Expr::lit(2)),
            );
        let out = TableSchema::new(
            "order_line2",
            vec![
                ColumnDef::new("ol_o_id", DataType::Int),
                ColumnDef::new("ol_number", DataType::Int),
                ColumnDef::new("double_amount", DataType::Decimal),
            ],
        )
        .with_primary_key(&["ol_o_id", "ol_number"]);
        db.create_table(out.clone()).unwrap();
        let mut stmt = MigrationStatement::new(out, spec);
        stmt.resolve(db).unwrap();
        let cap = db.table("order_line").unwrap().heap().ordinal_bound();
        StatementRuntime {
            id: 0,
            stmt,
            tracker: Arc::new(BitmapTracker::new(cap, 1)),
            stats: Arc::new(MigrationStats::new()),
            in_flight: AtomicU64::new(0),
        }
    }

    /// n:1 statement: per-order totals.
    fn agg_runtime(db: &Database) -> StatementRuntime {
        let spec = SelectSpec::new()
            .from_table("order_line", "ol")
            .select("o_id", Expr::col("ol", "ol_o_id"))
            .select_agg("total", AggFunc::Sum, Expr::col("ol", "ol_amount"));
        let out = TableSchema::new(
            "order_totals",
            vec![
                ColumnDef::new("o_id", DataType::Int),
                ColumnDef::new("total", DataType::Decimal),
            ],
        )
        .with_primary_key(&["o_id"]);
        db.create_table(out.clone()).unwrap();
        let mut stmt = MigrationStatement::new(out, spec);
        stmt.resolve(db).unwrap();
        StatementRuntime {
            id: 1,
            stmt,
            tracker: Arc::new(HashTracker::new()),
            stats: Arc::new(MigrationStats::new()),
            in_flight: AtomicU64::new(0),
        }
    }

    #[test]
    fn candidates_follow_the_predicate() {
        let db = orders_db();
        let rt = copy_runtime(&db);
        let pred = Expr::column("ol_o_id").eq(Expr::lit(3));
        let c = candidates_for(&db, &rt, Some(&pred)).unwrap();
        assert_eq!(c.len(), 5, "five lines for order 3");
        let all = candidates_for(&db, &rt, None).unwrap();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn hash_candidates_are_group_keys() {
        let db = orders_db();
        let rt = agg_runtime(&db);
        let pred = Expr::column("o_id").eq(Expr::lit(3));
        let c = candidates_for(&db, &rt, Some(&pred)).unwrap();
        assert_eq!(c, vec![Granule::Group(vec![Value::Int(3)])]);
        let all = candidates_for(&db, &rt, None).unwrap();
        assert_eq!(all.len(), 20, "one group per order");
    }

    #[test]
    fn migrate_selected_candidates_and_query() {
        let db = orders_db();
        let rt = copy_runtime(&db);
        let pred = Expr::column("ol_o_id").eq(Expr::lit(3));
        let c = candidates_for(&db, &rt, Some(&pred)).unwrap();
        migrate_candidates(&db, &rt, c, &MigrateOptions::default()).unwrap();
        let rows = db.select_unlocked("order_line2", Some(&pred)).unwrap();
        assert_eq!(rows.len(), 5);
        // Derived column is computed.
        assert!(rows.iter().any(|(_, r)| r[2] == Value::Decimal(2 * 302)));
        assert_eq!(MigrationStats::get(&rt.stats.rows_migrated), 5);
        assert_eq!(MigrationStats::get(&rt.stats.granules_migrated), 5);
        // Re-running is a no-op: already migrated.
        let c = candidates_for(&db, &rt, Some(&pred)).unwrap();
        migrate_candidates(&db, &rt, c, &MigrateOptions::default()).unwrap();
        assert_eq!(MigrationStats::get(&rt.stats.rows_migrated), 5);
    }

    #[test]
    fn aggregate_group_migrates_whole_group() {
        let db = orders_db();
        let rt = agg_runtime(&db);
        let c = vec![Granule::Group(vec![Value::Int(7)])];
        migrate_candidates(&db, &rt, c, &MigrateOptions::default()).unwrap();
        let rows = db.select_unlocked("order_totals", None).unwrap();
        assert_eq!(rows.len(), 1);
        let expected: i64 = (0..5).map(|n| 700 + n).sum();
        assert_eq!(
            rows[0].1,
            Row(vec![Value::Int(7), Value::Decimal(expected)])
        );
    }

    #[test]
    fn injected_abort_resets_and_retry_succeeds() {
        let db = orders_db();
        let rt = copy_runtime(&db);
        let c = candidates_for(&db, &rt, None).unwrap();
        // Fail the first 3 migration transactions, then succeed.
        let countdown = Arc::new(std::sync::atomic::AtomicU64::new(3));
        let cd = Arc::clone(&countdown);
        let opts = MigrateOptions {
            failpoint: Some(Arc::new(move || {
                cd.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
            })),
            ..Default::default()
        };
        migrate_candidates(&db, &rt, c, &opts).unwrap();
        assert_eq!(MigrationStats::get(&rt.stats.migration_aborts), 3);
        // All rows present exactly once despite the aborts.
        let rows = db.select_unlocked("order_line2", None).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(MigrationStats::get(&rt.stats.rows_migrated), 100);
    }

    #[test]
    fn on_conflict_mode_is_idempotent() {
        let db = orders_db();
        let rt = copy_runtime(&db);
        let opts = MigrateOptions {
            dedup: DedupMode::OnConflict,
            ..Default::default()
        };
        let pred = Expr::column("ol_o_id").eq(Expr::lit(3));
        let c = candidates_for(&db, &rt, Some(&pred)).unwrap();
        migrate_candidates(&db, &rt, c.clone(), &opts).unwrap();
        assert_eq!(MigrationStats::get(&rt.stats.rows_migrated), 5);
        // Force a re-migration with a cleared tracker state view: simulate
        // a second worker that never saw the first's tracker.
        let rt2 = StatementRuntime {
            id: 0,
            stmt: rt.stmt.clone(),
            tracker: Arc::new(BitmapTracker::new(
                db.table("order_line").unwrap().heap().ordinal_bound(),
                1,
            )),
            stats: Arc::new(MigrationStats::new()),
            in_flight: AtomicU64::new(0),
        };
        migrate_candidates(&db, &rt2, c, &opts).unwrap();
        assert_eq!(
            MigrationStats::get(&rt2.stats.conflict_skips),
            5,
            "duplicates rejected at insert"
        );
        assert_eq!(db.table("order_line2").unwrap().live_count(), 5);
    }

    #[test]
    fn concurrent_workers_migrate_exactly_once() {
        let db = orders_db();
        let rt = Arc::new(copy_runtime(&db));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let db = Arc::clone(&db);
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                let c = candidates_for(&db, &rt, None).unwrap();
                migrate_candidates(&db, &rt, c, &MigrateOptions::default()).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.table("order_line2").unwrap().live_count(), 100);
        assert_eq!(MigrationStats::get(&rt.stats.rows_migrated), 100);
        assert_eq!(MigrationStats::get(&rt.stats.granules_migrated), 100);
    }

    #[test]
    fn concurrent_workers_with_aborts_still_exactly_once() {
        let db = orders_db();
        let rt = Arc::new(agg_runtime(&db));
        let mut handles = Vec::new();
        for w in 0..8u64 {
            let db = Arc::clone(&db);
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                // Every worker aborts its first two migration txns.
                let countdown = Arc::new(std::sync::atomic::AtomicU64::new(2));
                let cd = Arc::clone(&countdown);
                let opts = MigrateOptions {
                    failpoint: Some(Arc::new(move || {
                        cd.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                            .is_ok()
                    })),
                    ..Default::default()
                };
                let _ = w;
                let c = candidates_for(&db, &rt, None).unwrap();
                migrate_candidates(&db, &rt, c, &opts).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let rows = db.select_unlocked("order_totals", None).unwrap();
        assert_eq!(rows.len(), 20, "each order total exactly once");
        assert_eq!(MigrationStats::get(&rt.stats.granules_migrated), 20);
        assert!(MigrationStats::get(&rt.stats.migration_aborts) >= 1);
    }
}
