//! BullFrog: online schema evolution via lazy evaluation.
//!
//! Reproduction of the SIGMOD 2021 paper's contribution. When a schema
//! migration is submitted, the database **logically** switches to the new
//! schema immediately; tuples are **physically** migrated lazily, as client
//! requests touch them, with background threads guaranteeing eventual
//! completion. Custom concurrency-control structures make the migration
//! **exactly-once** under contention:
//!
//! - [`bitmap::BitmapTracker`] — two bits per migration granule
//!   (`[lock, migrate]`), partitioned latches; Algorithm 2 of the paper.
//!   Used for 1:1 and 1:n migrations.
//! - [`hashmap::HashTracker`] — partitioned hash map from group key to
//!   `InProgress`/`Migrated`/`Aborted`; Algorithm 3. Used for n:1 and n:n
//!   migrations.
//! - [`migrate`] — the per-transaction migration loop (Algorithm 1): WIP
//!   and SKIP lists, separate migration transactions, abort reset, and the
//!   skip-recheck loop.
//! - [`plan`] — migration plans: output schemas, defining
//!   [`SelectSpec`](bullfrog_query::SelectSpec)s, and automatic
//!   classification into the four migration categories of §3.1 (including
//!   the FK-PK join options of §3.6).
//! - [`controller::Bullfrog`] — the client-facing façade: logical flip,
//!   predicate transposition per request, constraint-aware scope widening,
//!   rejection of retired-schema access.
//! - [`background`] — background migration threads (§2.2).
//! - [`baselines`] — the eager and multi-step migration baselines the
//!   paper evaluates against, behind the same [`access::ClientAccess`]
//!   interface.
//! - [`recovery`] — rebuilding tracker state from the WAL after a crash
//!   (§3.5; described there as future work, implemented here).

pub mod access;
pub mod background;
pub mod baselines;
pub mod bitmap;
pub mod controller;
pub mod granule;
pub mod hashmap;
pub mod migrate;
pub mod plan;
pub mod recovery;
pub mod stats;

pub use access::{ClientAccess, Passthrough, SchemaVersion};
pub use background::BackgroundConfig;
pub use baselines::{EagerMigrator, MultiStepMigrator};
pub use bitmap::BitmapTracker;
pub use controller::{
    ActiveMigration, Bullfrog, BullfrogConfig, MigrationProgress, SubmitOptions, TrackerCaps,
};
pub use granule::{Granule, GranuleState, Tracker};
pub use hashmap::HashTracker;
pub use migrate::{
    candidates_for, migrate_candidates, DedupMode, MigrateOptions, StatementRuntime,
};
pub use plan::{JoinStrategy, MigrationCategory, MigrationPlan, MigrationStatement, Tracking};
pub use stats::{DurabilityStats, MigrationStats, MigrationStatsSnapshot};
