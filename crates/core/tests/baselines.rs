//! Tests of the eager and multi-step baselines, including equivalence of
//! their final states with lazy BullFrog's.

use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{row, ColumnDef, DataType, Row, TableSchema, Value};
use bullfrog_core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, EagerMigrator, MigrationPlan,
    MigrationStatement, MultiStepMigrator, SchemaVersion,
};
use bullfrog_engine::{Database, DbConfig, LockPolicy};
use bullfrog_query::{AggFunc, Expr, SelectSpec};

fn seed_db(rows: i64) -> Arc<Database> {
    let db = Arc::new(Database::with_config(DbConfig {
        lock_timeout: Duration::from_millis(100),
        ..Default::default()
    }));
    db.create_table(
        TableSchema::new(
            "items",
            vec![
                ColumnDef::new("i_id", DataType::Int),
                ColumnDef::new("i_cat", DataType::Int),
                ColumnDef::new("i_price", DataType::Decimal),
            ],
        )
        .with_primary_key(&["i_id"]),
    )
    .unwrap();
    for i in 0..rows {
        db.insert_unlogged("items", row![i, i % 7, i * 10]).unwrap();
    }
    db
}

fn copy_plan() -> MigrationPlan {
    MigrationPlan::new("item_copy").with_statement(MigrationStatement::new(
        TableSchema::new(
            "items2",
            vec![
                ColumnDef::new("i_id", DataType::Int),
                ColumnDef::new("i_cat", DataType::Int),
                ColumnDef::new("i_price", DataType::Decimal),
            ],
        )
        .with_primary_key(&["i_id"]),
        SelectSpec::new()
            .from_table("items", "i")
            .select("i_id", Expr::col("i", "i_id"))
            .select("i_cat", Expr::col("i", "i_cat"))
            .select("i_price", Expr::col("i", "i_price")),
    ))
}

fn agg_plan() -> MigrationPlan {
    MigrationPlan::new("cat_totals").with_statement(MigrationStatement::new(
        TableSchema::new(
            "cat_totals",
            vec![
                ColumnDef::new("cat", DataType::Int),
                ColumnDef::nullable("total", DataType::Decimal),
            ],
        )
        .with_primary_key(&["cat"]),
        SelectSpec::new()
            .from_table("items", "i")
            .select("cat", Expr::col("i", "i_cat"))
            .select_agg("total", AggFunc::Sum, Expr::col("i", "i_price")),
    ))
}

fn sorted_rows(db: &Database, table: &str) -> Vec<Row> {
    let mut rows: Vec<Row> = db
        .select_unlocked(table, None)
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    rows.sort();
    rows
}

#[test]
fn eager_migrates_everything_at_once() {
    let db = seed_db(200);
    let eager = EagerMigrator::new(Arc::clone(&db));
    assert_eq!(eager.version(), SchemaVersion::Old);
    eager.migrate(copy_plan()).unwrap();
    assert_eq!(eager.version(), SchemaVersion::New);
    assert_eq!(db.table("items2").unwrap().live_count(), 200);
}

#[test]
fn eager_blocks_concurrent_clients_until_done() {
    let db = seed_db(3000);
    let eager = Arc::new(EagerMigrator::new(Arc::clone(&db)));

    let e2 = Arc::clone(&eager);
    let migrator = std::thread::spawn(move || e2.migrate(copy_plan()));

    // Wait for the flip, then issue a client read. Under 2PL it must
    // observe the complete output (it queues behind the X table lock) or
    // time out while the migration holds the lock; under snapshot
    // isolation the read is lock-free and sees the pre-commit state (no
    // rows) until the single migration transaction commits. Either way a
    // partial result is never visible.
    while eager.version() == SchemaVersion::Old {
        std::thread::yield_now();
    }
    let si = db.config().mode.is_snapshot();
    let mut observed = None;
    for _ in 0..2000 {
        let mut txn = db.begin();
        match eager.select(&mut txn, "items2", None, LockPolicy::Shared) {
            Ok(rows) => {
                let _ = db.commit(&mut txn);
                if si && rows.is_empty() {
                    // Pre-commit snapshot; the copy is still running.
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
                observed = Some(rows.len());
                break;
            }
            Err(_) => {
                db.abort(&mut txn);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    migrator.join().unwrap().unwrap();
    assert_eq!(observed, Some(3000), "reads never see a partial migration");
}

#[test]
fn multistep_reads_old_until_caught_up() {
    let db = seed_db(500);
    let ms = MultiStepMigrator::new(Arc::clone(&db));
    ms.register(copy_plan()).unwrap();
    // Until the copier finishes, clients stay on the old schema.
    if !ms.is_caught_up() {
        assert_eq!(ms.version(), SchemaVersion::Old);
    }
    assert!(ms.wait_caught_up(Duration::from_secs(30)));
    assert_eq!(ms.version(), SchemaVersion::New);
    assert_eq!(db.table("items2").unwrap().live_count(), 500);
}

#[test]
fn multistep_dual_writes_reach_the_new_schema() {
    let db = seed_db(2000);
    let ms = MultiStepMigrator::new(Arc::clone(&db));
    ms.register(copy_plan()).unwrap();

    // While the copier runs, perform old-schema writes through the client
    // interface: insert, update, delete. Retry: under snapshot isolation
    // the dual-write mirror can lose a first-updater-wins race against a
    // copier transaction, which is a retryable conflict.
    db.with_txn_retry(20, |txn| {
        ms.insert(txn, "items", row![5000, 1, 999])?;
        Ok(())
    })
    .unwrap();
    db.with_txn_retry(20, |txn| {
        let (rid, _) = ms
            .get_by_pk(txn, "items", &[Value::Int(10)], LockPolicy::Exclusive)?
            .unwrap();
        ms.update(txn, "items", rid, row![10, 3, 12345])
    })
    .unwrap();
    db.with_txn_retry(20, |txn| {
        let (rid, _) = ms
            .get_by_pk(txn, "items", &[Value::Int(11)], LockPolicy::Exclusive)?
            .unwrap();
        ms.delete(txn, "items", rid).map(|_| ())
    })
    .unwrap();

    assert!(ms.wait_caught_up(Duration::from_secs(60)));
    // The new schema reflects every write exactly.
    assert_eq!(sorted_rows(&db, "items"), sorted_rows(&db, "items2"));
    let t2 = db.table("items2").unwrap();
    assert_eq!(
        t2.get_by_pk(&[Value::Int(5000)]).unwrap().1,
        row![5000, 1, 999]
    );
    assert_eq!(
        t2.get_by_pk(&[Value::Int(10)]).unwrap().1,
        row![10, 3, 12345]
    );
    assert!(t2.get_by_pk(&[Value::Int(11)]).is_none());
}

#[test]
fn multistep_aggregate_mirror_keeps_groups_fresh() {
    let db = seed_db(700);
    let ms = MultiStepMigrator::new(Arc::clone(&db));
    ms.register(agg_plan()).unwrap();

    // Update an item's price mid-copy: its category total must be correct
    // at the end. Retried because the mirror's slice rewrite can lose a
    // first-updater-wins race against the copier under snapshot isolation.
    db.with_txn_retry(20, |txn| {
        let (rid, _) = ms
            .get_by_pk(txn, "items", &[Value::Int(14)], LockPolicy::Exclusive)?
            .unwrap();
        ms.update(txn, "items", rid, row![14, 0, 1_000_000])
    })
    .unwrap();
    assert!(ms.wait_caught_up(Duration::from_secs(60)));

    // Recompute expectation from the old schema directly.
    let mut expected = std::collections::BTreeMap::new();
    for (_, r) in db.select_unlocked("items", None).unwrap() {
        *expected.entry(r[1].clone()).or_insert(0i64) += r[2].as_i64().unwrap();
    }
    for (_, r) in db.select_unlocked("cat_totals", None).unwrap() {
        assert_eq!(
            r[1].as_i64().unwrap(),
            expected[&r[0]],
            "category {} total",
            r[0]
        );
    }
}

#[test]
fn lazy_and_eager_final_states_agree() {
    // Same data, two strategies, identical end state.
    let db_lazy = seed_db(300);
    let db_eager = seed_db(300);

    let bf = Bullfrog::with_config(
        Arc::clone(&db_lazy),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: true,
                start_delay: Duration::from_millis(5),
                batch: 64,
                pause: Duration::ZERO,
                threads: 2,
            },
            ..Default::default()
        },
    );
    bf.submit_migration(agg_plan()).unwrap();
    // Touch some groups through the client path too.
    for cat in 0..7i64 {
        let mut txn = db_lazy.begin();
        let _ = bf.get_by_pk(
            &mut txn,
            "cat_totals",
            &[Value::Int(cat)],
            LockPolicy::Shared,
        );
        let _ = db_lazy.commit(&mut txn);
    }
    assert!(bf.wait_migration_complete(Duration::from_secs(30)));
    bf.shutdown_background();

    let eager = EagerMigrator::new(Arc::clone(&db_eager));
    eager.migrate(agg_plan()).unwrap();

    assert_eq!(
        sorted_rows(&db_lazy, "cat_totals"),
        sorted_rows(&db_eager, "cat_totals")
    );
}
