//! §3.6: the three join-migration options (drive the FK side, drive the
//! PK side, hashmap on the join key) must all produce the same final
//! output — they differ only in what gets locked/tracked and how much
//! data one migration task drags along.

use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{row, ColumnDef, DataType, Row, TableSchema, Value};
use bullfrog_core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, JoinStrategy, MigrationCategory,
    MigrationPlan, MigrationStatement, Tracking,
};
use bullfrog_engine::{Database, LockPolicy};
use bullfrog_query::{ColRef, Expr, SelectSpec};

fn seed() -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.create_table(
        TableSchema::new(
            "authors",
            vec![
                ColumnDef::new("a_id", DataType::Int),
                ColumnDef::new("a_name", DataType::Text),
            ],
        )
        .with_primary_key(&["a_id"]),
    )
    .unwrap();
    db.create_table(
        TableSchema::new(
            "books",
            vec![
                ColumnDef::new("b_id", DataType::Int),
                ColumnDef::new("b_author", DataType::Int),
                ColumnDef::new("b_title", DataType::Text),
            ],
        )
        .with_primary_key(&["b_id"]),
    )
    .unwrap();
    db.create_index("books", "books_author_idx", &["b_author"], false)
        .unwrap();
    for a in 0..10 {
        db.insert_unlogged("authors", row![a, format!("author{a}")])
            .unwrap();
    }
    for b in 0..100 {
        db.insert_unlogged("books", row![b, b % 10, format!("title{b}")])
            .unwrap();
    }
    db
}

fn denorm_stmt(strategy: Option<JoinStrategy>) -> MigrationStatement {
    let spec = SelectSpec::new()
        .from_table("books", "b")
        .from_table("authors", "a")
        .join_on(ColRef::new("b", "b_author"), ColRef::new("a", "a_id"))
        .select("b_id", Expr::col("b", "b_id"))
        .select("b_title", Expr::col("b", "b_title"))
        .select("a_name", Expr::col("a", "a_name"));
    let schema = TableSchema::new(
        "books_denorm",
        vec![
            ColumnDef::new("b_id", DataType::Int),
            ColumnDef::new("b_title", DataType::Text),
            ColumnDef::new("a_name", DataType::Text),
        ],
    )
    .with_primary_key(&["b_id"]);
    let mut stmt = MigrationStatement::new(schema, spec);
    if let Some(s) = strategy {
        stmt = stmt.with_join_strategy(s);
    }
    stmt
}

fn run_with(strategy: Option<JoinStrategy>) -> Vec<Row> {
    let db = seed();
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: true,
                start_delay: Duration::from_millis(10),
                batch: 16,
                pause: Duration::ZERO,
                threads: 2,
            },
            ..Default::default()
        },
    );
    bf.submit_migration(MigrationPlan::new("denorm").with_statement(denorm_stmt(strategy)))
        .unwrap();
    // Touch a few points through each access path first.
    for b in [3i64, 57, 99] {
        let mut txn = db.begin();
        bf.get_by_pk(
            &mut txn,
            "books_denorm",
            &[Value::Int(b)],
            LockPolicy::Shared,
        )
        .unwrap()
        .unwrap();
        db.commit(&mut txn).unwrap();
    }
    assert!(bf.wait_migration_complete(Duration::from_secs(30)));
    bf.shutdown_background();
    let mut rows: Vec<Row> = db
        .select_unlocked("books_denorm", None)
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    rows.sort();
    rows
}

#[test]
fn default_classification_drives_fk_side() {
    let db = seed();
    let mut stmt = denorm_stmt(None);
    stmt.resolve(&db).unwrap();
    assert_eq!(stmt.category(), MigrationCategory::OneToOne);
    assert!(
        matches!(stmt.tracking(), Tracking::Bitmap { driving_alias, .. } if driving_alias == "b")
    );
}

#[test]
fn pk_side_driving_classifies_one_to_many() {
    let db = seed();
    let mut stmt = denorm_stmt(Some(JoinStrategy::DrivingSide { alias: "a".into() }));
    stmt.resolve(&db).unwrap();
    assert_eq!(stmt.category(), MigrationCategory::OneToMany);
}

#[test]
fn all_three_options_agree_on_the_final_state() {
    let fk_side = run_with(None);
    assert_eq!(fk_side.len(), 100);
    let pk_side = run_with(Some(JoinStrategy::DrivingSide { alias: "a".into() }));
    let join_key = run_with(Some(JoinStrategy::JoinKeyGroups));
    assert_eq!(fk_side, pk_side, "FKIT-driven vs PKIT-driven");
    assert_eq!(fk_side, join_key, "FKIT-driven vs join-key groups");
}

#[test]
fn pk_side_granule_drags_the_whole_fan_out() {
    // Driving the PK side (1:n): migrating one author moves all ten of its
    // books in one task — the §3.6 option-1 trade-off.
    let db = seed();
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    bf.submit_migration(
        MigrationPlan::new("denorm").with_statement(denorm_stmt(Some(JoinStrategy::DrivingSide {
            alias: "a".into(),
        }))),
    )
    .unwrap();
    // A point read of one book's denormalized row cannot be satisfied by a
    // predicate on the driving (author) side, so the transposed filter on
    // authors is empty → but the b-side filter still bounds candidates?
    // No: candidates come from the driving table. A b_id predicate is not
    // transposable to authors, so the whole author table is the candidate
    // set — the coarse behavior the paper warns about for option 1.
    let mut txn = db.begin();
    let got = bf
        .get_by_pk(
            &mut txn,
            "books_denorm",
            &[Value::Int(42)],
            LockPolicy::Shared,
        )
        .unwrap();
    db.commit(&mut txn).unwrap();
    assert!(got.is_some());
    assert_eq!(
        db.table("books_denorm").unwrap().live_count(),
        100,
        "option 1 migrated everything for a single point read"
    );
}

#[test]
fn fk_side_granule_is_fine_grained() {
    // Driving the FK side (option 2): the same point read migrates exactly
    // one tuple.
    let db = seed();
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    bf.submit_migration(MigrationPlan::new("denorm").with_statement(denorm_stmt(None)))
        .unwrap();
    let mut txn = db.begin();
    bf.get_by_pk(
        &mut txn,
        "books_denorm",
        &[Value::Int(42)],
        LockPolicy::Shared,
    )
    .unwrap()
    .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(db.table("books_denorm").unwrap().live_count(), 1);
}

#[test]
fn tuple_pairs_option_classifies_and_agrees() {
    // §3.6 option 3: pairwise tracking produces the same final state...
    let db = seed();
    let mut stmt = denorm_stmt(Some(JoinStrategy::TuplePairs));
    stmt.resolve(&db).unwrap();
    assert_eq!(stmt.category(), MigrationCategory::ManyToMany);
    assert!(matches!(stmt.tracking(), Tracking::PairHash { .. }));

    let pairs = run_with(Some(JoinStrategy::TuplePairs));
    let fk_side = run_with(None);
    assert_eq!(pairs, fk_side, "pairwise vs FKIT-driven final state");
}

#[test]
fn tuple_pairs_point_read_is_maximally_lazy() {
    // ...and a point read migrates exactly the one joining pair, even
    // though the join is many-to-many w.r.t. the tracked combination.
    let db = seed();
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    bf.submit_migration(
        MigrationPlan::new("denorm").with_statement(denorm_stmt(Some(JoinStrategy::TuplePairs))),
    )
    .unwrap();
    let mut txn = db.begin();
    bf.get_by_pk(
        &mut txn,
        "books_denorm",
        &[Value::Int(42)],
        LockPolicy::Shared,
    )
    .unwrap()
    .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(
        db.table("books_denorm").unwrap().live_count(),
        1,
        "exactly one (book, author) pair migrated"
    );
    // Full sweep completes the rest exactly once.
    bf.ensure_migrated("books_denorm", None).unwrap();
    assert_eq!(db.table("books_denorm").unwrap().live_count(), 100);
}

#[test]
fn tuple_pairs_requires_two_inputs() {
    let db = seed();
    let spec = SelectSpec::new()
        .from_table("books", "b")
        .select("b_id", Expr::col("b", "b_id"));
    let schema = TableSchema::new("copy", vec![ColumnDef::new("b_id", DataType::Int)])
        .with_primary_key(&["b_id"]);
    let mut stmt =
        MigrationStatement::new(schema, spec).with_join_strategy(JoinStrategy::TuplePairs);
    assert!(stmt.resolve(&db).is_err());
}
