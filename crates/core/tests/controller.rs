//! End-to-end tests of the BullFrog controller: logical flip, lazy
//! migration on access, constraint widening, background completion,
//! failure injection, and the §2.4 validation modes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{row, ColumnDef, DataType, Error, Row, TableSchema, Value};
use bullfrog_core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, DedupMode, MigrationPlan,
    MigrationStatement, SchemaVersion,
};
use bullfrog_engine::{Database, LockPolicy};
use bullfrog_query::{AggFunc, ColRef, Expr, SelectSpec};

/// Builds a database with an `employees` table (the "old schema").
fn seed_db(rows: i64) -> Arc<Database> {
    let db = Arc::new(Database::new());
    db.create_table(
        TableSchema::new(
            "employees",
            vec![
                ColumnDef::new("e_id", DataType::Int),
                ColumnDef::new("e_name", DataType::Text),
                ColumnDef::new("e_dept", DataType::Int),
                ColumnDef::new("e_salary", DataType::Decimal),
            ],
        )
        .with_primary_key(&["e_id"]),
    )
    .unwrap();
    db.create_index("employees", "employees_dept_idx", &["e_dept"], false)
        .unwrap();
    for i in 0..rows {
        db.insert_unlogged("employees", row![i, format!("emp{i}"), i % 10, i * 100])
            .unwrap();
    }
    db
}

/// Table-split plan: employees → emp_public (id, name, dept) +
/// emp_private (id, salary). 1:n w.r.t. employees; two bitmap statements.
fn split_plan() -> MigrationPlan {
    MigrationPlan::new("employee_split")
        .with_statement(MigrationStatement::new(
            TableSchema::new(
                "emp_public",
                vec![
                    ColumnDef::new("e_id", DataType::Int),
                    ColumnDef::new("e_name", DataType::Text),
                    ColumnDef::new("e_dept", DataType::Int),
                ],
            )
            .with_primary_key(&["e_id"]),
            SelectSpec::new()
                .from_table("employees", "e")
                .select("e_id", Expr::col("e", "e_id"))
                .select("e_name", Expr::col("e", "e_name"))
                .select("e_dept", Expr::col("e", "e_dept")),
        ))
        .with_statement(MigrationStatement::new(
            TableSchema::new(
                "emp_private",
                vec![
                    ColumnDef::new("e_id", DataType::Int),
                    ColumnDef::new("e_salary", DataType::Decimal),
                ],
            )
            .with_primary_key(&["e_id"]),
            SelectSpec::new()
                .from_table("employees", "e")
                .select("e_id", Expr::col("e", "e_id"))
                .select("e_salary", Expr::col("e", "e_salary")),
        ))
}

fn no_background() -> BullfrogConfig {
    BullfrogConfig {
        background: BackgroundConfig {
            enabled: false,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn fast_background() -> BullfrogConfig {
    BullfrogConfig {
        background: BackgroundConfig {
            enabled: true,
            start_delay: Duration::from_millis(10),
            batch: 64,
            pause: Duration::ZERO,
            threads: 2,
        },
        ..Default::default()
    }
}

#[test]
fn flip_is_instant_and_retires_old_schema() {
    let db = seed_db(100);
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    assert_eq!(bf.version(), SchemaVersion::Old);
    bf.submit_migration(split_plan()).unwrap();
    assert_eq!(bf.version(), SchemaVersion::New);
    // New tables exist and are empty (nothing physically migrated yet).
    assert_eq!(db.table("emp_public").unwrap().live_count(), 0);
    // Old schema requests are rejected (big flip).
    let mut txn = db.begin();
    let err = bf
        .select(&mut txn, "employees", None, LockPolicy::Shared)
        .unwrap_err();
    assert!(matches!(err, Error::SchemaRetired(_)));
    db.abort(&mut txn);
}

#[test]
fn select_migrates_only_relevant_tuples() {
    let db = seed_db(100);
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    bf.submit_migration(split_plan()).unwrap();

    let pred = Expr::column("e_dept").eq(Expr::lit(3));
    let mut txn = db.begin();
    let rows = bf
        .select(&mut txn, "emp_public", Some(&pred), LockPolicy::Shared)
        .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(rows.len(), 10, "dept 3 has 10 employees");
    // Only dept-3 rows were physically migrated into emp_public; and the
    // emp_private statement was not touched at all.
    assert_eq!(db.table("emp_public").unwrap().live_count(), 10);
    assert_eq!(db.table("emp_private").unwrap().live_count(), 0);

    let active = bf.active().unwrap();
    let stats = &active.stats;
    assert_eq!(bullfrog_core::MigrationStats::get(&stats.rows_migrated), 10);
}

#[test]
fn get_by_pk_migrates_the_point() {
    let db = seed_db(50);
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    bf.submit_migration(split_plan()).unwrap();
    let mut txn = db.begin();
    let got = bf
        .get_by_pk(
            &mut txn,
            "emp_private",
            &[Value::Int(7)],
            LockPolicy::Shared,
        )
        .unwrap();
    db.commit(&mut txn).unwrap();
    let (_, r) = got.unwrap();
    assert_eq!(r, row![7, 700]);
    assert_eq!(db.table("emp_private").unwrap().live_count(), 1);
}

#[test]
fn repeated_requests_do_not_remigrate() {
    let db = seed_db(50);
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    bf.submit_migration(split_plan()).unwrap();
    let pred = Expr::column("e_id").lt(Expr::lit(10));
    for _ in 0..5 {
        let mut txn = db.begin();
        let rows = bf
            .select(&mut txn, "emp_public", Some(&pred), LockPolicy::Shared)
            .unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(rows.len(), 10);
    }
    let active = bf.active().unwrap();
    assert_eq!(
        bullfrog_core::MigrationStats::get(&active.stats.rows_migrated),
        10,
        "exactly-once despite 5 requests"
    );
}

#[test]
fn background_completes_everything() {
    let db = seed_db(500);
    let bf = Bullfrog::with_config(Arc::clone(&db), fast_background());
    bf.submit_migration(split_plan()).unwrap();
    assert!(
        bf.wait_migration_complete(Duration::from_secs(30)),
        "background migration should finish"
    );
    assert_eq!(db.table("emp_public").unwrap().live_count(), 500);
    assert_eq!(db.table("emp_private").unwrap().live_count(), 500);
    // Finalize drops the old table.
    bf.finalize_migration(true).unwrap();
    assert!(db.table("employees").is_err());
    bf.shutdown_background();
}

#[test]
fn clients_and_background_cooperate_exactly_once() {
    let db = seed_db(400);
    let bf = Arc::new(Bullfrog::with_config(Arc::clone(&db), fast_background()));
    bf.submit_migration(split_plan()).unwrap();

    // Hammer random point lookups from several threads while background
    // migration runs.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let bf = Arc::clone(&bf);
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let mut rng = t + 1;
            for _ in 0..200 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let id = ((rng >> 33) % 400) as i64;
                let mut txn = db.begin();
                let got = bf
                    .get_by_pk(
                        &mut txn,
                        "emp_public",
                        &[Value::Int(id)],
                        LockPolicy::Shared,
                    )
                    .unwrap();
                db.commit(&mut txn).unwrap();
                assert!(got.is_some(), "employee {id} must be visible");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(bf.wait_migration_complete(Duration::from_secs(30)));
    // Exactly-once: no duplicates in the outputs.
    assert_eq!(db.table("emp_public").unwrap().live_count(), 400);
    assert_eq!(db.table("emp_private").unwrap().live_count(), 400);
    bf.shutdown_background();
}

#[test]
fn abort_injection_never_loses_or_duplicates() {
    let db = seed_db(300);
    // Every 3rd migration transaction aborts.
    let counter = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&counter);
    let cfg = BullfrogConfig {
        failpoint: Some(Arc::new(move || {
            c2.fetch_add(1, Ordering::Relaxed).is_multiple_of(3)
        })),
        ..fast_background()
    };
    let bf = Bullfrog::with_config(Arc::clone(&db), cfg);
    bf.submit_migration(split_plan()).unwrap();
    assert!(bf.wait_migration_complete(Duration::from_secs(60)));
    assert_eq!(db.table("emp_public").unwrap().live_count(), 300);
    assert_eq!(db.table("emp_private").unwrap().live_count(), 300);
    let active = bf.active().unwrap();
    assert!(
        bullfrog_core::MigrationStats::get(&active.stats.migration_aborts) > 0,
        "failpoint must actually have fired"
    );
    bf.shutdown_background();
}

#[test]
fn insert_widens_to_unique_conflicts() {
    let db = seed_db(50);
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    bf.submit_migration(split_plan()).unwrap();

    // Inserting a *new* employee id works without touching old data beyond
    // the key probe.
    let mut txn = db.begin();
    bf.insert(&mut txn, "emp_public", row![1000, "newbie", 1])
        .unwrap();
    db.commit(&mut txn).unwrap();

    // Inserting an id that exists in the old schema must first migrate the
    // old tuple, then fail the uniqueness check (the old record wins).
    let mut txn = db.begin();
    let err = bf
        .insert(&mut txn, "emp_public", row![7, "imposter", 1])
        .unwrap_err();
    assert!(matches!(err, Error::UniqueViolation { .. }));
    db.abort(&mut txn);
    // Employee 7 was migrated by the conflict probe.
    let mut txn = db.begin();
    let got = bf
        .get_by_pk(&mut txn, "emp_public", &[Value::Int(7)], LockPolicy::Shared)
        .unwrap()
        .unwrap();
    assert_eq!(got.1, row![7, "emp7", 7]);
    db.commit(&mut txn).unwrap();
}

#[test]
fn aggregate_migration_on_access() {
    let db = seed_db(100);
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    let plan = MigrationPlan::new("dept_totals").with_statement(MigrationStatement::new(
        TableSchema::new(
            "dept_salary",
            vec![
                ColumnDef::new("dept", DataType::Int),
                ColumnDef::nullable("total", DataType::Decimal),
            ],
        )
        .with_primary_key(&["dept"]),
        SelectSpec::new()
            .from_table("employees", "e")
            .select("dept", Expr::col("e", "e_dept"))
            .select_agg("total", AggFunc::Sum, Expr::col("e", "e_salary")),
    ));
    bf.submit_migration(plan).unwrap();

    let mut txn = db.begin();
    let rows = bf
        .select(
            &mut txn,
            "dept_salary",
            Some(&Expr::column("dept").eq(Expr::lit(4))),
            LockPolicy::Shared,
        )
        .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(rows.len(), 1);
    // dept 4: employees 4, 14, ..., 94 → salaries 400 + 1400 + ... + 9400.
    let expected: i64 = (0..10).map(|k| (4 + 10 * k) * 100).sum();
    assert_eq!(
        rows[0].1,
        Row(vec![Value::Int(4), Value::Decimal(expected)])
    );
    // Only the accessed group was migrated.
    assert_eq!(db.table("dept_salary").unwrap().live_count(), 1);
}

#[test]
fn on_conflict_mode_end_to_end() {
    let db = seed_db(100);
    let cfg = BullfrogConfig {
        dedup: DedupMode::OnConflict,
        ..fast_background()
    };
    let bf = Bullfrog::with_config(Arc::clone(&db), cfg);
    bf.submit_migration(split_plan()).unwrap();
    // Client requests during background migration.
    for id in 0..20i64 {
        let mut txn = db.begin();
        bf.get_by_pk(
            &mut txn,
            "emp_public",
            &[Value::Int(id)],
            LockPolicy::Shared,
        )
        .unwrap()
        .unwrap();
        db.commit(&mut txn).unwrap();
    }
    assert!(bf.wait_migration_complete(Duration::from_secs(30)));
    assert_eq!(db.table("emp_public").unwrap().live_count(), 100);
    assert_eq!(db.table("emp_private").unwrap().live_count(), 100);
    bf.shutdown_background();
}

#[test]
fn on_conflict_mode_requires_unique_output() {
    let db = seed_db(10);
    let cfg = BullfrogConfig {
        dedup: DedupMode::OnConflict,
        ..no_background()
    };
    let bf = Bullfrog::with_config(Arc::clone(&db), cfg);
    let plan = MigrationPlan::new("no_unique").with_statement(MigrationStatement::new(
        TableSchema::new("emp_copy", vec![ColumnDef::new("e_id", DataType::Int)]), // no PK!
        SelectSpec::new()
            .from_table("employees", "e")
            .select("e_id", Expr::col("e", "e_id")),
    ));
    assert!(matches!(
        bf.submit_migration(plan),
        Err(Error::InvalidMigration(_))
    ));
}

#[test]
fn eager_validation_rejects_doomed_unique_constraint() {
    let db = Arc::new(Database::new());
    db.create_table(TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("dup", DataType::Int),
        ],
    ))
    .unwrap();
    db.insert_unlogged("t", row![1, 7]).unwrap();
    db.insert_unlogged("t", row![2, 7]).unwrap();
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    // New schema declares uniqueness on a duplicated column: with eager
    // validation the submit itself fails (§2.4 option 1)...
    let plan = MigrationPlan::new("doomed")
        .with_statement(MigrationStatement::new(
            TableSchema::new("t2", vec![ColumnDef::new("dup", DataType::Int)])
                .with_primary_key(&["dup"]),
            SelectSpec::new()
                .from_table("t", "s")
                .select("dup", Expr::col("s", "dup")),
        ))
        .with_eager_validation();
    assert!(matches!(
        bf.submit_migration(plan),
        Err(Error::UniqueViolation { .. })
    ));
    assert!(db.table("t2").is_err(), "no output table left behind");
}

#[test]
fn lazy_constraint_drop_counts_warnings() {
    // ...and without eager validation, the lazy path proceeds, dropping
    // the conflicting record with a warning counter (§2.4 option 2).
    let db = Arc::new(Database::new());
    db.create_table(TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("dup", DataType::Int),
        ],
    ))
    .unwrap();
    db.insert_unlogged("t", row![1, 7]).unwrap();
    db.insert_unlogged("t", row![2, 7]).unwrap();
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    let plan = MigrationPlan::new("lossy").with_statement(MigrationStatement::new(
        TableSchema::new("t2", vec![ColumnDef::new("dup", DataType::Int)])
            .with_primary_key(&["dup"]),
        SelectSpec::new()
            .from_table("t", "s")
            .select("dup", Expr::col("s", "dup")),
    ));
    bf.submit_migration(plan).unwrap();
    let mut txn = db.begin();
    let rows = bf.select(&mut txn, "t2", None, LockPolicy::Shared).unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(rows.len(), 1, "one of the duplicates survives");
    let active = bf.active().unwrap();
    assert_eq!(
        bullfrog_core::MigrationStats::get(&active.stats.rows_dropped),
        1
    );
}

#[test]
fn backwards_compatible_plan_keeps_old_readable_but_frozen() {
    let db = seed_db(20);
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    bf.submit_migration(split_plan().backwards_compatible())
        .unwrap();
    // Old reads still work...
    let mut txn = db.begin();
    let rows = bf
        .select(&mut txn, "employees", None, LockPolicy::Shared)
        .unwrap();
    assert_eq!(rows.len(), 20);
    // ...but writes to the frozen input are rejected while migrating.
    let err = bf
        .insert(&mut txn, "employees", row![99, "x", 0, 0])
        .unwrap_err();
    assert!(matches!(err, Error::SchemaRetired(_)));
    db.commit(&mut txn).unwrap();
}

#[test]
fn second_migration_rejected_while_active() {
    let db = seed_db(10);
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    bf.submit_migration(split_plan()).unwrap();
    let plan2 = MigrationPlan::new("again").with_statement(MigrationStatement::new(
        TableSchema::new("x", vec![ColumnDef::new("e_id", DataType::Int)]),
        SelectSpec::new()
            .from_table("employees", "e")
            .select("e_id", Expr::col("e", "e_id")),
    ));
    assert!(matches!(
        bf.submit_migration(plan2),
        Err(Error::InvalidMigration(_))
    ));
}

#[test]
fn join_migration_via_execute_spec_read() {
    // employees ⋈ departments denormalization, read through execute_spec.
    let db = seed_db(60);
    db.create_table(
        TableSchema::new(
            "departments",
            vec![
                ColumnDef::new("d_id", DataType::Int),
                ColumnDef::new("d_name", DataType::Text),
            ],
        )
        .with_primary_key(&["d_id"]),
    )
    .unwrap();
    for d in 0..10 {
        db.insert_unlogged("departments", row![d, format!("dept{d}")])
            .unwrap();
    }
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    let plan = MigrationPlan::new("denorm").with_statement(MigrationStatement::new(
        TableSchema::new(
            "emp_dept",
            vec![
                ColumnDef::new("e_id", DataType::Int),
                ColumnDef::new("e_name", DataType::Text),
                ColumnDef::new("d_name", DataType::Text),
            ],
        )
        .with_primary_key(&["e_id"]),
        SelectSpec::new()
            .from_table("employees", "e")
            .from_table("departments", "d")
            .join_on(ColRef::new("e", "e_dept"), ColRef::new("d", "d_id"))
            .select("e_id", Expr::col("e", "e_id"))
            .select("e_name", Expr::col("e", "e_name"))
            .select("d_name", Expr::col("d", "d_name")),
    ));
    bf.submit_migration(plan).unwrap();

    // Read through a spec over the NEW table.
    let read = SelectSpec::new()
        .from_table("emp_dept", "ed")
        .filter(Expr::col("ed", "e_id").eq(Expr::lit(13)))
        .select("e_name", Expr::col("ed", "e_name"))
        .select("d_name", Expr::col("ed", "d_name"));
    let mut txn = db.begin();
    let out = bf
        .execute_spec(&mut txn, &read, &Default::default())
        .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(out.rows.len(), 1);
    assert_eq!(
        out.rows[0],
        Row(vec![Value::text("emp13"), Value::text("dept3")])
    );
    assert_eq!(db.table("emp_dept").unwrap().live_count(), 1);
}

#[test]
fn page_granularity_migrates_whole_pages() {
    let db = Arc::new(Database::new());
    // Small pages so granularity is visible.
    db.create_table_with_slots(
        TableSchema::new("src", vec![ColumnDef::new("id", DataType::Int)])
            .with_primary_key(&["id"]),
        8,
    )
    .unwrap();
    for i in 0..64 {
        db.insert_unlogged("src", row![i]).unwrap();
    }
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    let plan = MigrationPlan::new("paged").with_statement(
        MigrationStatement::new(
            TableSchema::new("dst", vec![ColumnDef::new("id", DataType::Int)])
                .with_primary_key(&["id"]),
            SelectSpec::new()
                .from_table("src", "s")
                .select("id", Expr::col("s", "id")),
        )
        .with_granule_rows(8),
    );
    bf.submit_migration(plan).unwrap();
    let mut txn = db.begin();
    bf.get_by_pk(&mut txn, "dst", &[Value::Int(3)], LockPolicy::Shared)
        .unwrap()
        .unwrap();
    db.commit(&mut txn).unwrap();
    // The whole 8-row page of id 3 migrated, not just one tuple.
    assert_eq!(db.table("dst").unwrap().live_count(), 8);
}

#[test]
fn sequential_migrations_after_finalize() {
    // A second evolution can run once the first completes and finalizes —
    // continuous deployment means migrations keep coming.
    let db = seed_db(40);
    let bf = Bullfrog::with_config(Arc::clone(&db), fast_background());
    bf.submit_migration(split_plan()).unwrap();
    assert!(bf.wait_migration_complete(Duration::from_secs(30)));
    bf.shutdown_background();
    bf.finalize_migration(true).unwrap();
    assert!(db.table("employees").is_err());

    // Second migration: re-merge the split (join pub ⋈ priv).
    let merge = MigrationPlan::new("remerge").with_statement(MigrationStatement::new(
        TableSchema::new(
            "employees_v2",
            vec![
                ColumnDef::new("e_id", DataType::Int),
                ColumnDef::new("e_name", DataType::Text),
                ColumnDef::new("e_salary", DataType::Decimal),
            ],
        )
        .with_primary_key(&["e_id"]),
        SelectSpec::new()
            .from_table("emp_public", "p")
            .from_table("emp_private", "s")
            .join_on(ColRef::new("p", "e_id"), ColRef::new("s", "e_id"))
            .select("e_id", Expr::col("p", "e_id"))
            .select("e_name", Expr::col("p", "e_name"))
            .select("e_salary", Expr::col("s", "e_salary")),
    ));
    bf.submit_migration(merge).unwrap();
    let mut txn = db.begin();
    let got = bf
        .get_by_pk(
            &mut txn,
            "employees_v2",
            &[Value::Int(5)],
            LockPolicy::Shared,
        )
        .unwrap()
        .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(got.1, row![5, "emp5", 500]);
    assert!(bf.wait_migration_complete(Duration::from_secs(30)));
    assert_eq!(db.table("employees_v2").unwrap().live_count(), 40);
    bf.shutdown_background();
}

#[test]
fn update_changing_unique_key_widens_migration() {
    // §2.1: "updates to the unique attribute" must migrate potentially
    // conflicting records before the check.
    let db = seed_db(30);
    let bf = Bullfrog::with_config(Arc::clone(&db), no_background());
    bf.submit_migration(split_plan()).unwrap();
    // Migrate employee 3 via a point read, then try to take employee 7's id.
    let mut txn = db.begin();
    let (rid, _) = bf
        .get_by_pk(
            &mut txn,
            "emp_public",
            &[Value::Int(3)],
            LockPolicy::Exclusive,
        )
        .unwrap()
        .unwrap();
    let err = bf
        .update(&mut txn, "emp_public", rid, row![7, "thief", 3])
        .unwrap_err();
    assert!(matches!(err, Error::UniqueViolation { .. }));
    db.abort(&mut txn);
    // The probe migrated employee 7 to perform the check.
    assert!(db
        .table("emp_public")
        .unwrap()
        .get_by_pk(&[Value::Int(7)])
        .is_some());
}

#[test]
fn wait_and_skip_paths_under_heavy_point_contention() {
    // Many threads all demanding the same few granules: the SKIP list and
    // tracker waits must resolve without losing anyone.
    let db = seed_db(8);
    let bf = Arc::new(Bullfrog::with_config(Arc::clone(&db), no_background()));
    bf.submit_migration(split_plan()).unwrap();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let bf = Arc::clone(&bf);
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let id = ((t + i) % 8) as i64;
                let mut txn = db.begin();
                let got = bf
                    .get_by_pk(
                        &mut txn,
                        "emp_private",
                        &[Value::Int(id)],
                        LockPolicy::Shared,
                    )
                    .unwrap();
                db.commit(&mut txn).unwrap();
                assert!(got.is_some());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.table("emp_private").unwrap().live_count(), 8);
    let stats = &bf.active().unwrap().stats;
    assert_eq!(
        bullfrog_core::MigrationStats::get(&stats.rows_migrated),
        8,
        "exactly once despite contention (skips={} waits={})",
        bullfrog_core::MigrationStats::get(&stats.skips),
        bullfrog_core::MigrationStats::get(&stats.waits),
    );
}
