//! Property test: the two engine modes are observationally equivalent.
//!
//! A random DML script (inserts, balance updates, deletes, point reads,
//! scans) runs against two fresh databases — one under 2PL, one under
//! snapshot isolation — with a lazy 1:1 migration submitted at a random
//! cut point and background sweepers racing the remaining operations.
//! Whatever the interleaving, the final migrated table must come out
//! byte-identical: lazy migration moves each logical row exactly once,
//! and SI's first-updater-wins aborts (absorbed by retry) must never
//! lose or duplicate an update.

use std::sync::Arc;
use std::time::Duration;

use bullfrog_common::{row, ColumnDef, DataType, Row, TableSchema, Value};
use bullfrog_core::{
    BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, MigrationPlan, MigrationStatement,
};
use bullfrog_engine::{Database, DbConfig, EngineMode, LockPolicy};
use bullfrog_query::{Expr, SelectSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, grp: i64, bal: i64 },
    SetBal { id: i64, bal: i64 },
    Remove { id: i64 },
    Read { id: i64 },
    Scan,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..24, 0i64..4, 0i64..500).prop_map(|(id, grp, bal)| Op::Insert { id, grp, bal }),
        (0i64..24, 0i64..500).prop_map(|(id, bal)| Op::SetBal { id, bal }),
        (0i64..24).prop_map(|id| Op::Remove { id }),
        (0i64..24).prop_map(|id| Op::Read { id }),
        (0i64..2).prop_map(|_| Op::Scan),
    ]
}

fn fresh(mode: EngineMode) -> (Arc<Database>, Bullfrog) {
    let db = Arc::new(Database::with_config(DbConfig {
        mode,
        ..DbConfig::default()
    }));
    db.create_table(
        TableSchema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Int),
                ColumnDef::new("bal", DataType::Int),
            ],
        )
        .with_primary_key(&["id"]),
    )
    .unwrap();
    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            background: BackgroundConfig {
                enabled: true,
                start_delay: Duration::from_millis(5),
                batch: 8,
                pause: Duration::ZERO,
                threads: 2,
            },
            ..Default::default()
        },
    );
    (db, bf)
}

fn copy_plan() -> MigrationPlan {
    MigrationPlan::new("accounts_copy").with_statement(MigrationStatement::new(
        TableSchema::new(
            "accounts_v2",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Int),
                ColumnDef::new("bal", DataType::Int),
            ],
        )
        .with_primary_key(&["id"]),
        SelectSpec::new()
            .from_table("accounts", "a")
            .select("id", Expr::col("a", "id"))
            .select("grp", Expr::col("a", "grp"))
            .select("bal", Expr::col("a", "bal")),
    ))
}

/// Applies one op through the controller, retrying the retryable
/// failures (SI first-updater-wins; lock timeouts against a sweeper)
/// and ignoring the deterministic ones (duplicate insert, missing row).
fn apply(bf: &Bullfrog, table: &str, op: &Op) {
    let db = bf.db();
    match op {
        Op::Insert { id, grp, bal } => {
            let _ = db.with_txn_retry(50, |txn| bf.insert(txn, table, row![*id, *grp, *bal]));
        }
        Op::SetBal { id, bal } => {
            let _ = db.with_txn_retry(50, |txn| {
                if let Some((rid, mut r)) =
                    bf.get_by_pk(txn, table, &[Value::Int(*id)], LockPolicy::Exclusive)?
                {
                    r.0[2] = Value::Int(*bal);
                    bf.update(txn, table, rid, r)?;
                }
                Ok(())
            });
        }
        Op::Remove { id } => {
            let _ = db.with_txn_retry(50, |txn| {
                if let Some((rid, _)) =
                    bf.get_by_pk(txn, table, &[Value::Int(*id)], LockPolicy::Exclusive)?
                {
                    bf.delete(txn, table, rid)?;
                }
                Ok(())
            });
        }
        Op::Read { id } => {
            let _ = db.with_txn_retry(50, |txn| {
                bf.get_by_pk(txn, table, &[Value::Int(*id)], LockPolicy::Shared)
            });
        }
        Op::Scan => {
            let _ = db.with_txn_retry(50, |txn| bf.select(txn, table, None, LockPolicy::Shared));
        }
    }
}

/// Runs the whole script under `mode` and returns the final sorted scan
/// of the migrated table.
fn run_script(mode: EngineMode, ops: &[Op], cut: usize) -> Vec<Row> {
    let (db, bf) = fresh(mode);
    for i in 0..8 {
        db.with_txn(|txn| bf.insert(txn, "accounts", row![i, i % 4, 100]))
            .unwrap();
    }
    let cut = cut.min(ops.len());
    for op in &ops[..cut] {
        apply(&bf, "accounts", op);
    }
    bf.submit_migration(copy_plan()).unwrap();
    for op in &ops[cut..] {
        apply(&bf, "accounts_v2", op);
    }
    assert!(
        bf.wait_migration_complete(Duration::from_secs(30)),
        "migration must complete under {}",
        mode.as_str()
    );
    bf.finalize_migration(true).unwrap();
    // Row ids are physical (they depend on sweeper/client interleaving);
    // equivalence is over logical row contents.
    let mut rows: Vec<Row> = db
        .with_txn(|txn| bf.select(txn, "accounts_v2", None, LockPolicy::Shared))
        .unwrap()
        .into_iter()
        .map(|(_, r)| r)
        .collect();
    bf.shutdown_background();
    rows.sort_by_key(|r| r.0[0].as_i64());
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn twopl_and_snapshot_reach_identical_final_states(
        ops in proptest::collection::vec(arb_op(), 0..40),
        cut in 0usize..40,
    ) {
        let twopl = run_script(EngineMode::TwoPL, &ops, cut);
        let snapshot = run_script(EngineMode::Snapshot, &ops, cut);
        prop_assert_eq!(&twopl, &snapshot);
    }
}
