//! The active half of HA: a background thread per node that renews the
//! lease while leading and watches for a lapsed lease (or an operator
//! `PROMOTE`) while following.
//!
//! One loop, role-dispatched per tick (TTL/3), instead of separate
//! leader/follower threads: a follower that wins an election *becomes*
//! the leader mid-loop, so the same thread carries the node through
//! promotion without a handoff. Witnesses tick too but do nothing — all
//! their behaviour is passive ([`HaMember::handle`]).
//!
//! Election protocol (static membership, one ballot per epoch):
//!
//! 1. the follower sees its granted lease lapse (plus nothing — the
//!    grace is already in the lease horizon) or a `PROMOTE` request;
//! 2. it stands at `epoch + 1`, voting for itself implicitly, and asks
//!    every peer for a vote; granters adopt the epoch in their
//!    persistent ballot, so the epoch is burned whether or not the
//!    election completes;
//! 3. a majority (self included) promotes the local [`Replica`] — epoch
//!    bump persisted to the sidecar *and* the WAL, apply loop stopped,
//!    sweepers respawned, sessions flipped writable — and the member
//!    becomes leader; the next ticks renew the lease so commits may
//!    degrade again;
//! 4. anything less backs off a full TTL before standing again.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bullfrog_net::wire::HaReq;
use bullfrog_net::Client;
use bullfrog_repl::Replica;
use parking_lot::Mutex;

use crate::member::{HaMember, Role};

/// Handle to a node's HA loop thread.
pub struct HaNode {
    member: Arc<HaMember>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HaNode {
    /// Spawns the loop. `replica` is the promotion target for followers
    /// (leaders and witnesses pass `None` — they have nothing to
    /// promote).
    pub fn spawn(member: Arc<HaMember>, replica: Option<Arc<Mutex<Replica>>>) -> HaNode {
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let member = Arc::clone(&member);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("bf-ha-loop".into())
                .spawn(move || run(&member, replica.as_ref(), &stop))
                .expect("spawn HA loop thread")
        };
        HaNode {
            member,
            stop,
            thread: Some(thread),
        }
    }

    /// The member this loop drives.
    pub fn member(&self) -> &Arc<HaMember> {
        &self.member
    }

    /// Stops and joins the loop thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HaNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run(member: &Arc<HaMember>, replica: Option<&Arc<Mutex<Replica>>>, stop: &AtomicBool) {
    let tick = (member.config.lease_ttl / 3).max(Duration::from_millis(20));
    while !stop.load(Ordering::Acquire) {
        match member.role() {
            Role::Leader => leader_tick(member),
            Role::Follower | Role::Candidate => {
                if let Some(r) = replica {
                    follower_tick(member, r);
                }
            }
            Role::Witness => {}
        }
        std::thread::sleep(tick);
    }
}

/// One renewal round: ask every peer to extend the lease at our epoch.
/// A majority of grants (self included) extends our own lease horizon;
/// a higher epoch in any reply means we have been deposed.
fn leader_tick(member: &Arc<HaMember>) {
    let epoch = member.epoch.epoch();
    let ttl_ms = member.config.lease_ttl.as_millis() as u64;
    let mut grants = 1usize; // our own lease grant to ourselves
    let mut deposed: Option<String> = None;
    for peer in member.config.peers() {
        let Some(mut c) = connect(peer) else { continue };
        let reply = c.ha(HaReq::Renew {
            epoch,
            leader: member.config.self_addr.clone(),
            ttl_ms,
        });
        match reply {
            Ok(r) if r.epoch > epoch => {
                let _ = member.epoch.observe(r.epoch);
                deposed = Some(if r.leader.is_empty() {
                    peer.clone()
                } else {
                    r.leader
                });
                break;
            }
            Ok(r) if r.granted => grants += 1,
            _ => {}
        }
    }
    if let Some(leader) = deposed {
        eprintln!(
            "bf-ha: {} deposed (higher epoch observed, new leader {leader})",
            member.config.self_addr
        );
        member.step_down(Some(leader));
        return;
    }
    if grants >= member.config.majority() {
        member.extend_lease();
    } else if member.lease_lapsed() {
        // Could not reach a majority for a full TTL: keep serving reads
        // but never degrade a sync commit — an ack handed out here
        // could be lost to a promotion happening on the other side of
        // the partition.
        member.lease_lost();
    }
}

/// Watch the granted lease; once it verifiably lapses (or the operator
/// forces it), stand for election and — with a majority — promote.
fn follower_tick(member: &Arc<HaMember>, replica: &Arc<Mutex<Replica>>) {
    let forced = member.take_promote_request();
    if !forced && !member.lease_lapsed() {
        return;
    }
    member.set_candidate();
    let target = member.epoch.epoch() + 1;
    let mut votes = 1usize; // a candidate always votes for itself
    for peer in member.config.peers() {
        let Some(mut c) = connect(peer) else { continue };
        if let Ok(r) = c.ha(HaReq::Vote {
            epoch: target,
            candidate: member.config.self_addr.clone(),
            forced,
        }) {
            if r.granted {
                votes += 1;
            } else if r.epoch > target {
                // Someone is already past this epoch; adopt and retreat.
                let _ = member.epoch.observe(r.epoch);
            }
        }
    }
    if votes < member.config.majority() {
        member.election_lost();
        return;
    }
    match replica.lock().promote() {
        Ok(epoch) => {
            eprintln!(
                "bf-ha: {} promoted to leader at epoch {epoch} ({votes}/{} votes)",
                member.config.self_addr,
                member.config.members.len()
            );
            member.became_leader();
        }
        Err(e) => {
            eprintln!(
                "bf-ha: {} won the election but promotion failed: {e}",
                member.config.self_addr
            );
            member.election_lost();
        }
    }
}

/// Short-timeout connect; HA ticks must never hang on a dead peer.
fn connect(addr: &str) -> Option<Client> {
    use std::net::ToSocketAddrs;
    let sa = addr.to_socket_addrs().ok()?.next()?;
    Client::connect_timeout(&sa, Duration::from_millis(250)).ok()
}
