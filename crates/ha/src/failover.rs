//! The client side of failover: a connection wrapper that re-resolves
//! the primary when the node it was talking to dies, fences, or turns
//! out to be a replica.
//!
//! Re-routing signals, in order of quality:
//!
//! 1. a `READ_ONLY`-coded rejection whose message names the primary
//!    (`... the primary at <addr>`) — replicas bounce writes this way,
//!    and a fenced ex-primary rejects with the same shape, so one
//!    parser ([`primary_hint`]) covers both;
//! 2. an HA `STATE` probe of each configured member — whoever calls
//!    itself `leader` (or names one) is the new target;
//! 3. plain rotation through the member list, for the window where
//!    nobody has been elected yet.
//!
//! The wrapper retries *closures*, not statements: a transfer is a
//! multi-statement bracket, and a transport error mid-bracket means the
//! whole bracket must restart on the new primary (the old transaction
//! died with its session). A failure at `COMMIT` is ambiguous — the
//! commit may or may not have applied — which is why the failover
//! loadgen verifies against an in-database transaction log instead of
//! client-side counting alone.

use std::time::Duration;

use bullfrog_net::{err_code, primary_hint, Client, ClientError, ClientResult, QueryReply};

/// A re-routing client over a static HA member list.
pub struct FailoverClient {
    members: Vec<String>,
    target: String,
    conn: Option<Client>,
    /// How many times this client switched nodes.
    pub reroutes: u64,
}

impl FailoverClient {
    /// Builds a client targeting the first member; no connection is
    /// opened until the first call.
    pub fn new(members: Vec<String>) -> FailoverClient {
        assert!(
            !members.is_empty(),
            "FailoverClient needs at least one member"
        );
        FailoverClient {
            target: members[0].clone(),
            members,
            conn: None,
            reroutes: 0,
        }
    }

    /// The node calls currently go to.
    pub fn target(&self) -> &str {
        &self.target
    }

    fn ensure(&mut self) -> ClientResult<&mut Client> {
        if self.conn.is_none() {
            self.conn = Some(Client::connect(self.target.as_str())?);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Drops the current connection and picks a new target: the hint if
    /// given, else the first member that claims (or names) a leader,
    /// else the next member in rotation.
    fn reroute(&mut self, hint: Option<String>) {
        self.conn = None;
        self.reroutes += 1;
        if let Some(h) = hint {
            self.target = h;
            return;
        }
        for m in &self.members {
            let Some(mut c) = probe(m) else { continue };
            let Ok(st) = c.ha_state() else { continue };
            if st.role == "leader" {
                self.target = m.clone();
                return;
            }
            if !st.leader.is_empty() {
                self.target = st.leader;
                return;
            }
        }
        if let Some(pos) = self.members.iter().position(|m| m == &self.target) {
            self.target = self.members[(pos + 1) % self.members.len()].clone();
        }
    }

    /// Runs `f` against the current primary, re-routing and retrying on
    /// transport failures, `READ_ONLY` bounces, and retryable server
    /// errors, up to `max_attempts`. `f` must be safe to restart from
    /// scratch — any open transaction died with the failed attempt.
    pub fn with_retry<T>(
        &mut self,
        max_attempts: usize,
        mut f: impl FnMut(&mut Client) -> ClientResult<T>,
    ) -> ClientResult<T> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..max_attempts {
            if attempt > 0 {
                let backoff = (50 * attempt as u64).min(500);
                std::thread::sleep(Duration::from_millis(backoff));
            }
            let client = match self.ensure() {
                Ok(c) => c,
                Err(e) => {
                    last = Some(e);
                    self.reroute(None);
                    continue;
                }
            };
            match f(client) {
                Ok(v) => return Ok(v),
                Err(ClientError::Server {
                    retryable,
                    code,
                    message,
                }) if code == err_code::READ_ONLY => {
                    // Wrong endpoint (replica, witness, or fenced
                    // ex-primary): never retry here, re-resolve.
                    let hint = primary_hint(&message);
                    last = Some(ClientError::Server {
                        retryable,
                        code,
                        message,
                    });
                    self.reroute(hint);
                }
                Err(e @ (ClientError::Io(_) | ClientError::Protocol(_))) => {
                    last = Some(e);
                    self.reroute(None);
                }
                Err(ClientError::Server {
                    retryable: true,
                    code,
                    message,
                }) => {
                    // Retryable in place (lock timeout, busy): same
                    // node, fresh bracket.
                    last = Some(ClientError::Server {
                        retryable: true,
                        code,
                        message,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Protocol("retry limit of zero".into())))
    }

    /// [`Client::execute`] with failover.
    pub fn execute(&mut self, sql: &str) -> ClientResult<u64> {
        self.with_retry(40, |c| c.execute(sql))
    }

    /// [`Client::query`] with failover.
    pub fn query(&mut self, sql: &str) -> ClientResult<QueryReply> {
        self.with_retry(40, |c| c.query(sql))
    }

    /// [`Client::query_rows`] with failover.
    pub fn query_rows(
        &mut self,
        sql: &str,
    ) -> ClientResult<(Vec<String>, Vec<bullfrog_common::Row>)> {
        self.with_retry(40, |c| c.query_rows(sql))
    }

    /// [`Client::status`] with failover.
    pub fn status(&mut self) -> ClientResult<Vec<(String, i64)>> {
        self.with_retry(40, |c| c.status())
    }
}

fn probe(addr: &str) -> Option<Client> {
    use std::net::ToSocketAddrs;
    let sa = addr.to_socket_addrs().ok()?.next()?;
    Client::connect_timeout(&sa, Duration::from_millis(250)).ok()
}
