//! bullfrog-ha: fenced failover, quorum leases, and synchronous
//! replication on top of the `bullfrog-repl` primary/replica pair.
//!
//! The paper's migrations stay online through schema change; this crate
//! keeps them online through *node loss*. Three mechanisms compose:
//!
//! - **Fencing epochs** (`bullfrog-txn`'s [`EpochStore`], wired through
//!   every BFNET1 `SUBSCRIBE`/`REPL_ACK`/`FRAMES` message): a monotonic
//!   counter naming which incarnation of the primary may acknowledge
//!   writes and ship frames. Promotion bumps it — persisted to the WAL
//!   sidecar *and* as a durable log record — and any peer exchange
//!   surfaces a stale epoch, fencing the zombie for good.
//! - **Synchronous replication** (`SET SYNC_REPLICAS n`, the
//!   [`SyncGate`](bullfrog_txn::SyncGate)): commit acknowledgements wait
//!   for `n` replica acks on top of the merged durable horizon, with a
//!   `BLOCK`-or-`DEGRADE` policy; degrading is permitted only while the
//!   node verifiably holds the leadership lease.
//! - **Quorum leases** (this crate): a static member group — primary,
//!   replica, witness — where the leader renews a time-bounded lease at
//!   TTL/3 and a follower stands for election only after the lease it
//!   granted has lapsed. Vote grants burn the epoch in each granter's
//!   persistent ballot, so two candidates can never win the same epoch.
//!
//! Pieces:
//!
//! - [`HaMember`] — the per-node state machine, plugged into the TCP
//!   server as its [`HaHooks`](bullfrog_net::HaHooks): handles
//!   `RENEW`/`VOTE`/`PROMOTE`/`STATE`, gates writes by leadership, and
//!   reports `ha.*` gauges;
//! - [`HaNode`] — the loop thread: lease renewal while leading,
//!   lapse-detection and election (promoting the local
//!   [`Replica`](bullfrog_repl::Replica)) while following;
//! - [`FailoverClient`] — client-side re-routing off `READ_ONLY`
//!   bounces (whose messages name the primary) and HA state probes.
//!
//! The `repld` binary wires all of it into a deployable three-process
//! group (`primary` / `replica` / `witness`), and `loadgen --failover`
//! drives the end-state proof: kill the primary mid-migration under
//! seeded traffic, watch the replica promote, the respawned sweepers
//! finish the migration, and every acked commit survive.
//!
//! See `DESIGN.md` (§ bullfrog-ha) for the protocol and the safety
//! argument.

pub mod failover;
pub mod loops;
pub mod member;

pub use failover::FailoverClient;
pub use loops::HaNode;
pub use member::{HaConfig, HaMember, Role};
