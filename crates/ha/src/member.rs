//! The HA membership state machine: one [`HaMember`] per node, plugged
//! into the TCP server as its [`HaHooks`], handling the BFNET1 HA
//! opcodes (`RENEW`/`VOTE`/`PROMOTE`/`STATE`) and gating writes by
//! leadership.
//!
//! The member is deliberately passive: it answers requests and keeps
//! lease bookkeeping, while the active behaviour — renewing as a
//! leader, detecting a lapsed lease and standing for election as a
//! follower — lives in the loop ([`crate::HaNode`]). Splitting the two
//! keeps every state transition inspectable: the member mutates only
//! under its own lock, in response to either a wire request or a tick.
//!
//! Safety argument, in one paragraph: a commit is acknowledged only by
//! a node whose [`SyncGate`] is unfenced, the gate degrades only while
//! `lease_ok`, and `lease_ok` is set only after a majority of members
//! granted the current epoch's lease within the last TTL. A candidate
//! wins only with a majority of votes, each granted by a member whose
//! *own* copy of the lease has verifiably lapsed, and each vote adopts
//! the new epoch in the granter's persistent [`EpochStore`] ballot. So
//! a majority that elects a new leader intersects every majority that
//! could extend the old lease — the old leader can no longer renew, its
//! lease lapses (no degrade), and the first message it exchanges with a
//! newer-epoch peer fences it for good.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_net::server::HaHooks;
use bullfrog_net::wire::HaReq;
use bullfrog_net::Response;
use bullfrog_txn::{EpochStore, SyncGate};
use parking_lot::Mutex;

/// A member's current position in the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Holds (or is establishing) the leadership lease; accepts writes.
    Leader,
    /// Mirrors the leader (or waits for one); rejects writes with a
    /// re-route hint.
    Follower,
    /// Mid-election: a follower that saw the lease lapse.
    Candidate,
    /// Quorum-only member: votes and grants leases, never leads and
    /// holds no data.
    Witness,
}

impl Role {
    /// The wire string (`HA_STATE.role`).
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Leader => "leader",
            Role::Follower => "follower",
            Role::Candidate => "candidate",
            Role::Witness => "witness",
        }
    }

    /// Numeric encoding for `STATUS` gauges.
    fn code(self) -> i64 {
        match self {
            Role::Leader => 1,
            Role::Follower => 2,
            Role::Candidate => 3,
            Role::Witness => 4,
        }
    }
}

/// Static group configuration: this node's advertised address, the full
/// member list (self included), and the lease TTL every grant uses.
#[derive(Debug, Clone)]
pub struct HaConfig {
    /// The address peers and clients reach this node at.
    pub self_addr: String,
    /// Every member, self included. Order is irrelevant; identity is
    /// the address string, so all members must spell each other
    /// identically.
    pub members: Vec<String>,
    /// Lease duration; leaders renew at TTL/3.
    pub lease_ttl: Duration,
}

impl HaConfig {
    /// Votes/grants needed to win or hold leadership.
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// Every member except this node.
    pub fn peers(&self) -> impl Iterator<Item = &String> {
        self.members.iter().filter(|m| **m != self.self_addr)
    }
}

/// Lease bookkeeping, guarded by one lock.
struct MemberState {
    role: Role,
    /// Who this member last granted a lease to (or itself, as leader).
    leader: Option<String>,
    /// When that grant (or the leader's own majority) expires.
    lease_until: Instant,
    /// Operator asked for an election (`repld promote`).
    promote_requested: bool,
}

/// One node's HA membership.
pub struct HaMember {
    pub(crate) config: HaConfig,
    pub(crate) epoch: Arc<EpochStore>,
    /// The local commit gate, when this node has one (leaders and
    /// followers; witnesses carry no data and pass `None`).
    pub(crate) gate: Option<Arc<SyncGate>>,
    /// Whether `PROMOTE` may target this node (followers with a live
    /// replica; never witnesses or sitting leaders).
    promotable: bool,
    state: Mutex<MemberState>,
    renews_granted: AtomicU64,
    votes_granted: AtomicU64,
}

impl HaMember {
    /// Builds a member starting in `role`. The initial lease horizon is
    /// two TTLs out: a startup grace period so a follower does not call
    /// an election before the leader's first renewal can possibly land.
    pub fn new(
        config: HaConfig,
        epoch: Arc<EpochStore>,
        role: Role,
        gate: Option<Arc<SyncGate>>,
    ) -> Arc<HaMember> {
        let lease_until = Instant::now() + config.lease_ttl * 2;
        Arc::new(HaMember {
            promotable: role == Role::Follower,
            config,
            epoch,
            gate,
            state: Mutex::new(MemberState {
                role,
                leader: None,
                lease_until,
                promote_requested: false,
            }),
            renews_granted: AtomicU64::new(0),
            votes_granted: AtomicU64::new(0),
        })
    }

    /// This node's group configuration.
    pub fn config(&self) -> &HaConfig {
        &self.config
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.state.lock().role
    }

    /// Current fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.epoch()
    }

    /// Who this member believes leads, if anyone.
    pub fn leader(&self) -> Option<String> {
        self.state.lock().leader.clone()
    }

    /// Milliseconds left on the lease this member is honoring (its own,
    /// when leading).
    pub fn lease_remaining_ms(&self) -> u64 {
        let until = self.state.lock().lease_until;
        until.saturating_duration_since(Instant::now()).as_millis() as u64
    }

    /// True once the honored lease has fully lapsed.
    pub(crate) fn lease_lapsed(&self) -> bool {
        Instant::now() >= self.state.lock().lease_until
    }

    /// Takes (and clears) a pending operator promotion request.
    pub(crate) fn take_promote_request(&self) -> bool {
        std::mem::take(&mut self.state.lock().promote_requested)
    }

    /// Marks the follower as mid-election.
    pub(crate) fn set_candidate(&self) {
        let mut st = self.state.lock();
        if st.role == Role::Follower {
            st.role = Role::Candidate;
        }
    }

    /// Election lost (or failed to reach a majority): back to follower,
    /// honoring a fresh full TTL before standing again so the group is
    /// not hammered with back-to-back ballots.
    pub(crate) fn election_lost(&self) {
        let mut st = self.state.lock();
        if st.role == Role::Candidate {
            st.role = Role::Follower;
        }
        st.lease_until = Instant::now() + self.config.lease_ttl;
    }

    /// Election won and the local promotion committed: this node leads.
    pub(crate) fn became_leader(&self) {
        let mut st = self.state.lock();
        st.role = Role::Leader;
        st.leader = Some(self.config.self_addr.clone());
        st.lease_until = Instant::now() + self.config.lease_ttl;
        drop(st);
        if let Some(g) = &self.gate {
            g.set_lease_ok(true);
            g.set_leader_hint(Some(self.config.self_addr.clone()));
        }
    }

    /// A majority granted this leader's renewal: extend its own lease.
    pub(crate) fn extend_lease(&self) {
        let mut st = self.state.lock();
        st.leader = Some(self.config.self_addr.clone());
        st.lease_until = Instant::now() + self.config.lease_ttl;
        drop(st);
        if let Some(g) = &self.gate {
            g.set_lease_ok(true);
        }
    }

    /// The leader could not renew and its own lease has lapsed: it may
    /// no longer degrade (acks without the replica quorum could be lost
    /// to a promotion it cannot see). Not a fence — regaining a
    /// majority restores the lease.
    pub(crate) fn lease_lost(&self) {
        if let Some(g) = &self.gate {
            g.set_lease_ok(false);
        }
    }

    /// A higher epoch surfaced (renewal reply, vote grant, or a peer's
    /// renew): this node is deposed. Sitting leaders fence their gate —
    /// sticky, by design: a zombie never acks again.
    pub(crate) fn step_down(&self, new_leader: Option<String>) {
        let mut st = self.state.lock();
        let was_leader = st.role == Role::Leader;
        if was_leader || st.role == Role::Candidate {
            st.role = Role::Follower;
        }
        if let Some(l) = &new_leader {
            st.leader = Some(l.clone());
        }
        st.lease_until = Instant::now() + self.config.lease_ttl;
        drop(st);
        if was_leader {
            if let Some(g) = &self.gate {
                g.fence(new_leader);
                g.set_lease_ok(false);
            }
        }
    }

    fn handle_renew(&self, epoch: u64, leader: &str, ttl_ms: u64) -> bool {
        if epoch < self.epoch.epoch() {
            return false; // a zombie leader renewing on a stale epoch
        }
        let mut st = self.state.lock();
        if st.role == Role::Leader && leader != self.config.self_addr {
            if epoch <= self.epoch.epoch() {
                // Same-epoch split leader should be impossible (one
                // promotion per epoch); refuse rather than guess.
                return false;
            }
            // A newer leader exists: step down and fence, then grant.
            st.role = Role::Follower;
            if let Some(g) = &self.gate {
                g.fence(Some(leader.to_string()));
                g.set_lease_ok(false);
            }
        }
        if self.epoch.observe(epoch).is_err() {
            return false; // could not persist the adoption: grant nothing
        }
        st.leader = Some(leader.to_string());
        st.lease_until = Instant::now() + Duration::from_millis(ttl_ms);
        self.renews_granted.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn handle_vote(&self, epoch: u64, candidate: &str, forced: bool) -> bool {
        let mut st = self.state.lock();
        // Honoring a live lease for anyone else — including our own, as
        // a leader — refuses the ballot. This is the granter-side half
        // of "promotion only after the lease verifiably lapsed". An
        // operator-forced ballot (planned switchover) overrides it: the
        // operator vouches for the old leader, and the persisted
        // one-vote-per-epoch ballot still prevents double grants.
        if !forced && Instant::now() < st.lease_until && st.leader.as_deref() != Some(candidate) {
            return false;
        }
        let granted = self.epoch.grant_vote(epoch, candidate).unwrap_or(false);
        if granted {
            self.votes_granted.fetch_add(1, Ordering::Relaxed);
            if st.role == Role::Leader {
                // Granting a vote concedes the epoch: a leader only gets
                // here after failing to renew its own lease.
                st.role = Role::Follower;
                drop(st);
                if let Some(g) = &self.gate {
                    g.fence(Some(candidate.to_string()));
                    g.set_lease_ok(false);
                }
                return true;
            }
            // Election in progress: the winner's renewal names the
            // leader; until then advertise nobody.
            st.leader = None;
        }
        granted
    }

    fn handle_promote(&self) -> bool {
        if !self.promotable {
            return false;
        }
        self.state.lock().promote_requested = true;
        true
    }
}

impl HaHooks for HaMember {
    fn handle(&self, req: &HaReq) -> Response {
        let granted = match req {
            HaReq::Renew {
                epoch,
                leader,
                ttl_ms,
            } => self.handle_renew(*epoch, leader, *ttl_ms),
            HaReq::Vote {
                epoch,
                candidate,
                forced,
            } => self.handle_vote(*epoch, candidate, *forced),
            HaReq::Promote => self.handle_promote(),
            HaReq::State => true,
        };
        let st = self.state.lock();
        Response::HaState {
            granted,
            epoch: self.epoch.epoch(),
            role: st.role.as_str().to_string(),
            leader: st.leader.clone().unwrap_or_default(),
            lease_ms: st
                .lease_until
                .saturating_duration_since(Instant::now())
                .as_millis() as u64,
        }
    }

    fn write_block(&self) -> Option<String> {
        let st = self.state.lock();
        match st.role {
            Role::Leader => None,
            _ => Some(st.leader.clone().unwrap_or_else(|| "unknown".into())),
        }
    }

    fn status(&self) -> Vec<(String, i64)> {
        // Role and epoch must come from one lock hold: depositions
        // (`handle_renew`, `handle_vote`) flip the role and bump the
        // epoch under the same critical section, so sampling the epoch
        // after releasing the lock could pair `is_leader = 1` with a
        // successor's epoch this node never led at.
        let (role, epoch, lease_ms) = {
            let st = self.state.lock();
            (
                st.role,
                self.epoch.epoch(),
                st.lease_until
                    .saturating_duration_since(Instant::now())
                    .as_millis() as i64,
            )
        };
        vec![
            ("ha.role".into(), role.code()),
            ("ha.is_leader".into(), i64::from(role == Role::Leader)),
            ("ha.epoch".into(), epoch as i64),
            ("ha.lease_remaining_ms".into(), lease_ms),
            ("ha.members".into(), self.config.members.len() as i64),
            ("ha.majority".into(), self.config.majority() as i64),
            (
                "ha.renews_granted".into(),
                self.renews_granted.load(Ordering::Relaxed) as i64,
            ),
            (
                "ha.votes_granted".into(),
                self.votes_granted.load(Ordering::Relaxed) as i64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(ttl_ms: u64) -> HaConfig {
        HaConfig {
            self_addr: "w:1".into(),
            members: vec!["p:1".into(), "r:1".into(), "w:1".into()],
            lease_ttl: Duration::from_millis(ttl_ms),
        }
    }

    fn renew(m: &HaMember, epoch: u64, leader: &str, ttl_ms: u64) -> bool {
        match m.handle(&HaReq::Renew {
            epoch,
            leader: leader.into(),
            ttl_ms,
        }) {
            Response::HaState { granted, .. } => granted,
            other => panic!("unexpected reply {other:?}"),
        }
    }

    fn vote(m: &HaMember, epoch: u64, candidate: &str) -> bool {
        vote_as(m, epoch, candidate, false)
    }

    fn vote_as(m: &HaMember, epoch: u64, candidate: &str, forced: bool) -> bool {
        match m.handle(&HaReq::Vote {
            epoch,
            candidate: candidate.into(),
            forced,
        }) {
            Response::HaState { granted, .. } => granted,
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn majority_is_strict() {
        assert_eq!(config(100).majority(), 2);
        let mut five = config(100);
        five.members.push("x:1".into());
        five.members.push("y:1".into());
        assert_eq!(five.majority(), 3);
    }

    #[test]
    fn live_lease_refuses_votes_until_it_lapses() {
        let m = HaMember::new(config(40), EpochStore::volatile(), Role::Witness, None);
        assert!(renew(&m, 0, "p:1", 40));
        // A live lease for p:1 refuses r:1's ballot even at a higher
        // epoch — the lease has not verifiably lapsed.
        assert!(!vote(&m, 1, "r:1"));
        std::thread::sleep(Duration::from_millis(50));
        assert!(vote(&m, 1, "r:1"));
        assert_eq!(m.epoch(), 1);
        // One vote per epoch, ever — even after the first grant.
        assert!(!vote(&m, 1, "p:1"));
    }

    #[test]
    fn forced_vote_overrides_a_live_lease() {
        let m = HaMember::new(config(10_000), EpochStore::volatile(), Role::Witness, None);
        assert!(renew(&m, 0, "p:1", 10_000));
        // Ordinary ballot: refused, the lease is live for hours.
        assert!(!vote(&m, 1, "r:1"));
        // Operator-forced ballot (planned switchover): granted.
        assert!(vote_as(&m, 1, "r:1", true));
        assert_eq!(m.epoch(), 1);
        // The ballot is still one-per-epoch: forcing does not allow a
        // second candidate through at the same epoch.
        assert!(!vote_as(&m, 1, "p:1", true));
    }

    #[test]
    fn stale_epoch_renewal_is_refused() {
        let m = HaMember::new(config(40), EpochStore::volatile(), Role::Witness, None);
        std::thread::sleep(Duration::from_millis(90)); // startup grace
        assert!(vote(&m, 3, "r:1"));
        assert!(!renew(&m, 2, "p:1", 40), "a deposed leader must not renew");
        assert!(renew(&m, 3, "r:1", 40), "the winner renews at its epoch");
        assert_eq!(m.leader().as_deref(), Some("r:1"));
    }

    #[test]
    fn leader_write_block_and_role_strings() {
        let m = HaMember::new(config(50), EpochStore::volatile(), Role::Leader, None);
        assert_eq!(m.write_block(), None);
        let f = HaMember::new(config(50), EpochStore::volatile(), Role::Follower, None);
        assert_eq!(f.write_block().as_deref(), Some("unknown"));
        assert!(renew(&f, 0, "p:1", 50));
        assert_eq!(f.write_block().as_deref(), Some("p:1"));
        assert_eq!(Role::Candidate.as_str(), "candidate");
    }

    #[test]
    fn deposed_leader_fences_its_gate_on_newer_renewal() {
        let gate = Arc::new(SyncGate::default());
        let mut cfg = config(50);
        cfg.self_addr = "p:1".into();
        let m = HaMember::new(
            cfg,
            EpochStore::volatile(),
            Role::Leader,
            Some(Arc::clone(&gate)),
        );
        assert!(!gate.is_fenced());
        // A renewal from a higher-epoch leader deposes and fences.
        assert!(renew(&m, 1, "r:1", 50));
        assert_eq!(m.role(), Role::Follower);
        assert!(gate.is_fenced());
        assert_eq!(gate.leader_hint().as_deref(), Some("r:1"));
    }

    /// Regression: `status()` used to read the role under the state
    /// lock but the epoch *after* releasing it, so a deposition racing
    /// the read could pair `ha.is_leader = 1` with the successor's
    /// epoch — a leadership claim at an epoch this node never led.
    /// Both values now come from one lock hold, the same critical
    /// section depositions mutate them under.
    #[test]
    fn status_never_pairs_leadership_with_a_successor_epoch() {
        use std::sync::atomic::AtomicBool;

        for _ in 0..200 {
            let m = HaMember::new(config(40), EpochStore::volatile(), Role::Leader, None);
            m.epoch.observe(1).unwrap();
            let stop = Arc::new(AtomicBool::new(false));
            let reader = {
                let m = Arc::clone(&m);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut torn = false;
                    while !stop.load(Ordering::Acquire) {
                        let pairs = m.status();
                        let get = |key: &str| {
                            pairs.iter().find(|(k, _)| k == key).expect("key present").1
                        };
                        if get("ha.is_leader") == 1 && get("ha.epoch") >= 2 {
                            torn = true;
                            break;
                        }
                    }
                    torn
                })
            };
            // The deposing renewal flips role→Follower and bumps the
            // epoch to 2 in one critical section.
            assert!(renew(&m, 2, "r:1", 40));
            stop.store(true, Ordering::Release);
            assert!(
                !reader.join().unwrap(),
                "status() reported leadership at the deposing epoch"
            );
        }
    }

    #[test]
    fn promote_targets_followers_only() {
        let w = HaMember::new(config(50), EpochStore::volatile(), Role::Witness, None);
        match w.handle(&HaReq::Promote) {
            Response::HaState { granted, .. } => assert!(!granted),
            other => panic!("unexpected reply {other:?}"),
        }
        let f = HaMember::new(config(50), EpochStore::volatile(), Role::Follower, None);
        match f.handle(&HaReq::Promote) {
            Response::HaState { granted, .. } => assert!(granted),
            other => panic!("unexpected reply {other:?}"),
        }
        assert!(f.take_promote_request());
        assert!(!f.take_promote_request());
    }
}
