//! repld: the replication + HA daemon for multi-process deployments.
//!
//! One binary, role per subcommand:
//!
//! - `repld primary --listen <addr> --wal-dir <dir>` — restore (or
//!   create) a file-backed primary from `<dir>/repld.wal` + sidecar +
//!   DDL journal, serve SQL and replication on `<addr>` until a remote
//!   `SHUTDOWN`.
//! - `repld replica --listen <addr> --primary <addr> [--wal-dir <dir>]`
//!   — read-only replica: bootstraps/subscribes to the primary, serves
//!   `SELECT`s on `<addr>`, rejects writes with the READ_ONLY code.
//!   With `--wal-dir` its WAL and fencing-epoch sidecar are file-backed
//!   so a promotion survives a restart.
//! - `repld witness --listen <addr>` — quorum-only member: votes and
//!   grants leases, holds no data, never leads.
//! - `repld promote --addr <addr>` — ask a replica to stand for
//!   election now (planned failover; majority voting still applies).
//! - `repld wait-promoted --addr <addr> [--timeout-secs N]` — poll
//!   until the node reports itself promoted; exit non-zero on timeout.
//! - `repld status --addr <addr> [--json|--full]` — one line of
//!   role/epoch/leader/lease/sync-lag; `--json` for machines, `--full`
//!   for every STATUS pair.
//! - `repld wait-zero-lag --addr <addr> [--timeout-secs N]` — poll
//!   `STATUS` until replication lag is zero.
//! - `repld shutdown --addr <addr>` — remote graceful shutdown.
//!
//! HA flags (`primary`/`replica`/`witness`): `--ha-self <addr>
//! --ha-members <a,b,c>` join the static quorum group (all three must
//! list the same members); `--lease-ms N` sets the lease TTL (default
//! 1500). The primary additionally takes `--sync-replicas N` and
//! `--sync-policy block|degrade:<ms>` to gate commit acks.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_core::{Bullfrog, ClientAccess};
use bullfrog_engine::{CheckpointPolicy, Database, DbConfig};
use bullfrog_ha::{HaConfig, HaMember, HaNode, Role};
use bullfrog_net::wire::HaReq;
use bullfrog_net::{Client, Server, ServerConfig};
use bullfrog_repl::{restore, Replica, ReplicationSender};
use bullfrog_txn::{EpochStore, SyncPolicy, WalOptions};

/// Parsed `--flag value` / bare `--flag` command line.
struct Opts {
    cmd: String,
    values: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

impl Opts {
    fn parse() -> Opts {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            usage_exit();
        }
        let cmd = args.remove(0);
        let mut values = std::collections::HashMap::new();
        let mut switches = std::collections::HashSet::new();
        let mut it = args.into_iter().peekable();
        while let Some(flag) = it.next() {
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = it.next().expect("peeked");
                    values.insert(flag, value);
                }
                _ => {
                    switches.insert(flag);
                }
            }
        }
        Opts {
            cmd,
            values,
            switches,
        }
    }

    fn require(&self, name: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| fail(&format!("{} requires {name}", self.cmd)))
    }

    fn get(&self, name: &str) -> Option<String> {
        self.values.get(name).cloned()
    }

    fn num(&self, name: &str, default: u64) -> u64 {
        self.values
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| fail(&format!("{name} must be numeric, got {v}")))
            })
            .unwrap_or(default)
    }

    fn has(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// The HA group config, when `--ha-self`/`--ha-members` are given.
    fn ha_config(&self) -> Option<HaConfig> {
        let self_addr = self.get("--ha-self")?;
        let members: Vec<String> = self
            .require("--ha-members")
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if !members.contains(&self_addr) {
            fail("--ha-members must include --ha-self");
        }
        Some(HaConfig {
            self_addr,
            members,
            lease_ttl: Duration::from_millis(self.num("--lease-ms", 1500)),
        })
    }
}

fn main() {
    let opts = Opts::parse();
    match opts.cmd.as_str() {
        "primary" => run_primary(&opts),
        "replica" => run_replica(&opts),
        "witness" => run_witness(&opts),
        "status" => run_status(&opts),
        "promote" => {
            let mut client = connect(&opts.require("--addr"));
            let reply = client
                .ha(HaReq::Promote)
                .unwrap_or_else(|e| fail(&format!("PROMOTE: {e}")));
            if !reply.granted {
                fail(&format!(
                    "{} refused promotion (role {})",
                    opts.require("--addr"),
                    reply.role
                ));
            }
            println!("repld: promotion requested (election pending majority vote)");
        }
        "wait-promoted" => {
            let timeout = Duration::from_secs(opts.num("--timeout-secs", 30));
            wait_promoted(&opts.require("--addr"), timeout);
        }
        "wait-zero-lag" => {
            let timeout = Duration::from_secs(opts.num("--timeout-secs", 30));
            wait_zero_lag(&opts.require("--addr"), timeout);
        }
        "shutdown" => {
            let mut client = connect(&opts.require("--addr"));
            client
                .shutdown_server()
                .unwrap_or_else(|e| fail(&format!("SHUTDOWN: {e}")));
            println!("repld: shutdown acknowledged");
        }
        _ => usage_exit(),
    }
}

fn run_primary(opts: &Opts) {
    let listen = opts.require("--listen");
    let wal_dir = opts.require("--wal-dir");
    let dir = std::path::PathBuf::from(&wal_dir);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("create {wal_dir}: {e}")));
    let wal_path = dir.join("repld.wal");
    let config = DbConfig {
        checkpoint_policy: Some(CheckpointPolicy {
            max_resident_records: 4_096,
            max_flushed_bytes: 0,
            poll_interval: Duration::from_millis(50),
        }),
        ..DbConfig::default()
    };
    // restore() handles the empty-directory case too: no sidecar, no
    // journal, empty WAL — a fresh primary.
    let (bf, journal, report) = restore(&wal_path, config, WalOptions::default())
        .unwrap_or_else(|e| fail(&format!("restore from {wal_dir}: {e}")));
    if report.tail_records > 0 || report.image_rows > 0 || report.ddl_applied > 0 {
        println!(
            "repld: restored {} image rows + {} tail records ({} txns), {} DDL events, \
             {} granules, log [{}, {}), epoch {}",
            report.image_rows,
            report.tail_records,
            report.tail_txns,
            report.ddl_applied,
            report.granules,
            report.start_lsn,
            report.end_lsn,
            report.epoch,
        );
    }
    // Re-open the sidecar restore() merged: authoritative from here on.
    let epoch = EpochStore::open(&wal_path).unwrap_or_else(|e| fail(&format!("epoch store: {e}")));
    let gate = bf.db().wal().sync_gate();
    gate.set_required(opts.num("--sync-replicas", 0) as usize);
    if let Some(policy) = opts.get("--sync-policy") {
        gate.set_policy(parse_sync_policy(&policy));
    }
    let sender = ReplicationSender::with_epoch(Arc::clone(&bf), Arc::clone(&journal), epoch);
    let epoch = Arc::clone(sender.epoch_store());

    let mut ha_node = None;
    let mut server_config = ServerConfig {
        replication: Some(sender),
        ..ServerConfig::default()
    };
    if let Some(ha) = opts.ha_config() {
        let member = HaMember::new(ha, epoch, Role::Leader, Some(Arc::clone(&gate)));
        server_config.ha = Some(Arc::clone(&member) as _);
        ha_node = Some(HaNode::spawn(member, None));
    }
    let mut server = Server::bind(listen.as_str(), bf, server_config)
        .unwrap_or_else(|e| fail(&format!("bind {listen}: {e}")));
    println!("repld: primary serving on {}", server.local_addr());
    server.wait_shutdown();
    if let Some(mut node) = ha_node {
        node.shutdown();
    }
    println!("repld: primary stopped");
}

fn run_replica(opts: &Opts) {
    let listen = opts.require("--listen");
    let primary = opts.require("--primary");
    // A promotable replica wants a file-backed WAL + epoch sidecar: the
    // promotion's epoch bump must survive a restart of this process.
    let (config, wal_path) = match opts.get("--wal-dir") {
        Some(wal_dir) => {
            let dir = std::path::PathBuf::from(&wal_dir);
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| fail(&format!("create {wal_dir}: {e}")));
            (DbConfig::default(), Some(dir.join("repld.wal")))
        }
        None => (DbConfig::default(), None),
    };
    let db = Arc::new(match &wal_path {
        Some(path) => Database::with_wal_file(config, path)
            .unwrap_or_else(|e| fail(&format!("open WAL: {e}"))),
        None => Database::with_config(config),
    });
    let epoch = match &wal_path {
        Some(path) => EpochStore::open(path).unwrap_or_else(|e| fail(&format!("epoch store: {e}"))),
        None => EpochStore::volatile(),
    };
    let bf = Arc::new(Bullfrog::new(db));
    let replica = Replica::start_with_epoch(primary.clone(), Arc::clone(&bf), Arc::clone(&epoch));
    let read_only = replica.read_only();
    let gate = bf.db().wal().sync_gate();
    gate.set_leader_hint(Some(primary.clone()));

    let mut ha_node = None;
    let mut server_config = ServerConfig {
        read_only: Some(read_only),
        ..ServerConfig::default()
    };
    let replica = Arc::new(parking_lot::Mutex::new(replica));
    if let Some(ha) = opts.ha_config() {
        let member = HaMember::new(ha, epoch, Role::Follower, Some(gate));
        server_config.ha = Some(Arc::clone(&member) as _);
        ha_node = Some(HaNode::spawn(member, Some(Arc::clone(&replica))));
    }
    let mut server = Server::bind(listen.as_str(), bf, server_config)
        .unwrap_or_else(|e| fail(&format!("bind {listen}: {e}")));
    println!(
        "repld: replica serving on {} (primary {primary})",
        server.local_addr()
    );
    server.wait_shutdown();
    if let Some(mut node) = ha_node {
        node.shutdown();
    }
    replica.lock().shutdown();
    println!("repld: replica stopped");
}

fn run_witness(opts: &Opts) {
    let listen = opts.require("--listen");
    let ha = opts
        .ha_config()
        .unwrap_or_else(|| fail("witness requires --ha-self and --ha-members"));
    // The witness's ballot must survive restarts, or a crash could let
    // it vote twice at one epoch: persist the sidecar when a directory
    // is given.
    let epoch = match opts.get("--wal-dir") {
        Some(wal_dir) => {
            let dir = std::path::PathBuf::from(&wal_dir);
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| fail(&format!("create {wal_dir}: {e}")));
            EpochStore::open(dir.join("repld.wal"))
                .unwrap_or_else(|e| fail(&format!("epoch store: {e}")))
        }
        None => EpochStore::volatile(),
    };
    let member = HaMember::new(ha, epoch, Role::Witness, None);
    let bf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let mut server = Server::bind(
        listen.as_str(),
        bf,
        ServerConfig {
            ha: Some(member as _),
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| fail(&format!("bind {listen}: {e}")));
    println!("repld: witness serving on {}", server.local_addr());
    server.wait_shutdown();
    println!("repld: witness stopped");
}

/// One line of operational truth: role, epoch, leader, lease left,
/// sync lag. `--json` for machines, `--full` for every STATUS pair.
fn run_status(opts: &Opts) {
    let addr = opts.require("--addr");
    let mut client = connect(&addr);
    let status = client
        .status()
        .unwrap_or_else(|e| fail(&format!("STATUS: {e}")));
    if opts.has("--full") {
        // Routinely piped into `grep -q`, which closes the pipe at
        // first match — treat EPIPE as "reader satisfied", not a panic.
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        for (k, v) in status {
            if writeln!(out, "{k} = {v}").is_err() {
                return;
            }
        }
        return;
    }
    let get = |key: &str| status.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
    // Prefer the HA member's view; fall back to repl.* gauges on nodes
    // running without a quorum group.
    let (role, epoch, leader, lease_ms) = match client.ha_state() {
        Ok(st) => (st.role, st.epoch, st.leader, st.lease_ms),
        Err(_) => {
            let role = if get("repl.role_primary") == Some(1) {
                "primary"
            } else if get("repl.role_replica") == Some(1) {
                "replica"
            } else {
                "standalone"
            };
            let epoch = get("repl.epoch").unwrap_or(0).max(0) as u64;
            (role.to_string(), epoch, String::new(), 0)
        }
    };
    let sync_lag = get("repl.lag_lsns").unwrap_or(0);
    // Latency truth rides along from METRICS: commit p50/p99 plus the
    // p99 of every migration phase that has fired. Best-effort — an
    // older peer without the opcode just omits the fields.
    let (commit_p50, commit_p99, phases) = match client.metrics() {
        Ok(snap) => {
            let commit = snap.histogram("engine.commit_us");
            let p50 = commit.map_or(0, |h| h.quantile(0.50));
            let p99 = commit.map_or(0, |h| h.quantile(0.99));
            let mut phases = String::new();
            for (label, name) in [
                ("granule", "migrate.granule_us"),
                ("quiesce", "migrate.quiesce_us"),
                ("flip", "migrate.flip_us"),
                ("finalize", "migrate.finalize_us"),
            ] {
                if let Some(h) = snap.histogram(name) {
                    if h.count() > 0 {
                        phases.push_str(&format!(" {label}_p99_us={}", h.quantile(0.99)));
                    }
                }
            }
            (p50, p99, phases)
        }
        Err(_) => (0, 0, String::new()),
    };
    if opts.has("--json") {
        println!(
            "{{\"role\":\"{role}\",\"epoch\":{epoch},\"leader\":\"{leader}\",\
             \"lease_ms\":{lease_ms},\"sync_lag\":{sync_lag},\
             \"commit_p50_us\":{commit_p50},\"commit_p99_us\":{commit_p99}}}"
        );
    } else {
        println!(
            "role={role} epoch={epoch} leader={} lease_ms={lease_ms} sync_lag={sync_lag} \
             commit_p50_us={commit_p50} commit_p99_us={commit_p99}{phases}",
            if leader.is_empty() { "-" } else { &leader }
        );
    }
}

/// Polls until the node reports itself promoted (it bumped the epoch
/// and went writable), via the `repl.promoted` gauge.
fn wait_promoted(addr: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        // Reconnect per poll: the node may still be mid-promotion (or
        // the listener mid-start) when we first ask.
        if let Ok(mut client) = Client::connect(addr) {
            if let Ok(status) = client.status() {
                let get = |key: &str| status.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
                if get("repl.promoted") == Some(1) {
                    let epoch = get("repl.epoch").unwrap_or(0);
                    println!("repld: {addr} promoted (epoch {epoch})");
                    return;
                }
            }
        }
        if Instant::now() >= deadline {
            fail(&format!("timed out waiting for {addr} to promote"));
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Polls `STATUS` until replication lag reads zero. On a primary that
/// additionally requires a connected, fully-acked replica; on a replica
/// it requires the applied LSN to have reached the primary's durable
/// horizon.
fn wait_zero_lag(addr: &str, timeout: Duration) {
    let mut client = connect(addr);
    let deadline = Instant::now() + timeout;
    let mut last = Vec::new();
    loop {
        let status = client
            .status()
            .unwrap_or_else(|e| fail(&format!("STATUS: {e}")));
        let get = |key: &str| status.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        let settled = if get("repl.role_primary") == Some(1) {
            get("repl.replicas").unwrap_or(0) >= 1 && get("repl.lag_lsns") == Some(0)
        } else if get("repl.role_replica") == Some(1) {
            get("repl.lag_lsns") == Some(0)
        } else {
            fail(&format!(
                "{addr} reports no repl.* role — not a replication node"
            ))
        };
        if settled {
            println!("repld: zero lag at {addr}");
            return;
        }
        if Instant::now() >= deadline {
            fail(&format!(
                "timed out waiting for zero lag at {addr}: {last:?}"
            ));
        }
        last = status
            .into_iter()
            .filter(|(k, _)| k.starts_with("repl."))
            .collect();
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn parse_sync_policy(s: &str) -> SyncPolicy {
    if s.eq_ignore_ascii_case("block") {
        return SyncPolicy::Block;
    }
    if let Some(ms) = s.strip_prefix("degrade:") {
        let ms: u64 = ms
            .parse()
            .unwrap_or_else(|_| fail(&format!("--sync-policy degrade:<ms>, got {s}")));
        return SyncPolicy::Degrade(Duration::from_millis(ms));
    }
    fail(&format!(
        "--sync-policy must be block or degrade:<ms>, got {s}"
    ))
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect {addr}: {e}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("repld: {msg}");
    std::process::exit(1);
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: repld primary --listen <addr> --wal-dir <dir> [--sync-replicas N] \
         [--sync-policy block|degrade:<ms>] [HA flags]\n\
         \x20      repld replica --listen <addr> --primary <addr> [--wal-dir <dir>] [HA flags]\n\
         \x20      repld witness --listen <addr> [--wal-dir <dir>] [HA flags]\n\
         \x20      repld promote --addr <addr>\n\
         \x20      repld wait-promoted --addr <addr> [--timeout-secs N]\n\
         \x20      repld status --addr <addr> [--json|--full]\n\
         \x20      repld wait-zero-lag --addr <addr> [--timeout-secs N]\n\
         \x20      repld shutdown --addr <addr>\n\
         HA flags: --ha-self <addr> --ha-members <a,b,c> [--lease-ms N]"
    );
    std::process::exit(2);
}
