//! loadgen: concurrent TCP clients driving a lazy migration end to end.
//!
//! The scenario the paper cares about, over real sockets:
//!
//! 1. an admin session creates `accounts` and loads it;
//! 2. N worker clients hammer it with transfer transactions
//!    (`BEGIN`/`UPDATE`/`UPDATE`/`COMMIT`) while the admin submits
//!    migration DDL mid-traffic — the 1:1 (bitmap-tracked) migration
//!    `accounts → accounts_v2`;
//! 3. workers switch to the new table without a pause, their reads and
//!    writes lazily migrating the slices they touch, background threads
//!    sweeping the rest;
//! 4. after the drain: exactly-once verification (row count, conserved
//!    balance, `rows_migrated == rows loaded`, zero conflict skips),
//!    `FINALIZE MIGRATION`, then a second, aggregating (hash-tracked)
//!    migration `accounts_v2 → owner_totals` driven the same way;
//! 5. `SHUTDOWN`, which must drain without dropping a committed write.
//!
//! `--failover` runs the high-availability end-state proof instead: a
//! three-process `repld` group (primary + replica + witness, quorum
//! leases, `SYNC_REPLICAS 1` with the `BLOCK` policy), seeded transfer
//! traffic through [`FailoverClient`]s that log every transfer in an
//! in-database `txlog`, `SIGKILL` of the primary mid-1:1-migration,
//! lease-lapse election and promotion on the replica, respawned
//! sweepers finishing the migration on the survivor, and a final audit:
//! every acked commit present (`acked ⊆ txlog`), balances equal to the
//! transaction log's replay, and the n:1 GROUP BY migration run to
//! completion on the survivor.
//!
//! Deterministic per `--seed`. Exits non-zero on any violated invariant.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_cluster::{ClusterClient, Coordinator, LocalCluster, ShardMap};
use bullfrog_common::Value;
use bullfrog_core::Bullfrog;
use bullfrog_engine::{CheckpointPolicy, Database, DbConfig, EngineMode};
use bullfrog_ha::FailoverClient;
use bullfrog_net::{err_code, Client, ClientError, Server, ServerConfig};
use bullfrog_repl::{DdlJournal, Replica, ReplicationSender};
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};

struct Args {
    clients: usize,
    accounts: i64,
    owners: i64,
    ops: usize,
    seed: u64,
    /// `COMMIT` (sync, waits for the merged durable horizon) or
    /// `COMMIT NOWAIT` (acknowledged at WAL-enqueue time).
    nowait: bool,
    /// When set, the server runs file-backed: sharded WAL under this
    /// directory instead of a purely in-memory log.
    wal_dir: Option<std::path::PathBuf>,
    /// Drive an external server at this address instead of self-hosting
    /// (the external server is left running: no SHUTDOWN at the end).
    addr: Option<String>,
    /// Attach a read-only replica to the self-hosted primary and verify
    /// primary/replica equivalence after the drain. Implies a
    /// file-backed WAL (replication ships durable frames only); uses a
    /// scratch directory when `--wal-dir` is not given.
    replica: bool,
    /// Concurrency-control mode for the self-hosted server (and its
    /// replica): `2pl` (default) or `si`. Defaults from
    /// `BULLFROG_ENGINE_MODE` like every other harness, so the same
    /// script drives either engine.
    mode: EngineMode,
    /// When > 0, run the shared-nothing cluster scenario instead: this
    /// many loopback member nodes under one shard map, workers routed
    /// per key, migrations driven as two-phase cluster flips (with the
    /// cross-node aggregate exchange for the GROUP BY step), and a
    /// final scatter-gathered scan checked byte-identical to a
    /// single-node oracle.
    cluster: usize,
    /// Run the HA failover scenario: spawn a `repld` primary + replica
    /// + witness as child processes, kill the primary mid-migration
    /// under load, and verify zero lost acked commits on the survivor.
    failover: bool,
    /// When > 0, run the high-connection network scenario instead: park
    /// this many mostly-idle connections on a serve-only child process
    /// (each side of a socket pair burns one fd, so a 10k-connection
    /// run needs the two ends in separate processes to fit a 20k fd
    /// limit), drive point reads from a bounded worker set, report
    /// p50/p99, then prove every parked session still answers.
    connections: usize,
    /// Net scenario: PREPARE each worker's statement once and EXECUTE
    /// with bound parameters instead of sending SQL text per request.
    prepared: bool,
    /// Net scenario: batch requests into pipelined frame bursts instead
    /// of one round trip per statement.
    pipeline: bool,
    /// Serve-only mode (used as the child of `--connections`): bind a
    /// loopback server, print its address, and block until a remote
    /// SHUTDOWN.
    serve: bool,
    /// Run the observability timeline scenario instead: both engine
    /// modes in one invocation, per-second latency histograms across
    /// mid-traffic 1:1 and n:1 migrations, JSON to
    /// `target/BENCH_obs.json` (override with `BENCH_OBS_JSON`).
    timeline: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            clients: 32,
            accounts: 256,
            owners: 16,
            ops: 20,
            seed: 42,
            nowait: false,
            wal_dir: None,
            addr: None,
            replica: false,
            mode: EngineMode::from_env(),
            cluster: 0,
            failover: false,
            connections: 0,
            prepared: false,
            pipeline: false,
            serve: false,
            timeline: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut take = |name: &str| -> u64 {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} needs a numeric value"))
            };
            match flag.as_str() {
                "--clients" => args.clients = take("--clients") as usize,
                "--accounts" => args.accounts = take("--accounts") as i64,
                "--owners" => args.owners = take("--owners") as i64,
                "--ops" => args.ops = take("--ops") as usize,
                "--seed" => args.seed = take("--seed"),
                "--commit-mode" => {
                    args.nowait = match it.next().as_deref() {
                        Some("sync") => false,
                        Some("nowait") => true,
                        other => panic!("--commit-mode must be sync or nowait, got {other:?}"),
                    }
                }
                "--wal-dir" => {
                    args.wal_dir = Some(
                        it.next()
                            .unwrap_or_else(|| panic!("--wal-dir needs a directory"))
                            .into(),
                    )
                }
                "--addr" => {
                    args.addr = Some(
                        it.next()
                            .unwrap_or_else(|| panic!("--addr needs host:port")),
                    )
                }
                "--replica" => args.replica = true,
                "--cluster" => args.cluster = take("--cluster") as usize,
                "--failover" => args.failover = true,
                "--connections" => args.connections = take("--connections") as usize,
                "--prepared" => args.prepared = true,
                "--pipeline" => args.pipeline = true,
                "--serve" => args.serve = true,
                "--timeline" => args.timeline = true,
                "--engine-mode" => {
                    args.mode = match it.next().as_deref() {
                        Some("2pl") => EngineMode::TwoPL,
                        Some("si" | "snapshot" | "mvcc") => EngineMode::Snapshot,
                        other => panic!("--engine-mode must be 2pl or si, got {other:?}"),
                    }
                }
                other => panic!("unknown flag {other}"),
            }
        }
        if args.replica && args.addr.is_some() {
            panic!("--replica needs the self-hosted server; drop --addr");
        }
        if args.cluster > 0 && (args.replica || args.addr.is_some()) {
            panic!("--cluster self-hosts its member nodes; drop --replica/--addr");
        }
        if args.failover && (args.replica || args.addr.is_some() || args.cluster > 0) {
            panic!("--failover spawns its own repld group; drop --replica/--addr/--cluster");
        }
        if (args.prepared || args.pipeline) && args.connections == 0 && !args.serve {
            panic!("--prepared/--pipeline belong to the net scenario; add --connections N");
        }
        if args.connections > 0 && (args.replica || args.cluster > 0 || args.failover) {
            panic!(
                "--connections runs its own serve-only child; drop --replica/--cluster/--failover"
            );
        }
        if args.timeline
            && (args.replica
                || args.addr.is_some()
                || args.cluster > 0
                || args.failover
                || args.connections > 0)
        {
            panic!("--timeline self-hosts both engine modes; drop the other scenario flags");
        }
        args
    }
}

const INITIAL_BALANCE: i64 = 1000;

/// Phases broadcast from the admin thread to the workers.
const PHASE_OLD: usize = 0; // write `accounts`
const PHASE_NEW: usize = 1; // write `accounts_v2`
const PHASE_PAUSE: usize = 2; // quiesce while the admin verifies
const PHASE_TOTALS: usize = 3; // read `owner_totals`
const PHASE_DONE: usize = 4;

fn main() {
    let args = Args::parse();
    let started = Instant::now();
    if args.serve {
        run_serve(&args);
        return;
    }
    if args.timeline {
        run_timeline(&args, started);
        return;
    }
    if args.connections > 0 {
        run_net(&args, started);
        return;
    }
    if args.failover {
        run_failover(&args, started);
        return;
    }
    if args.cluster > 0 {
        run_cluster(&args, started);
        return;
    }

    // Scratch WAL directory when --replica needs a file-backed log and
    // the caller did not provide one.
    let scratch_dir = (args.replica && args.addr.is_none() && args.wal_dir.is_none()).then(|| {
        let dir = std::env::temp_dir().join(format!("bf-loadgen-repl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch WAL dir");
        dir
    });

    // Self-hosted server on an ephemeral loopback port (background
    // checkpointing on so the scheduler satellite runs under load too),
    // unless --addr points at an external one.
    let mut hosted: Option<(Server, Arc<Bullfrog>)> = None;
    let mut attached: Option<(Server, Replica)> = None;
    let addr: std::net::SocketAddr = match &args.addr {
        Some(a) => {
            use std::net::ToSocketAddrs;
            a.to_socket_addrs()
                .expect("--addr must resolve")
                .next()
                .expect("--addr must resolve")
        }
        None => {
            let config = DbConfig {
                checkpoint_policy: Some(CheckpointPolicy {
                    max_resident_records: 2_000,
                    max_flushed_bytes: 0,
                    poll_interval: Duration::from_millis(20),
                }),
                mode: args.mode,
                ..DbConfig::default()
            };
            let wal_dir = args.wal_dir.clone().or_else(|| scratch_dir.clone());
            let wal_path = wal_dir.as_ref().map(|d| d.join("loadgen.wal"));
            let db = Arc::new(match &wal_path {
                Some(path) => {
                    Database::with_wal_file(config, path).expect("open WAL under --wal-dir")
                }
                None => Database::with_config(config),
            });
            let bf = Arc::new(Bullfrog::new(db));
            let mut server_config = ServerConfig {
                max_connections: args.clients + 8,
                idle_timeout: Duration::from_secs(30),
                statement_timeout: Duration::from_secs(10),
                ..ServerConfig::default()
            };
            if args.replica {
                let journal = Arc::new(
                    DdlJournal::open(DdlJournal::path_for(
                        wal_path.as_ref().expect("--replica implies a WAL path"),
                    ))
                    .expect("open DDL journal"),
                );
                server_config.replication =
                    Some(ReplicationSender::new(Arc::clone(&bf), journal) as _);
            }
            let server = Server::bind(("127.0.0.1", 0), Arc::clone(&bf), server_config)
                .expect("bind loopback");
            let addr = server.local_addr();
            if args.replica {
                // The replica applies physical frames, so it could run
                // either mode; matching the primary keeps its local
                // reads under the same isolation the run is exercising.
                let rdb = Database::with_config(DbConfig {
                    mode: args.mode,
                    ..DbConfig::default()
                });
                let rbf = Arc::new(Bullfrog::new(Arc::new(rdb)));
                let replica = Replica::start(addr.to_string(), Arc::clone(&rbf));
                let rserver = Server::bind(
                    ("127.0.0.1", 0),
                    rbf,
                    ServerConfig {
                        read_only: Some(replica.read_only()),
                        ..ServerConfig::default()
                    },
                )
                .expect("bind replica loopback");
                println!("loadgen: replica serving on {}", rserver.local_addr());
                attached = Some((rserver, replica));
            }
            hosted = Some((server, bf));
            addr
        }
    };
    println!(
        "loadgen: serving on {addr} ({} clients, {} engine)",
        args.clients,
        args.mode.as_str()
    );

    let mut admin = Client::connect(addr).expect("admin connect");
    admin
        .execute("CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .expect("create accounts");
    for chunk in (0..args.accounts).collect::<Vec<_>>().chunks(64) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, 'o{}', {INITIAL_BALANCE})", i % args.owners))
            .collect();
        admin
            .execute(&format!(
                "INSERT INTO accounts VALUES {}",
                values.join(", ")
            ))
            .expect("load accounts");
    }

    // Workers: transfer transactions against the phase's current table.
    let commit_sql: &'static str = if args.nowait {
        "COMMIT NOWAIT"
    } else {
        "COMMIT"
    };
    let phase = Arc::new(AtomicUsize::new(PHASE_OLD));
    let committed = Arc::new(AtomicU64::new(0));
    let retried = Arc::new(AtomicU64::new(0));
    let paused = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for w in 0..args.clients {
        let phase = Arc::clone(&phase);
        let committed = Arc::clone(&committed);
        let retried = Arc::clone(&retried);
        let paused = Arc::clone(&paused);
        let accounts = args.accounts;
        let owners = args.owners;
        let ops = args.ops;
        let seed = args.seed;
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w as u64));
            let mut client = Client::connect(addr).expect("worker connect");
            // Keep issuing transfers until the admin has finished both
            // migrations; each phase change just swaps the table name.
            let mut acked_pause = false;
            loop {
                match phase.load(Ordering::Acquire) {
                    PHASE_DONE => break,
                    PHASE_PAUSE => {
                        // Acknowledge the quiesce exactly once, *after*
                        // any in-flight transfer bracket finished: the
                        // admin's verification scan only starts when
                        // every worker has acked, so a read-committed
                        // scan can't interleave with a live transfer.
                        if !acked_pause {
                            acked_pause = true;
                            paused.fetch_add(1, Ordering::AcqRel);
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    PHASE_TOTALS => {
                        // Drive the hash-tracked migration: per-owner
                        // point reads lazily migrate each group.
                        let o = rng.gen_range(0..owners);
                        let _ = client
                            .query_rows(&format!(
                                "SELECT owner, total FROM owner_totals WHERE owner = 'o{o}'"
                            ))
                            .map_err(fatal_if_transport);
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    p => {
                        let table = if p == PHASE_OLD {
                            "accounts"
                        } else {
                            "accounts_v2"
                        };
                        let a = rng.gen_range(0..accounts);
                        let b = (a + 1 + rng.gen_range(0..accounts - 1)) % accounts;
                        if transfer(&mut client, table, a, b, commit_sql, &retried) {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // Pace each worker to its op budget per phase by
                // yielding; total runtime is bounded by the admin.
                if rng.gen_bool(1.0 / ops.max(1) as f64) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }));
    }

    // Let pre-migration traffic run, then flip mid-traffic.
    std::thread::sleep(Duration::from_millis(150));
    admin
        .execute(
            "CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) \
             PRIMARY KEY (id)",
        )
        .expect("submit bitmap migration");
    phase.store(PHASE_NEW, Ordering::Release);
    println!(
        "loadgen: bitmap migration submitted at {:?}, workers flipped",
        started.elapsed()
    );

    // Lazy + background migration finish while traffic continues.
    wait_complete(&mut admin, Duration::from_secs(20));
    let status = admin.status().expect("status");
    let rows_migrated = stat(&status, "migration.rows_migrated");
    let conflict_skips = stat(&status, "migration.conflict_skips");
    let rows_dropped = stat(&status, "migration.rows_dropped");
    // Quiesce the workers so the verification scan sees a settled table
    // (read-committed scans have no snapshot to hide in-flight
    // transfers behind). Workers ack the pause only between transfer
    // brackets, so waiting for every ack — not a fixed sleep — is what
    // rules out scan/transfer read skew.
    phase.store(PHASE_PAUSE, Ordering::Release);
    while paused.load(Ordering::Acquire) < args.clients {
        std::thread::sleep(Duration::from_millis(2));
    }
    admin
        .execute("FINALIZE MIGRATION DROP OLD")
        .expect("finalize bitmap");

    // Exactly-once: every source row arrived in the output exactly once.
    assert_eq!(
        rows_migrated, args.accounts,
        "exactly-once violated: {rows_migrated} rows migrated for {} sources",
        args.accounts
    );
    assert_eq!(conflict_skips, 0, "duplicate migration attempts detected");
    assert_eq!(rows_dropped, 0, "migration dropped rows");
    let rows = scan_retry(&mut admin, "SELECT id, balance FROM accounts_v2");
    assert_eq!(rows.len() as i64, args.accounts, "row count changed");
    let total: i64 = rows.iter().map(|r| r.0[1].as_i64().unwrap()).sum();
    assert_eq!(
        total,
        args.accounts * INITIAL_BALANCE,
        "transfers must conserve total balance"
    );
    println!(
        "loadgen: bitmap migration exactly-once verified ({} rows, total {total}) at {:?}",
        rows.len(),
        started.elapsed()
    );

    // Mid-run equivalence: accounts_v2 is live right now, but the next
    // migration is a big flip that retires it on both sides — compare
    // here or never.
    if let Some((rserver, replica)) = &attached {
        let (_, bf) = hosted.as_ref().expect("--replica implies self-hosting");
        compare_scans(
            &mut admin,
            bf,
            rserver,
            replica,
            "SELECT id, owner, balance FROM accounts_v2",
        );
        println!(
            "loadgen: replica matched accounts_v2 mid-run at {:?}",
            started.elapsed()
        );
    }

    // Phase 2: the n:1 aggregation (hash-tracked) migration, submitted
    // while workers keep reading.
    admin
        .execute(
            "CREATE TABLE owner_totals AS (SELECT owner, SUM(balance) AS total \
             FROM accounts_v2 GROUP BY owner) PRIMARY KEY (owner)",
        )
        .expect("submit hash migration");
    phase.store(PHASE_TOTALS, Ordering::Release);
    wait_complete(&mut admin, Duration::from_secs(20));
    admin.execute("FINALIZE MIGRATION").expect("finalize hash");
    let totals = scan_retry(&mut admin, "SELECT owner, total FROM owner_totals");
    assert_eq!(totals.len() as i64, args.owners, "one group per owner");
    let grand: i64 = totals.iter().map(|r| r.0[1].as_i64().unwrap()).sum();
    assert_eq!(
        grand,
        args.accounts * INITIAL_BALANCE,
        "aggregation must conserve total balance"
    );
    println!(
        "loadgen: hash migration verified ({} owners, total {grand}) at {:?}",
        totals.len(),
        started.elapsed()
    );

    phase.store(PHASE_DONE, Ordering::Release);
    for h in handles {
        h.join().expect("worker");
    }

    let status = admin.status().expect("final status");
    println!(
        "loadgen: {} transfers committed, {} retries, {} statements, {} scheduler checkpoints",
        committed.load(Ordering::Relaxed),
        retried.load(Ordering::Relaxed),
        stat(&status, "sessions.statements"),
        stat(&status, "scheduler.checkpoints"),
    );
    println!(
        "loadgen: engine mode {} ({} live versions, gc horizon {}, {} reclaimed)",
        if stat(&status, "engine.mode") == 1 {
            "si"
        } else {
            "2pl"
        },
        stat(&status, "mvcc.versions"),
        stat(&status, "mvcc.gc_horizon"),
        stat(&status, "mvcc.gc_reclaimed"),
    );

    if let Some((rserver, replica)) = &attached {
        let (_, bf) = hosted.as_ref().expect("--replica implies self-hosting");
        verify_replica(&mut admin, bf, rserver, replica);
    }

    match hosted {
        Some((mut server, _)) => {
            // Graceful remote shutdown: the server drains and syncs.
            admin.shutdown_server().expect("shutdown opcode");
            server.shutdown();
        }
        None => println!("loadgen: external server at {addr} left running"),
    }
    if let Some((mut rserver, mut replica)) = attached {
        replica.shutdown();
        rserver.shutdown();
    }
    if let Some(dir) = scratch_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    println!("loadgen: done in {:?}", started.elapsed());
}

/// Waits for the replica to reach the primary's current frontier with
/// zero lag, then asserts both sides return identical rows for `sql`.
fn compare_scans(
    admin: &mut Client,
    bf: &Arc<Bullfrog>,
    rserver: &Server,
    replica: &Replica,
    sql: &str,
) {
    use bullfrog_core::ClientAccess;
    bf.db().wal().sync();
    let target = bf.db().wal().frontier();
    assert!(
        replica.wait_caught_up(target, Duration::from_secs(30)),
        "replica failed to reach primary frontier {target}: {:?}",
        replica.stats()
    );
    assert_eq!(replica.stats().lag_lsns(), 0, "replica lag after catch-up");
    let mut rclient = Client::connect(rserver.local_addr()).expect("replica connect");
    let mut primary_rows = scan_retry(admin, sql);
    let mut replica_rows = scan_retry(&mut rclient, sql);
    primary_rows.sort_by_key(|r| format!("{r:?}"));
    replica_rows.sort_by_key(|r| format!("{r:?}"));
    assert_eq!(
        primary_rows, replica_rows,
        "primary/replica scans diverged for {sql}"
    );
}

/// Post-drain primary/replica equivalence: converged scans on the final
/// table, writes rejected with the READ_ONLY code, repl.* summary.
fn verify_replica(admin: &mut Client, bf: &Arc<Bullfrog>, rserver: &Server, replica: &Replica) {
    compare_scans(
        admin,
        bf,
        rserver,
        replica,
        "SELECT owner, total FROM owner_totals",
    );
    let mut rclient = Client::connect(rserver.local_addr()).expect("replica connect");

    // Writes must bounce with the READ_ONLY code — the signal loadgen's
    // retry policy treats as "wrong endpoint", never as retry-here.
    match rclient.execute("INSERT INTO owner_totals VALUES ('zz', 1)") {
        Err(ClientError::Server { code, .. }) if code == err_code::READ_ONLY => {}
        other => panic!("replica accepted a write (or wrong error): {other:?}"),
    }

    let rstatus = rclient.status().expect("replica status");
    assert_eq!(stat(&rstatus, "repl.role_replica"), 1);
    println!(
        "loadgen: replica converged (applied {}, {} txns, {} granules mirrored, {} reconnects)",
        stat(&rstatus, "repl.applied_lsn"),
        stat(&rstatus, "repl.txns_applied"),
        stat(&rstatus, "repl.granules_mirrored"),
        stat(&rstatus, "repl.reconnects"),
    );
    let pstatus = admin.status().expect("primary status");
    for (k, v) in pstatus.iter().filter(|(k, _)| k.starts_with("repl.")) {
        println!("loadgen:   {k} = {v}");
    }
}

/// One transfer transaction; returns whether it committed. Retries the
/// whole bracket on retryable failures (the server aborts the open
/// transaction on any statement error, so a retry restarts cleanly).
fn transfer(
    client: &mut Client,
    table: &str,
    a: i64,
    b: i64,
    commit_sql: &str,
    retried: &AtomicU64,
) -> bool {
    for _ in 0..8 {
        match try_transfer(client, table, a, b, commit_sql) {
            Ok(committed) => return committed,
            Err(ClientError::Server {
                retryable: true,
                code,
                message,
            }) => {
                // Retryable is not always retry-here: a READ_ONLY bounce
                // means we are pointed at a replica, and retrying would
                // loop forever. The error code disambiguates.
                if code == err_code::READ_ONLY {
                    panic!("transfer rejected as read-only (wrong endpoint?): {message}");
                }
                retried.fetch_add(1, Ordering::Relaxed);
            }
            // Frozen/retired table: the phase just flipped under us.
            Err(ClientError::Server { .. }) => return false,
            Err(e) => panic!("transport failure during transfer: {e}"),
        }
    }
    false
}

fn try_transfer(
    client: &mut Client,
    table: &str,
    a: i64,
    b: i64,
    commit_sql: &str,
) -> Result<bool, ClientError> {
    client.execute("BEGIN")?;
    let debited = client.execute(&format!(
        "UPDATE {table} SET balance = balance - 7 WHERE id = {a}"
    ))?;
    let credited = client.execute(&format!(
        "UPDATE {table} SET balance = balance + 7 WHERE id = {b}"
    ))?;
    // Both rows exist for the table's whole lifetime, so each UPDATE
    // must match exactly one row; a half-matched transfer would destroy
    // balance, so refuse to commit it.
    if debited != credited {
        let _ = client.execute("ROLLBACK");
        panic!("transfer matched {debited} debit rows but {credited} credit rows (table {table}, {a}->{b})");
    }
    client.execute(commit_sql)?;
    Ok(debited > 0)
}

/// Scans with bounded retries: a worker's X lock can time a scan out.
fn scan_retry(client: &mut Client, sql: &str) -> Vec<bullfrog_common::Row> {
    let mut last = None;
    for _ in 0..20 {
        match client.query_rows(sql) {
            Ok((_, rows)) => return rows,
            Err(ClientError::Server {
                retryable: true,
                message,
                ..
            }) => last = Some(message),
            Err(e) => panic!("{sql} failed: {e}"),
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("{sql} kept timing out: {last:?}");
}

fn fatal_if_transport(e: ClientError) -> ClientError {
    if matches!(e, ClientError::Io(_) | ClientError::Protocol(_)) {
        panic!("transport failure: {e}");
    }
    e
}

/// Polls `STATUS` until the active migration reports complete.
fn wait_complete(admin: &mut Client, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let status = admin.status().expect("status poll");
        if stat(&status, "migration.active") == 0 || stat(&status, "migration.complete") == 1 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "migration did not complete within {timeout:?}: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn stat(pairs: &[(String, i64)], key: &str) -> i64 {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("STATUS is missing {key}"))
}

// ---------------------------------------------------------------------------
// --timeline: the per-second latency timeline across mid-traffic
// migrations, both engine modes in one invocation.
// ---------------------------------------------------------------------------

/// Runs the migration scenario under both engine modes, bucketing every
/// statement bracket's latency into 1-second [`bullfrog_obs::Histogram`]
/// slots, and emits the per-second p50/p99 timeline — with markers at
/// migration submit/complete/finalize — to `target/BENCH_obs.json`
/// (override with `BENCH_OBS_JSON`). Self-asserts that the slots
/// spanning each migration window carry a nonzero p99: the timeline is
/// only evidence if traffic actually overlapped the migration.
fn run_timeline(args: &Args, started: Instant) {
    let mut reports = Vec::new();
    for mode in [EngineMode::TwoPL, EngineMode::Snapshot] {
        reports.push(run_timeline_mode(args, mode));
        println!(
            "loadgen: timeline for {} captured at {:?}",
            mode.as_str(),
            started.elapsed()
        );
    }
    let path =
        std::env::var("BENCH_OBS_JSON").unwrap_or_else(|_| "target/BENCH_obs.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"obs_timeline\",\n  \"seed\": {},\n  \"clients\": {},\n  \
         \"accounts\": {},\n  \"modes\": [\n{}\n  ]\n}}\n",
        args.seed,
        args.clients,
        args.accounts,
        reports.join(",\n")
    );
    if let Some(parent) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, &json).expect("write BENCH_obs.json");
    println!(
        "loadgen: timeline written to {path} in {:?}",
        started.elapsed()
    );
}

/// One engine mode's timeline run; returns its JSON object fragment.
fn run_timeline_mode(args: &Args, mode: EngineMode) -> String {
    /// Per-second slots; a run past the last slot clamps into it rather
    /// than losing samples.
    const SLOTS: usize = 120;
    let db = Arc::new(Database::with_config(DbConfig {
        mode,
        ..DbConfig::default()
    }));
    let bf = Arc::new(Bullfrog::new(db));
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Arc::clone(&bf),
        ServerConfig {
            max_connections: args.clients + 8,
            idle_timeout: Duration::from_secs(30),
            statement_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind timeline loopback");
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).expect("admin connect");
    admin
        .execute("CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .expect("create accounts");
    for chunk in (0..args.accounts).collect::<Vec<_>>().chunks(64) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, 'o{}', {INITIAL_BALANCE})", i % args.owners))
            .collect();
        admin
            .execute(&format!(
                "INSERT INTO accounts VALUES {}",
                values.join(", ")
            ))
            .expect("load accounts");
    }

    let run0 = Instant::now();
    let slots: Arc<Vec<bullfrog_obs::Histogram>> =
        Arc::new((0..SLOTS).map(|_| bullfrog_obs::Histogram::new()).collect());
    let commit_sql: &'static str = if args.nowait {
        "COMMIT NOWAIT"
    } else {
        "COMMIT"
    };
    let phase = Arc::new(AtomicUsize::new(PHASE_OLD));
    let committed = Arc::new(AtomicU64::new(0));
    let retried = Arc::new(AtomicU64::new(0));
    let paused = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for w in 0..args.clients {
        let phase = Arc::clone(&phase);
        let committed = Arc::clone(&committed);
        let retried = Arc::clone(&retried);
        let paused = Arc::clone(&paused);
        let slots = Arc::clone(&slots);
        let accounts = args.accounts;
        let owners = args.owners;
        let seed = args.seed;
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w as u64));
            let mut client = Client::connect(addr).expect("worker connect");
            let record = |slots: &[bullfrog_obs::Histogram], t0: Instant| {
                let slot = (run0.elapsed().as_secs() as usize).min(SLOTS - 1);
                slots[slot].record_micros(t0.elapsed());
            };
            let mut acked_pause = false;
            loop {
                match phase.load(Ordering::Acquire) {
                    PHASE_DONE => break,
                    PHASE_PAUSE => {
                        if !acked_pause {
                            acked_pause = true;
                            paused.fetch_add(1, Ordering::AcqRel);
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    PHASE_TOTALS => {
                        let o = rng.gen_range(0..owners);
                        let t0 = Instant::now();
                        let _ = client
                            .query_rows(&format!(
                                "SELECT owner, total FROM owner_totals WHERE owner = 'o{o}'"
                            ))
                            .map_err(fatal_if_transport);
                        record(&slots, t0);
                    }
                    p => {
                        let table = if p == PHASE_OLD {
                            "accounts"
                        } else {
                            "accounts_v2"
                        };
                        let a = rng.gen_range(0..accounts);
                        let b = (a + 1 + rng.gen_range(0..accounts - 1)) % accounts;
                        let t0 = Instant::now();
                        if transfer(&mut client, table, a, b, commit_sql, &retried) {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        record(&slots, t0);
                    }
                }
            }
        }));
    }

    // Let pre-migration traffic cross at least one slot boundary so the
    // timeline has a "before" baseline.
    std::thread::sleep(Duration::from_millis(1100));
    let m1_submit = run0.elapsed().as_secs_f64();
    admin
        .execute(
            "CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) \
             PRIMARY KEY (id)",
        )
        .expect("submit 1:1 migration");
    phase.store(PHASE_NEW, Ordering::Release);
    wait_complete(&mut admin, Duration::from_secs(20));
    let m1_complete = run0.elapsed().as_secs_f64();
    phase.store(PHASE_PAUSE, Ordering::Release);
    while paused.load(Ordering::Acquire) < args.clients {
        std::thread::sleep(Duration::from_millis(2));
    }
    admin
        .execute("FINALIZE MIGRATION DROP OLD")
        .expect("finalize 1:1");
    let m1_finalize = run0.elapsed().as_secs_f64();

    let m2_submit = run0.elapsed().as_secs_f64();
    admin
        .execute(
            "CREATE TABLE owner_totals AS (SELECT owner, SUM(balance) AS total \
             FROM accounts_v2 GROUP BY owner) PRIMARY KEY (owner)",
        )
        .expect("submit n:1 migration");
    phase.store(PHASE_TOTALS, Ordering::Release);
    wait_complete(&mut admin, Duration::from_secs(20));
    let m2_complete = run0.elapsed().as_secs_f64();
    admin.execute("FINALIZE MIGRATION").expect("finalize n:1");
    let m2_finalize = run0.elapsed().as_secs_f64();
    // A short post-migration tail gives the timeline an "after" edge.
    std::thread::sleep(Duration::from_millis(300));
    phase.store(PHASE_DONE, Ordering::Release);
    for h in handles {
        h.join().expect("timeline worker");
    }

    // Server-side evidence from METRICS: the migration-phase histograms
    // that only the registry sees.
    let snap = admin.metrics().expect("metrics snapshot");
    let hist_p99 = |name: &str| snap.histogram(name).map_or(0, |h| h.quantile(0.99));
    let hist_count = |name: &str| snap.histogram(name).map_or(0, |h| h.count());
    admin.shutdown_server().expect("shutdown opcode");
    server.shutdown();

    // Per-second rows, skipping empty slots past the run's end.
    let mut rows = Vec::new();
    for (s, h) in slots.iter().enumerate() {
        let snap = h.snapshot();
        if snap.count() == 0 {
            continue;
        }
        rows.push(format!(
            "        {{\"s\": {s}, \"count\": {}, \"p50_us\": {}, \"p99_us\": {}}}",
            snap.count(),
            snap.quantile(0.50),
            snap.quantile(0.99)
        ));
    }

    let m1_p99 = window_p99(&slots, m1_submit, m1_complete);
    let m2_p99 = window_p99(&slots, m2_submit, m2_complete);
    assert!(
        m1_p99 > 0,
        "no traffic latency recorded inside the 1:1 migration window ({})",
        mode.as_str()
    );
    assert!(
        m2_p99 > 0,
        "no traffic latency recorded inside the n:1 migration window ({})",
        mode.as_str()
    );
    println!(
        "loadgen: {} timeline — {} commits, 1:1 window p99 {}us, n:1 window p99 {}us, \
         granule p99 {}us ({} granules)",
        mode.as_str(),
        committed.load(Ordering::Relaxed),
        m1_p99,
        m2_p99,
        hist_p99("migrate.granule_us"),
        hist_count("migrate.granule_us"),
    );

    format!(
        "    {{\n      \"mode\": \"{}\",\n      \"committed\": {},\n      \"retried\": {},\n      \
         \"markers_s\": {{\"m1_submit\": {m1_submit:.3}, \"m1_complete\": {m1_complete:.3}, \
         \"m1_finalize\": {m1_finalize:.3}, \"m2_submit\": {m2_submit:.3}, \
         \"m2_complete\": {m2_complete:.3}, \"m2_finalize\": {m2_finalize:.3}}},\n      \
         \"m1_window_p99_us\": {m1_p99},\n      \"m2_window_p99_us\": {m2_p99},\n      \
         \"server\": {{\"commit_p99_us\": {}, \"granule_p99_us\": {}, \"granule_count\": {}, \
         \"finalize_p99_us\": {}, \"flip_p99_us\": {}}},\n      \"timeline\": [\n{}\n      ]\n    }}",
        mode.as_str(),
        committed.load(Ordering::Relaxed),
        retried.load(Ordering::Relaxed),
        hist_p99("engine.commit_us"),
        hist_p99("migrate.granule_us"),
        hist_count("migrate.granule_us"),
        hist_p99("migrate.finalize_us"),
        hist_p99("migrate.flip_us"),
        rows.join(",\n")
    )
}

/// The merged p99 of every 1-second slot the `[from_s, to_s]` window
/// touches (slot granularity is the timeline's resolution, so the
/// window rounds outward to whole slots).
fn window_p99(slots: &[bullfrog_obs::Histogram], from_s: f64, to_s: f64) -> u64 {
    let lo = (from_s.floor() as usize).min(slots.len() - 1);
    let hi = (to_s.floor() as usize).min(slots.len() - 1);
    let mut merged: Option<bullfrog_obs::HistogramSnapshot> = None;
    for h in &slots[lo..=hi] {
        let snap = h.snapshot();
        match &mut merged {
            Some(m) => m.merge(&snap),
            None => merged = Some(snap),
        }
    }
    merged.map_or(0, |m| m.quantile(0.99))
}

// ---------------------------------------------------------------------------
// --connections N: the high-connection network scenario.
// ---------------------------------------------------------------------------

/// Serve-only child for [`run_net`]: binds a loopback server sized for
/// the parent's connection count, announces the address on stdout, and
/// blocks until a remote `SHUTDOWN`.
fn run_serve(args: &Args) {
    use std::io::Write as _;
    let db = Arc::new(Database::with_config(DbConfig {
        mode: args.mode,
        ..DbConfig::default()
    }));
    let bf = Arc::new(Bullfrog::new(db));
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        bf,
        ServerConfig {
            max_connections: args.connections + 128,
            // Parked connections sit idle for the whole measurement;
            // the sweep must not reap them mid-run.
            idle_timeout: Duration::from_secs(300),
            statement_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    println!("loadgen: serving on {}", server.local_addr());
    std::io::stdout().flush().expect("flush addr line");
    server.wait_shutdown();
}

/// Parks `--connections` mostly-idle sessions against a serve-only
/// child process, runs a bounded worker set of point reads (optionally
/// `--prepared` and/or `--pipeline`d), reports p50/p99, and then proves
/// zero dropped sessions by running one statement on every parked
/// connection.
///
/// The child process exists for fd arithmetic: every loopback
/// connection costs one fd on each end, so 10k connections need 20k
/// fds — exactly a typical `ulimit -n` — and splitting server from
/// client gives each side its own budget.
fn run_net(args: &Args, started: Instant) {
    use std::io::BufRead as _;
    let n = args.connections;
    let exe = std::env::current_exe().expect("current exe");
    let mut child = std::process::Command::new(&exe)
        .args([
            "--serve",
            "--connections",
            &n.to_string(),
            "--engine-mode",
            args.mode.as_str(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve-only child");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr: std::net::SocketAddr = loop {
        let line = lines
            .next()
            .expect("serve child exited before announcing its address")
            .expect("read serve child stdout");
        if let Some(rest) = line.strip_prefix("loadgen: serving on ") {
            break rest.trim().parse().expect("parse child address");
        }
    };
    println!(
        "loadgen: net scenario on {addr} ({n} connections, {} workers, prepared={}, pipeline={}, {} engine)",
        args.clients.clamp(1, 64),
        args.prepared,
        args.pipeline,
        args.mode.as_str()
    );

    let mut admin = Client::connect(addr).expect("admin connect");
    admin
        .execute("CREATE TABLE kv (id INT, v INT, PRIMARY KEY (id))")
        .expect("create kv");
    let keys: i64 = 1024;
    for chunk in (0..keys).collect::<Vec<_>>().chunks(64) {
        let values: Vec<String> = chunk.iter().map(|i| format!("({i}, {})", i * 3)).collect();
        admin
            .execute(&format!("INSERT INTO kv VALUES {}", values.join(", ")))
            .expect("load kv");
    }

    // Park the herd. Readiness-driven serving is the whole point: these
    // connections must cost (almost) nothing while idle.
    let mut parked: Vec<Client> = Vec::with_capacity(n);
    for i in 0..n {
        match Client::connect(addr) {
            Ok(c) => parked.push(c),
            Err(e) => panic!("connection {i}/{n} failed to park: {e}"),
        }
    }
    println!(
        "loadgen: parked {} idle connections at {:?}",
        parked.len(),
        started.elapsed()
    );

    // Bounded worker set: latency must not degrade just because the
    // parked herd exists.
    let workers = args.clients.clamp(1, 64);
    let per_worker_ops = args.ops.max(1) * 16;
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for w in 0..workers {
        let latencies = Arc::clone(&latencies);
        let prepared = args.prepared;
        let pipeline = args.pipeline;
        let seed = args.seed;
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w as u64));
            let mut client = Client::connect(addr).expect("worker connect");
            if prepared {
                let n_params = client
                    .prepare(1, "SELECT v FROM kv WHERE id = ?")
                    .expect("prepare point read");
                assert_eq!(n_params, 1);
            }
            let mut local = Vec::with_capacity(per_worker_ops);
            let mut remaining = per_worker_ops;
            while remaining > 0 {
                let batch = if pipeline { remaining.min(16) } else { 1 };
                let ids: Vec<i64> = (0..batch).map(|_| rng.gen_range(0..keys)).collect();
                let t0 = Instant::now();
                match (prepared, pipeline) {
                    (true, true) => {
                        let rows: Vec<bullfrog_common::Row> = ids
                            .iter()
                            .map(|id| bullfrog_common::Row(vec![Value::Int(*id)]))
                            .collect();
                        for reply in client
                            .pipeline_execute(1, &rows)
                            .expect("pipelined execute")
                        {
                            reply.expect("point read");
                        }
                    }
                    (true, false) => {
                        client
                            .execute_prepared(1, bullfrog_common::Row(vec![Value::Int(ids[0])]))
                            .expect("prepared point read");
                    }
                    (false, true) => {
                        let sqls: Vec<String> = ids
                            .iter()
                            .map(|id| format!("SELECT v FROM kv WHERE id = {id}"))
                            .collect();
                        for reply in client.pipeline(&sqls).expect("pipelined batch") {
                            reply.expect("point read");
                        }
                    }
                    (false, false) => {
                        client
                            .query_rows(&format!("SELECT v FROM kv WHERE id = {}", ids[0]))
                            .expect("point read");
                    }
                }
                // Per-statement latency; a pipelined batch amortizes
                // its single round trip across the batch.
                let per_stmt = (t0.elapsed().as_micros() as u64) / batch as u64;
                local.extend(std::iter::repeat_n(per_stmt, batch));
                remaining -= batch;
            }
            latencies.lock().extend(local);
        }));
    }
    for h in handles {
        h.join().expect("net worker");
    }
    let mut lat = latencies.lock().clone();
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    println!(
        "loadgen: {} statements, p50 {}us, p99 {}us at {:?}",
        lat.len(),
        pct(0.50),
        pct(0.99),
        started.elapsed()
    );

    // Zero dropped sessions: every parked connection must still answer
    // a statement. This also drags 10k sockets through one more
    // readiness cycle each.
    for (i, c) in parked.iter_mut().enumerate() {
        let (_, rows) = c
            .query_rows("SELECT v FROM kv WHERE id = 7")
            .unwrap_or_else(|e| panic!("parked connection {i} was dropped: {e}"));
        assert_eq!(rows.len(), 1);
    }
    println!(
        "loadgen: all {} parked connections still answer at {:?}",
        parked.len(),
        started.elapsed()
    );

    let status = admin.status().expect("status");
    for key in [
        "server.active_sessions",
        "server.parked_connections",
        "server.pool_workers",
        "server.pool_idle",
        "server.accepted",
        "server.rejected",
        "server.accept_errors",
        "sessions.statements",
    ] {
        println!("loadgen:   {key} = {}", stat(&status, key));
    }
    assert_eq!(
        stat(&status, "server.rejected"),
        0,
        "sessions were turned away"
    );
    assert_eq!(
        stat(&status, "server.accept_errors"),
        0,
        "accept loop saw errors"
    );
    // Parked herd + admin; workers have disconnected by now but their
    // sockets may still be draining, so bound from below only.
    assert!(
        stat(&status, "server.active_sessions") >= (n + 1) as i64,
        "parked sessions went missing from STATUS"
    );

    drop(parked);
    admin.shutdown_server().expect("shutdown opcode");
    let code = child.wait().expect("reap serve child");
    assert!(code.success(), "serve child exited with {code}");
    println!("loadgen: net scenario done in {:?}", started.elapsed());
}

// ---------------------------------------------------------------------------
// --cluster N: the shared-nothing scenario.
// ---------------------------------------------------------------------------

/// Runs the whole loadgen scenario against an N-node loopback cluster:
///
/// 1. create `accounts` on every node, load it with routed single-key
///    inserts (each row lands on its hash owner);
/// 2. exercise the `WRONG_SHARD` recovery path with a deliberately
///    rotated (stale) shard map before traffic starts;
/// 3. race the workers — same-node transfer pairs, every acked commit
///    recorded in a per-account ledger — against a mid-traffic
///    two-phase 1:1 cluster flip;
/// 4. verify exactly-once cluster-wide (summed `rows_migrated`, zero
///    conflict skips/drops) and zero lost acked commits (every final
///    balance equals `INITIAL_BALANCE` plus the ledger's delta);
/// 5. race point-readers against the cross-node n:1 GROUP BY flip and
///    its aggregate exchange;
/// 6. check the final scatter-gathered `owner_totals` byte-identical to
///    a single-node oracle fed the same frozen `accounts_v2` rows.
fn run_cluster(args: &Args, started: Instant) {
    let n = args.cluster;
    assert!(n >= 2, "--cluster needs at least 2 nodes to shard anything");
    let mut cluster = LocalCluster::start(n, args.mode).expect("start loopback cluster");
    let mut coord = Coordinator::connect(&cluster.addrs()).expect("coordinator connect");
    println!(
        "loadgen: {n}-node cluster up ({} clients, {} engine, shard map v{})",
        args.clients,
        args.mode.as_str(),
        coord.map().version
    );
    coord
        .execute_all("CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .expect("create accounts everywhere");

    // Routed load: one statement per row so each insert can go to the
    // key's owner.
    let mut router = ClusterClient::connect(&cluster.addrs()[0]).expect("routing client");
    for id in 0..args.accounts {
        router
            .execute_key(
                &[Value::Int(id)],
                &format!(
                    "INSERT INTO accounts VALUES ({id}, 'o{}', {INITIAL_BALANCE})",
                    id % args.owners
                ),
            )
            .expect("routed load");
    }
    let map = router.map().clone();
    let mut per_node: Vec<Vec<i64>> = vec![Vec::new(); n];
    for id in 0..args.accounts {
        per_node[map.owner_of(&[Value::Int(id)])].push(id);
    }
    for (i, ids) in per_node.iter().enumerate() {
        assert!(
            ids.len() >= 2,
            "node {i} owns {} accounts; raise --accounts so every node can host transfers",
            ids.len()
        );
    }

    // Satellite: a client with a stale (rotated) map must recover by
    // re-fetching on WRONG_SHARD, never by retrying the same node.
    let mut rotated_nodes = map.nodes.clone();
    rotated_nodes.rotate_left(1);
    let mut stale = ClusterClient::with_map(ShardMap {
        version: 0,
        nodes: rotated_nodes,
    });
    for id in 0..(args.owners.min(8)) {
        stale
            .query_key(
                &[Value::Int(id)],
                &format!("SELECT balance FROM accounts WHERE id = {id}"),
            )
            .expect("stale-map read");
    }
    assert!(
        stale.wrong_shard_refetches >= 1,
        "the rotated map never bounced — WRONG_SHARD path not exercised"
    );
    assert_eq!(
        stale.map().nodes,
        map.nodes,
        "stale client converged on the wrong map"
    );
    println!(
        "loadgen: stale-map client recovered via {} WRONG_SHARD re-fetch(es) at {:?}",
        stale.wrong_shard_refetches,
        started.elapsed()
    );

    // Workers: same-node transfer pairs (a distributed transaction
    // would need a cross-node commit protocol, which the shard map
    // deliberately avoids: route whole transactions instead). Every
    // acked commit lands in the ledger; the final scan must account
    // for each one.
    let commit_sql: &'static str = if args.nowait {
        "COMMIT NOWAIT"
    } else {
        "COMMIT"
    };
    let phase = Arc::new(AtomicUsize::new(PHASE_OLD));
    let committed = Arc::new(AtomicU64::new(0));
    let retried = Arc::new(AtomicU64::new(0));
    let paused = Arc::new(AtomicUsize::new(0));
    let ledger: Arc<Vec<std::sync::atomic::AtomicI64>> = Arc::new(
        (0..args.accounts)
            .map(|_| std::sync::atomic::AtomicI64::new(0))
            .collect(),
    );
    let mut handles = Vec::new();
    for w in 0..args.clients {
        let phase = Arc::clone(&phase);
        let committed = Arc::clone(&committed);
        let retried = Arc::clone(&retried);
        let paused = Arc::clone(&paused);
        let ledger = Arc::clone(&ledger);
        let my_node = w % n;
        let my_accounts = per_node[my_node].clone();
        let addr = map.nodes[my_node].clone();
        let worker_map = map.clone();
        let owners = args.owners;
        let ops = args.ops;
        let seed = args.seed;
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w as u64));
            let mut client = Client::connect(addr.as_str()).expect("worker connect");
            let mut reader: Option<ClusterClient> = None;
            let mut acked_pause = false;
            loop {
                match phase.load(Ordering::Acquire) {
                    PHASE_DONE => break,
                    PHASE_PAUSE => {
                        if !acked_pause {
                            acked_pause = true;
                            paused.fetch_add(1, Ordering::AcqRel);
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    PHASE_TOTALS => {
                        // Routed point reads race the n:1 flip and its
                        // exchange; FLIP_PENDING bounces back off in
                        // the client, and reads before the flip (no
                        // owner_totals yet) or past the retry budget
                        // are simply dropped.
                        let reader = reader
                            .get_or_insert_with(|| ClusterClient::with_map(worker_map.clone()));
                        let o = rng.gen_range(0..owners);
                        let _ = reader.query_key(
                            &[Value::Text(format!("o{o}"))],
                            &format!("SELECT owner, total FROM owner_totals WHERE owner = 'o{o}'"),
                        );
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    p => {
                        let table = if p == PHASE_OLD {
                            "accounts"
                        } else {
                            "accounts_v2"
                        };
                        let a = my_accounts[rng.gen_range(0..my_accounts.len() as i64) as usize];
                        let b = loop {
                            let b =
                                my_accounts[rng.gen_range(0..my_accounts.len() as i64) as usize];
                            if b != a {
                                break b;
                            }
                        };
                        if transfer(&mut client, table, a, b, commit_sql, &retried) {
                            committed.fetch_add(1, Ordering::Relaxed);
                            ledger[a as usize].fetch_sub(7, Ordering::Relaxed);
                            ledger[b as usize].fetch_add(7, Ordering::Relaxed);
                        }
                    }
                }
                if rng.gen_bool(1.0 / ops.max(1) as f64) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }));
    }

    // Mid-traffic two-phase 1:1 flip. Workers bounce off FLIP_PENDING
    // during the prepare→commit window (counted as retries), then fail
    // over to the new table when the phase flips.
    std::thread::sleep(Duration::from_millis(150));
    let specs = coord
        .migrate(
            "CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) \
             PRIMARY KEY (id)",
        )
        .expect("1:1 cluster flip");
    assert!(specs.is_empty(), "1:1 migration owes no exchange");
    phase.store(PHASE_NEW, Ordering::Release);
    println!(
        "loadgen: 1:1 cluster flip committed on {n} nodes at {:?}, workers flipped",
        started.elapsed()
    );

    assert!(
        coord
            .wait_all_complete(Duration::from_secs(30))
            .expect("poll cluster migration"),
        "1:1 lazy migration never drained on every node"
    );
    let status = coord.aggregate_status().expect("cluster status");
    let rows_migrated = bullfrog_cluster::coordinator::stat(&status, "migration.rows_migrated");
    let conflict_skips = bullfrog_cluster::coordinator::stat(&status, "migration.conflict_skips");
    let rows_dropped = bullfrog_cluster::coordinator::stat(&status, "migration.rows_dropped");
    // Granule-progress gauges, sampled while the migration runtime is
    // still live (FINALIZE retires it, zeroing them).
    let granules_done = bullfrog_cluster::coordinator::stat(&status, "migration.granules_done");
    let granules_total = bullfrog_cluster::coordinator::stat(&status, "migration.granules_total");
    // `total` counts the tracker's full capacity (rounded up past the
    // occupied rows), so a drained migration reports done <= total.
    assert!(
        granules_done > 0 && granules_done <= granules_total,
        "granule gauges inconsistent: {granules_done}/{granules_total}"
    );
    assert_eq!(
        rows_migrated, args.accounts,
        "cluster exactly-once violated: {rows_migrated} rows migrated for {} sources",
        args.accounts
    );
    assert_eq!(conflict_skips, 0, "duplicate migration attempts detected");
    assert_eq!(rows_dropped, 0, "migration dropped rows");
    coord.run_exchange(&specs).expect("release 1:1 hold");

    // Quiesce, then settle the books: every acked commit must be in the
    // final balances (zero lost acked commits), nothing else may be.
    phase.store(PHASE_PAUSE, Ordering::Release);
    while paused.load(Ordering::Acquire) < args.clients {
        std::thread::sleep(Duration::from_millis(2));
    }
    coord.finalize_all(true).expect("finalize 1:1");
    let (_, mut frozen) = router
        .scatter_rows("SELECT id, owner, balance FROM accounts_v2")
        .expect("scatter accounts_v2");
    frozen.sort_by_key(|r| r.0[0].as_i64().unwrap());
    assert_eq!(frozen.len() as i64, args.accounts, "row count changed");
    let mut total = 0;
    for row in &frozen {
        let id = row.0[0].as_i64().unwrap();
        let balance = row.0[2].as_i64().unwrap();
        let expected = INITIAL_BALANCE + ledger[id as usize].load(Ordering::Acquire);
        assert_eq!(
            balance, expected,
            "acked commit lost (or phantom write) on account {id}: \
             balance {balance}, ledger says {expected}"
        );
        total += balance;
    }
    assert_eq!(
        total,
        args.accounts * INITIAL_BALANCE,
        "transfers must conserve total balance"
    );
    println!(
        "loadgen: cluster 1:1 exactly-once + ledger verified ({} rows, total {total}) at {:?}",
        frozen.len(),
        started.elapsed()
    );

    // Single-node oracle: the same frozen rows through the same GROUP
    // BY migration on one plain node.
    let oracle_totals = cluster_oracle_totals(args, &frozen);

    // The cross-node n:1 flip, raced by the point-readers.
    phase.store(PHASE_TOTALS, Ordering::Release);
    let specs = coord
        .migrate(
            "CREATE TABLE owner_totals AS (SELECT owner, SUM(balance) AS total \
             FROM accounts_v2 GROUP BY owner) PRIMARY KEY (owner)",
        )
        .expect("n:1 cluster flip");
    assert_eq!(specs.len(), 1, "one aggregate output table");
    assert!(
        coord
            .wait_all_complete(Duration::from_secs(30))
            .expect("poll cluster migration"),
        "n:1 lazy migration never drained on every node"
    );
    let moved = coord.run_exchange(&specs).expect("aggregate exchange");
    coord.finalize_all(false).expect("finalize n:1");
    println!(
        "loadgen: n:1 cluster flip + exchange done ({moved} partials moved) at {:?}",
        started.elapsed()
    );

    let (_, totals) = router
        .scatter_rows("SELECT owner, total FROM owner_totals")
        .expect("scatter owner_totals");
    let mut sorted_totals = totals.clone();
    sorted_totals.sort_by_key(|r| format!("{r:?}"));
    assert_eq!(
        totals.len() as i64,
        args.owners,
        "one merged group per owner"
    );
    let grand: i64 = totals.iter().map(|r| r.0[1].as_i64().unwrap()).sum();
    assert_eq!(
        grand,
        args.accounts * INITIAL_BALANCE,
        "aggregation must conserve total balance"
    );
    assert_eq!(
        format!("{sorted_totals:?}"),
        format!("{oracle_totals:?}"),
        "distributed owner_totals diverged from the single-node oracle"
    );
    println!(
        "loadgen: scatter-gathered owner_totals byte-identical to the single-node oracle at {:?}",
        started.elapsed()
    );

    phase.store(PHASE_DONE, Ordering::Release);
    for h in handles {
        h.join().expect("worker");
    }

    // Cluster-level summary gauges (per-node counters summed; topology
    // gauges are cluster-wide constants).
    let status = coord.aggregate_status().expect("final cluster status");
    let gauge = |k: &str| bullfrog_cluster::coordinator::stat(&status, k);
    println!(
        "loadgen: {} transfers committed, {} retries, {} statements across the cluster",
        committed.load(Ordering::Relaxed),
        retried.load(Ordering::Relaxed),
        gauge("sessions.statements"),
    );
    println!(
        "loadgen: cluster.nodes = {}, cluster.shardmap_version = {}, \
         cluster.migration.granules_done = {granules_done}, \
         cluster.migration.granules_total = {granules_total}",
        gauge("cluster.nodes"),
        gauge("cluster.shardmap_version"),
    );
    println!(
        "loadgen: cluster.wrong_shard_rejects = {}, cluster.flip_pending_rejects = {}",
        gauge("cluster.wrong_shard_rejects"),
        gauge("cluster.flip_pending_rejects"),
    );
    assert_eq!(gauge("cluster.nodes"), n as i64);
    assert!(
        gauge("cluster.wrong_shard_rejects") >= 1,
        "the stale-map burst must have registered server-side"
    );

    cluster.shutdown();
    println!("loadgen: cluster done in {:?}", started.elapsed());
}

/// Replays the frozen `accounts_v2` rows through the GROUP BY migration
/// on one plain (cluster-less) node and returns its sorted
/// `owner_totals` — the oracle the distributed run must match
/// byte-for-byte.
fn cluster_oracle_totals(
    args: &Args,
    frozen: &[bullfrog_common::Row],
) -> Vec<bullfrog_common::Row> {
    let db = Arc::new(Database::with_config(DbConfig {
        mode: args.mode,
        ..DbConfig::default()
    }));
    let mut server = Server::bind(
        ("127.0.0.1", 0),
        Arc::new(Bullfrog::new(db)),
        ServerConfig::default(),
    )
    .expect("bind oracle");
    let mut admin = Client::connect(server.local_addr()).expect("oracle connect");
    admin
        .execute("CREATE TABLE accounts_v2 (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .expect("oracle create");
    for chunk in frozen.chunks(64) {
        let values: Vec<String> = chunk
            .iter()
            .map(|r| {
                format!(
                    "({}, {}, {})",
                    bullfrog_cluster::coordinator::sql_lit(&r.0[0]),
                    bullfrog_cluster::coordinator::sql_lit(&r.0[1]),
                    bullfrog_cluster::coordinator::sql_lit(&r.0[2]),
                )
            })
            .collect();
        admin
            .execute(&format!(
                "INSERT INTO accounts_v2 VALUES {}",
                values.join(", ")
            ))
            .expect("oracle load");
    }
    admin
        .execute(
            "CREATE TABLE owner_totals AS (SELECT owner, SUM(balance) AS total \
             FROM accounts_v2 GROUP BY owner) PRIMARY KEY (owner)",
        )
        .expect("oracle flip");
    wait_complete(&mut admin, Duration::from_secs(30));
    admin
        .execute("FINALIZE MIGRATION")
        .expect("oracle finalize");
    let (_, mut totals) = admin
        .query_rows("SELECT owner, total FROM owner_totals")
        .expect("oracle scan");
    totals.sort_by_key(|r| format!("{r:?}"));
    server.shutdown();
    totals
}

// ---------------------------------------------------------------------------
// --failover: the HA end-state proof.
// ---------------------------------------------------------------------------

/// A spawned repld child, killed on drop so a panicking assertion never
/// leaks daemon processes.
struct RepldChild {
    name: &'static str,
    child: Option<std::process::Child>,
}

impl RepldChild {
    fn spawn(repld: &std::path::Path, name: &'static str, args: &[&str]) -> RepldChild {
        let child = std::process::Command::new(repld)
            .args(args)
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {name} ({}): {e}", repld.display()));
        RepldChild {
            name,
            child: Some(child),
        }
    }

    /// SIGKILL — the unclean death failover must survive.
    fn kill(&mut self) {
        if let Some(mut c) = self.child.take() {
            let _ = c.kill();
            let _ = c.wait();
        }
    }

    /// Reap after a graceful remote shutdown.
    fn wait(&mut self) {
        if let Some(mut c) = self.child.take() {
            let _ = c.wait();
        }
    }
}

impl Drop for RepldChild {
    fn drop(&mut self) {
        if self.child.is_some() {
            eprintln!("loadgen: cleaning up leaked {} child", self.name);
            self.kill();
        }
    }
}

/// Reserves a loopback port by binding and immediately releasing it —
/// the child process re-binds it a moment later.
fn free_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

/// The repld binary next to this one (both live in target/<profile>/).
fn repld_path() -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("current exe");
    exe.parent()
        .expect("exe dir")
        .join(format!("repld{}", std::env::consts::EXE_SUFFIX))
}

fn wait_serving(addr: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        if Client::connect(addr).is_ok() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{addr} never started serving within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls an address's `STATUS` until `key` satisfies `pred`.
fn wait_stat(addr: &str, key: &str, timeout: Duration, pred: impl Fn(i64) -> bool) {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(mut c) = Client::connect(addr) {
            if let Ok(status) = c.status() {
                let v = status
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| *v)
                    .unwrap_or(0);
                if pred(v) {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "{addr} never reached the wanted {key} within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One failover-safe transfer: a fresh `tid` per attempt (an ambiguous
/// `COMMIT` may have applied, so a retry must never collide in
/// `txlog`), the whole bracket restarted on re-route. Returns the
/// acked transfer's tid, or `None` when it never (observably)
/// committed.
fn transfer_ha(
    fc: &mut FailoverClient,
    table: &str,
    a: i64,
    b: i64,
    tids: &AtomicI64,
) -> Option<i64> {
    fc.with_retry(25, |c| {
        let tid = tids.fetch_add(1, Ordering::Relaxed);
        c.execute("BEGIN")?;
        let debited = c.execute(&format!(
            "UPDATE {table} SET balance = balance - 7 WHERE id = {a}"
        ))?;
        let credited = c.execute(&format!(
            "UPDATE {table} SET balance = balance + 7 WHERE id = {b}"
        ))?;
        if debited != credited {
            let _ = c.execute("ROLLBACK");
            panic!("transfer matched {debited} debit rows but {credited} credit rows ({a}->{b})");
        }
        if debited == 0 {
            let _ = c.execute("ROLLBACK");
            return Ok(None);
        }
        c.execute(&format!("INSERT INTO txlog VALUES ({tid}, {a}, {b})"))?;
        c.execute("COMMIT")?;
        Ok(Some(tid))
    })
    .ok()
    .flatten()
}

/// Polls the migration gauges through a failover-aware client.
fn wait_complete_ha(fc: &mut FailoverClient, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let status = fc.status().expect("status poll");
        if stat(&status, "migration.active") == 0 || stat(&status, "migration.complete") == 1 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "migration did not complete within {timeout:?}: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Kill the primary mid-migration; prove the replica promotes, the
/// migration finishes on the survivor, and no acked commit is lost.
fn run_failover(args: &Args, started: Instant) {
    let repld = repld_path();
    assert!(
        repld.exists(),
        "repld not found at {} — build it first (cargo build -p bullfrog-ha)",
        repld.display()
    );
    let scratch = std::env::temp_dir().join(format!("bf-loadgen-ha-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    for sub in ["primary", "replica", "witness"] {
        std::fs::create_dir_all(scratch.join(sub)).expect("create HA scratch dirs");
    }
    let (p_addr, r_addr, w_addr) = (free_addr(), free_addr(), free_addr());
    let members = vec![p_addr.clone(), r_addr.clone(), w_addr.clone()];
    let member_list = members.join(",");
    let lease_ms = "800";

    let mut primary = RepldChild::spawn(
        &repld,
        "primary",
        &[
            "primary",
            "--listen",
            &p_addr,
            "--wal-dir",
            scratch.join("primary").to_str().unwrap(),
            "--ha-self",
            &p_addr,
            "--ha-members",
            &member_list,
            "--lease-ms",
            lease_ms,
            "--sync-replicas",
            "1",
            "--sync-policy",
            "block",
        ],
    );
    let mut replica = RepldChild::spawn(
        &repld,
        "replica",
        &[
            "replica",
            "--listen",
            &r_addr,
            "--primary",
            &p_addr,
            "--wal-dir",
            scratch.join("replica").to_str().unwrap(),
            "--ha-self",
            &r_addr,
            "--ha-members",
            &member_list,
            "--lease-ms",
            lease_ms,
        ],
    );
    let mut witness = RepldChild::spawn(
        &repld,
        "witness",
        &[
            "witness",
            "--listen",
            &w_addr,
            "--wal-dir",
            scratch.join("witness").to_str().unwrap(),
            "--ha-self",
            &w_addr,
            "--ha-members",
            &member_list,
            "--lease-ms",
            lease_ms,
        ],
    );
    for addr in [&p_addr, &r_addr, &w_addr] {
        wait_serving(addr, Duration::from_secs(10));
    }
    // SYNC_REPLICAS 1 + BLOCK: no commit acks until the replica is
    // subscribed and acking, so wait for it before the first write.
    wait_stat(&p_addr, "repl.replicas", Duration::from_secs(10), |v| {
        v >= 1
    });
    println!(
        "loadgen: HA group up (primary {p_addr}, replica {r_addr}, witness {w_addr}) at {:?}",
        started.elapsed()
    );

    let mut admin = FailoverClient::new(members.clone());
    admin
        .execute("CREATE TABLE accounts (id INT, owner CHAR(8), balance INT, PRIMARY KEY (id))")
        .expect("create accounts");
    admin
        .execute("CREATE TABLE txlog (tid INT, src INT, dst INT, PRIMARY KEY (tid))")
        .expect("create txlog");
    for chunk in (0..args.accounts).collect::<Vec<_>>().chunks(64) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, 'o{}', {INITIAL_BALANCE})", i % args.owners))
            .collect();
        admin
            .execute(&format!(
                "INSERT INTO accounts VALUES {}",
                values.join(", ")
            ))
            .expect("load accounts");
    }

    let phase = Arc::new(AtomicUsize::new(PHASE_OLD));
    let paused = Arc::new(AtomicUsize::new(0));
    let tids = Arc::new(AtomicI64::new(1));
    let acked: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for w in 0..args.clients {
        let phase = Arc::clone(&phase);
        let paused = Arc::clone(&paused);
        let tids = Arc::clone(&tids);
        let acked = Arc::clone(&acked);
        let members = members.clone();
        let accounts = args.accounts;
        let ops = args.ops;
        let seed = args.seed;
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(w as u64));
            let mut fc = FailoverClient::new(members);
            let mut acked_pause = false;
            loop {
                match phase.load(Ordering::Acquire) {
                    PHASE_DONE => break,
                    PHASE_PAUSE | PHASE_TOTALS => {
                        if !acked_pause {
                            acked_pause = true;
                            paused.fetch_add(1, Ordering::AcqRel);
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    p => {
                        let table = if p == PHASE_OLD {
                            "accounts"
                        } else {
                            "accounts_v2"
                        };
                        let a = rng.gen_range(0..accounts);
                        let b = (a + 1 + rng.gen_range(0..accounts - 1)) % accounts;
                        if let Some(tid) = transfer_ha(&mut fc, table, a, b, &tids) {
                            acked.lock().push(tid);
                        }
                    }
                }
                if rng.gen_bool(1.0 / ops.max(1) as f64) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            fc.reroutes
        }));
    }

    // Let synchronous traffic run, then flip mid-traffic.
    std::thread::sleep(Duration::from_millis(250));
    admin
        .execute(
            "CREATE TABLE accounts_v2 AS (SELECT id, owner, balance FROM accounts) \
             PRIMARY KEY (id)",
        )
        .expect("submit bitmap migration");
    phase.store(PHASE_NEW, Ordering::Release);
    println!(
        "loadgen: bitmap migration submitted at {:?}, workers flipped",
        started.elapsed()
    );
    // The survivor can only finish what it has heard about: make sure
    // the migration DDL frame reached the replica before the murder.
    wait_stat(&r_addr, "migration.active", Duration::from_secs(10), |v| {
        v >= 1
    });

    println!(
        "loadgen: SIGKILL primary mid-migration at {:?}",
        started.elapsed()
    );
    primary.kill();

    // The lease lapses, the replica stands, the witness's vote makes
    // the majority, and the epoch bump lands in the survivor's WAL.
    let promoted = std::process::Command::new(&repld)
        .args(["wait-promoted", "--addr", &r_addr, "--timeout-secs", "30"])
        .status()
        .expect("run repld wait-promoted");
    assert!(promoted.success(), "replica never promoted after the kill");
    println!("loadgen: replica promoted at {:?}", started.elapsed());

    // Traffic keeps flowing through re-routed clients while the
    // respawned sweepers finish the migration on the survivor.
    wait_complete_ha(&mut admin, Duration::from_secs(30));
    std::thread::sleep(Duration::from_millis(250));
    phase.store(PHASE_PAUSE, Ordering::Release);
    while paused.load(Ordering::Acquire) < args.clients {
        std::thread::sleep(Duration::from_millis(2));
    }
    admin
        .execute("FINALIZE MIGRATION DROP OLD")
        .expect("finalize bitmap migration on the survivor");

    // The audit. The transaction log is ground truth: every acked tid
    // must be in it (zero lost acked commits), and replaying it must
    // reproduce every balance (no phantom or half-applied transfer).
    let (_, logged) = admin
        .query_rows("SELECT tid, src, dst FROM txlog")
        .expect("scan txlog");
    let mut applied = std::collections::HashSet::new();
    let mut expected: Vec<i64> = vec![INITIAL_BALANCE; args.accounts as usize];
    for row in &logged {
        let tid = row.0[0].as_i64().unwrap();
        let src = row.0[1].as_i64().unwrap() as usize;
        let dst = row.0[2].as_i64().unwrap() as usize;
        assert!(applied.insert(tid), "txlog tid {tid} applied twice");
        expected[src] -= 7;
        expected[dst] += 7;
    }
    // Workers are quiesced at PHASE_PAUSE, so the list is stable.
    let acked: Vec<i64> = acked.lock().clone();
    let lost: Vec<i64> = acked
        .iter()
        .copied()
        .filter(|tid| !applied.contains(tid))
        .collect();
    assert!(
        lost.is_empty(),
        "{} acked commits lost across failover: {lost:?}",
        lost.len()
    );
    let rows = admin
        .query_rows("SELECT id, balance FROM accounts_v2")
        .expect("scan accounts_v2")
        .1;
    assert_eq!(rows.len() as i64, args.accounts, "row count changed");
    let mut total = 0;
    for row in &rows {
        let id = row.0[0].as_i64().unwrap();
        let balance = row.0[1].as_i64().unwrap();
        assert_eq!(
            balance, expected[id as usize],
            "account {id} diverged from the txlog replay across failover"
        );
        total += balance;
    }
    assert_eq!(
        total,
        args.accounts * INITIAL_BALANCE,
        "transfers must conserve total balance"
    );
    println!(
        "loadgen: zero lost acked commits ({} acked, {} logged, {} rows audited) at {:?}",
        acked.len(),
        logged.len(),
        rows.len(),
        started.elapsed()
    );

    // The n:1 (hash-tracked) migration must also run to completion on
    // the promoted survivor — its sweepers are respawned state, not
    // inherited threads.
    admin
        .execute(
            "CREATE TABLE owner_totals AS (SELECT owner, SUM(balance) AS total \
             FROM accounts_v2 GROUP BY owner) PRIMARY KEY (owner)",
        )
        .expect("submit hash migration on the survivor");
    wait_complete_ha(&mut admin, Duration::from_secs(30));
    admin
        .execute("FINALIZE MIGRATION")
        .expect("finalize hash migration");
    let totals = admin
        .query_rows("SELECT owner, total FROM owner_totals")
        .expect("scan owner_totals")
        .1;
    assert_eq!(totals.len() as i64, args.owners, "one group per owner");
    let grand: i64 = totals.iter().map(|r| r.0[1].as_i64().unwrap()).sum();
    assert_eq!(
        grand,
        args.accounts * INITIAL_BALANCE,
        "aggregation must conserve total balance"
    );

    phase.store(PHASE_DONE, Ordering::Release);
    let mut reroutes = 0;
    for h in handles {
        reroutes += h.join().expect("worker");
    }
    assert!(
        reroutes >= 1,
        "no client ever re-routed — the kill happened outside the traffic window"
    );

    // Fencing evidence on the survivor: bumped epoch, leader role.
    let mut survivor = Client::connect(r_addr.as_str()).expect("survivor connect");
    let state = survivor.ha_state().expect("survivor HA state");
    assert_eq!(state.role, "leader", "survivor must lead after promotion");
    assert!(state.epoch >= 1, "promotion must bump the fencing epoch");
    let sstatus = survivor.status().expect("survivor status");
    assert_eq!(stat(&sstatus, "repl.promoted"), 1);
    println!(
        "loadgen: survivor leads at epoch {} ({} client re-routes, migration complete) at {:?}",
        state.epoch,
        reroutes,
        started.elapsed()
    );

    survivor.shutdown_server().expect("survivor shutdown");
    replica.wait();
    let mut wclient = Client::connect(w_addr.as_str()).expect("witness connect");
    wclient.shutdown_server().expect("witness shutdown");
    witness.wait();
    let _ = std::fs::remove_dir_all(&scratch);
    println!("loadgen: failover scenario done in {:?}", started.elapsed());
}
