//! Quorum-lease and synchronous-replication integration tests, fully
//! in-process: three [`HaMember`]s over real loopback servers, a live
//! lease-renewal loop, and an election after the leader disappears.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_core::{Bullfrog, ClientAccess};
use bullfrog_engine::{Database, DbConfig};
use bullfrog_ha::{HaConfig, HaMember, HaNode, Role};
use bullfrog_net::{Client, Server, ServerConfig};
use bullfrog_repl::{DdlJournal, Replica, ReplicationSender};
use bullfrog_txn::{EpochStore, WalOptions};
use parking_lot::Mutex;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bf-ha-quorum-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Reserves an ephemeral loopback address the caller re-binds shortly
/// after (members must know each other's addresses before binding).
fn free_addr() -> SocketAddr {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = listener.local_addr().expect("local addr");
    drop(listener);
    addr
}

fn stat(pairs: &[(String, i64)], key: &str) -> i64 {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("STATUS missing {key}: {pairs:?}"))
}

/// Leader renewal holds elections off while the leader lives; killing
/// it lapses the lease, the follower stands with the witness's vote,
/// promotes its replica, bumps the epoch, and starts taking writes.
#[test]
fn replica_promotes_after_leader_death() {
    let dir = scratch_dir("election");
    let ttl = Duration::from_millis(250);
    let (p_addr, r_addr, w_addr) = (free_addr(), free_addr(), free_addr());
    let members: Vec<String> = [p_addr, r_addr, w_addr]
        .iter()
        .map(|a| a.to_string())
        .collect();
    let config = |self_addr: SocketAddr| HaConfig {
        self_addr: self_addr.to_string(),
        members: members.clone(),
        lease_ttl: ttl,
    };

    // Primary: file-backed, replication hooks, leader member + loop.
    let wal_path = dir.join("primary.wal");
    let pdb = Arc::new(
        Database::with_wal_file_opts(DbConfig::default(), &wal_path, WalOptions::default())
            .expect("file-backed primary"),
    );
    let pbf = Arc::new(Bullfrog::new(pdb));
    let journal = Arc::new(DdlJournal::open(DdlJournal::path_for(&wal_path)).expect("journal"));
    let pepoch = EpochStore::open(&wal_path).expect("epoch sidecar");
    let sender = ReplicationSender::with_epoch(Arc::clone(&pbf), journal, pepoch);
    let p_member = HaMember::new(
        config(p_addr),
        Arc::clone(sender.epoch_store()),
        Role::Leader,
        Some(pbf.db().wal().sync_gate()),
    );
    let mut p_node = HaNode::spawn(Arc::clone(&p_member), None);
    let p_server = Server::bind(
        p_addr,
        Arc::clone(&pbf),
        ServerConfig {
            replication: Some(Arc::clone(&sender) as _),
            ha: Some(Arc::clone(&p_member) as _),
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");

    // Replica: follower member + loop that can promote it.
    let rbf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let replica = Replica::start(p_addr.to_string(), Arc::clone(&rbf));
    let r_member = HaMember::new(
        config(r_addr),
        Arc::clone(replica.epoch_store()),
        Role::Follower,
        Some(rbf.db().wal().sync_gate()),
    );
    let read_only = replica.read_only();
    let replica = Arc::new(Mutex::new(replica));
    let mut r_node = HaNode::spawn(Arc::clone(&r_member), Some(Arc::clone(&replica)));
    let _r_server = Server::bind(
        r_addr,
        Arc::clone(&rbf),
        ServerConfig {
            read_only: Some(read_only),
            ha: Some(Arc::clone(&r_member) as _),
            ..ServerConfig::default()
        },
    )
    .expect("bind replica");

    // Witness: vote-granting member only, no data, no loop needed.
    let wbf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let w_member = HaMember::new(config(w_addr), EpochStore::volatile(), Role::Witness, None);
    let _w_server = Server::bind(
        w_addr,
        wbf,
        ServerConfig {
            ha: Some(Arc::clone(&w_member) as _),
            ..ServerConfig::default()
        },
    )
    .expect("bind witness");

    let mut admin = Client::connect(p_addr).expect("admin");
    admin
        .execute("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
        .unwrap();
    admin.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    pbf.db().wal().sync();
    assert!(
        replica
            .lock()
            .wait_caught_up(pbf.db().wal().frontier(), Duration::from_secs(10)),
        "replica never caught up"
    );

    // While the leader renews, the follower must not stand for election
    // even well past the startup grace.
    std::thread::sleep(ttl * 4);
    assert_eq!(r_member.role(), Role::Follower, "premature election");
    assert!(!replica.lock().is_promoted(), "premature promotion");
    assert_eq!(p_member.role(), Role::Leader, "leader deposed while alive");

    // Kill the leader: loop first (stop renewals), then the server.
    p_node.shutdown();
    drop(p_server);
    drop(admin);

    // The lease lapses, the witness's vote makes 2/3, the replica
    // promotes and the member becomes leader.
    let deadline = Instant::now() + Duration::from_secs(10);
    while r_member.role() != Role::Leader {
        assert!(Instant::now() < deadline, "follower never won the election");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(replica.lock().is_promoted(), "leadership without promotion");
    assert_eq!(r_member.epoch(), 1, "election must land on epoch 1");

    // The survivor takes writes, reports itself leader, and the write
    // gate is open.
    let mut survivor = Client::connect(r_addr).expect("survivor client");
    let state = survivor.ha_state().expect("ha state");
    assert_eq!(state.role, "leader");
    assert_eq!(state.epoch, 1);
    survivor.execute("INSERT INTO kv VALUES (2, 20)").unwrap();
    let (_, rows) = survivor.query_rows("SELECT k, v FROM kv").expect("scan");
    assert_eq!(rows.len(), 2, "survivor lost the pre-failover row");
    let status = survivor.status().expect("status");
    assert_eq!(stat(&status, "ha.is_leader"), 1);
    assert_eq!(stat(&status, "repl.promoted"), 1);

    r_node.shutdown();
    replica.lock().shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `SET SYNC_REPLICAS` over the wire: with no replica attached a
/// `DEGRADE` policy acks after its grace (counting the degrade), and
/// with a replica under `BLOCK` the commit waits for the replica ack.
#[test]
fn sync_replicas_degrade_and_block() {
    let dir = scratch_dir("sync");
    let wal_path = dir.join("primary.wal");
    let db = Arc::new(
        Database::with_wal_file_opts(DbConfig::default(), &wal_path, WalOptions::default())
            .expect("file-backed primary"),
    );
    let bf = Arc::new(Bullfrog::new(db));
    let journal = Arc::new(DdlJournal::open(DdlJournal::path_for(&wal_path)).expect("journal"));
    let sender = ReplicationSender::new(Arc::clone(&bf), journal);
    let server = Server::bind(
        ("127.0.0.1", 0),
        Arc::clone(&bf),
        ServerConfig {
            replication: Some(Arc::clone(&sender) as _),
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    let addr = server.local_addr();

    let mut admin = Client::connect(addr).expect("admin");
    admin
        .execute("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
        .unwrap();
    admin.execute("SET SYNC_REPLICAS 1").unwrap();
    admin.execute("SET SYNC_POLICY DEGRADE 50").unwrap();

    // No replica: the commit must still ack (degraded) rather than
    // hang, and the degrade is counted.
    let t0 = Instant::now();
    admin.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "degrade policy must not block indefinitely"
    );
    let status = admin.status().expect("status");
    assert_eq!(stat(&status, "repl.sync_replicas"), 1);
    assert!(
        stat(&status, "repl.sync_degraded") >= 1,
        "commit without a replica must count as degraded: {status:?}"
    );

    // Attach a replica and switch to BLOCK: the commit now waits for a
    // real replica ack and the replicated horizon advances.
    let rbf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let mut replica = Replica::start(addr.to_string(), Arc::clone(&rbf));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = admin.status().expect("status");
        if stat(&status, "repl.sync_peers") >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "replica never registered");
        std::thread::sleep(Duration::from_millis(10));
    }
    admin.execute("SET SYNC_POLICY BLOCK").unwrap();
    admin.execute("INSERT INTO kv VALUES (2, 20)").unwrap();
    let status = admin.status().expect("status");
    assert!(
        stat(&status, "repl.sync_replicated_lsn") > 0,
        "replica ack horizon must have advanced: {status:?}"
    );

    replica.shutdown();
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
