//! Fencing regression suite: a deposed primary must never acknowledge
//! writes or ship frames again, and a promoted node must keep its
//! bumped epoch across restarts — with or without the sidecar file.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bullfrog_core::{Bullfrog, ClientAccess};
use bullfrog_engine::{Database, DbConfig};
use bullfrog_net::{err_code, Client, ClientError, Server, ServerConfig};
use bullfrog_repl::{restore, DdlJournal, Replica, ReplicationSender};
use bullfrog_txn::{EpochStore, WalOptions};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bf-ha-fence-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A file-backed primary with a persistent epoch store, serving SQL and
/// replication on an ephemeral loopback port.
fn start_primary(dir: &std::path::Path) -> (Server, Arc<Bullfrog>, Arc<ReplicationSender>) {
    let wal_path = dir.join("primary.wal");
    let db = Arc::new(
        Database::with_wal_file_opts(DbConfig::default(), &wal_path, WalOptions::default())
            .expect("file-backed primary"),
    );
    let bf = Arc::new(Bullfrog::new(db));
    let journal = Arc::new(DdlJournal::open(DdlJournal::path_for(&wal_path)).expect("ddl journal"));
    let epoch = EpochStore::open(&wal_path).expect("epoch sidecar");
    let sender = ReplicationSender::with_epoch(Arc::clone(&bf), journal, epoch);
    let server = Server::bind(
        ("127.0.0.1", 0),
        Arc::clone(&bf),
        ServerConfig {
            replication: Some(Arc::clone(&sender) as _),
            ..ServerConfig::default()
        },
    )
    .expect("bind primary");
    (server, bf, sender)
}

fn stat(pairs: &[(String, i64)], key: &str) -> i64 {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("STATUS missing {key}: {pairs:?}"))
}

fn wait_stat(client: &mut Client, key: &str, want: i64, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let status = client.status().expect("status poll");
        if stat(&status, key) == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{key} never reached {want}: {status:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A replica that has observed a newer epoch rejects the old primary's
/// frames, and its re-subscription fences the old primary for good: no
/// more shipped frames, no more acknowledged writes.
#[test]
fn stale_epoch_primary_is_fenced() {
    let dir = scratch_dir("stale");
    let (server, bf, sender) = start_primary(&dir);
    let addr = server.local_addr();

    let rbf = Arc::new(Bullfrog::new(Arc::new(Database::new())));
    let replica = Replica::start(addr.to_string(), Arc::clone(&rbf));
    let rserver = Server::bind(
        ("127.0.0.1", 0),
        Arc::clone(&rbf),
        ServerConfig {
            read_only: Some(replica.read_only()),
            ..ServerConfig::default()
        },
    )
    .expect("bind replica");

    let mut admin = Client::connect(addr).expect("admin");
    admin
        .execute("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
        .unwrap();
    admin.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    bf.db().wal().sync();
    assert!(
        replica.wait_caught_up(bf.db().wal().frontier(), Duration::from_secs(10)),
        "replica never caught up: {:?}",
        replica.stats()
    );

    // Simulate a promotion elsewhere: the replica has seen epoch 5.
    // The old primary is still at epoch 0 and does not know.
    replica
        .epoch_store()
        .observe(5)
        .expect("observe newer epoch");

    // Traffic on the stale primary: its frames now carry a stale epoch,
    // the replica refuses them and re-subscribes at epoch 5, which
    // fences the sender.
    admin.execute("INSERT INTO kv VALUES (2, 20)").unwrap();
    bf.db().wal().sync();
    wait_stat(&mut admin, "repl.fenced", 1, Duration::from_secs(10));
    assert_eq!(
        sender.epoch_store().epoch(),
        5,
        "zombie must adopt the epoch"
    );

    // A fenced primary acknowledges nothing: writes bounce with the
    // READ_ONLY class so clients re-resolve the real primary.
    match admin.execute("INSERT INTO kv VALUES (3, 30)") {
        Err(ClientError::Server { code, message, .. }) => {
            assert_eq!(code, err_code::READ_ONLY, "fenced writes use READ_ONLY");
            assert!(
                message.contains("fenced"),
                "message must say fenced: {message}"
            );
        }
        other => panic!("write on fenced primary: expected rejection, got {other:?}"),
    }

    // Nothing written after the fence ever reaches the replica: the row
    // inserted while stale (k=2) and the rejected one (k=3) are absent.
    std::thread::sleep(Duration::from_millis(200));
    let mut rclient = Client::connect(rserver.local_addr()).expect("replica client");
    let (_, rows) = rclient.query_rows("SELECT k, v FROM kv").expect("scan");
    assert_eq!(
        rows.len(),
        1,
        "replica must hold only the pre-fence row: {rows:?}"
    );

    drop((server, rserver, replica));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A promoted replica's bumped epoch survives `restore()` — first via
/// the `.epoch` sidecar, and, with the sidecar deleted, via the durable
/// `Epoch` record promotion appended to its WAL.
#[test]
fn promoted_epoch_survives_restore() {
    let dir = scratch_dir("restore");
    let (server, bf, _sender) = start_primary(&dir);
    let addr = server.local_addr();

    // File-backed replica with its own persistent epoch store.
    let rdir = dir.join("replica");
    std::fs::create_dir_all(&rdir).unwrap();
    let r_wal = rdir.join("replica.wal");
    let rdb = Arc::new(
        Database::with_wal_file_opts(DbConfig::default(), &r_wal, WalOptions::default())
            .expect("file-backed replica"),
    );
    let rbf = Arc::new(Bullfrog::new(rdb));
    let repoch = EpochStore::open(&r_wal).expect("replica epoch sidecar");
    let mut replica = Replica::start_with_epoch(addr.to_string(), Arc::clone(&rbf), repoch);

    let mut admin = Client::connect(addr).expect("admin");
    admin
        .execute("CREATE TABLE kv (k INT, v INT, PRIMARY KEY (k))")
        .unwrap();
    admin.execute("INSERT INTO kv VALUES (1, 10)").unwrap();
    bf.db().wal().sync();
    assert!(
        replica.wait_caught_up(bf.db().wal().frontier(), Duration::from_secs(10)),
        "replica never caught up: {:?}",
        replica.stats()
    );

    let epoch = replica.promote().expect("promote");
    assert_eq!(epoch, 1, "first promotion bumps 0 -> 1");
    assert!(replica.is_promoted());
    // The promoted node serves writes now.
    rbf.db().wal().sync();
    replica.shutdown();
    drop(admin);
    drop(server);
    drop(bf);
    rbf.shutdown_background();
    drop(rbf);

    // Restore with the sidecar present.
    let (bf2, _j2, report) =
        restore(&r_wal, DbConfig::default(), WalOptions::default()).expect("restore with sidecar");
    assert_eq!(report.epoch, 1, "sidecar must carry the bumped epoch");
    bf2.shutdown_background();
    drop(bf2);

    // Delete the sidecar: the durable `Epoch` WAL record alone must
    // still reproduce the bumped epoch (and rewrite the sidecar).
    std::fs::remove_file(EpochStore::path_for(&r_wal)).expect("remove sidecar");
    let (bf3, _j3, report) =
        restore(&r_wal, DbConfig::default(), WalOptions::default()).expect("restore from records");
    assert_eq!(
        report.epoch, 1,
        "the WAL Epoch record alone must reproduce the epoch"
    );
    bf3.shutdown_background();
    drop(bf3);

    let _ = std::fs::remove_dir_all(&dir);
}
