//! Property tests of the expression evaluator: Kleene-logic laws,
//! conjunct-split/rebuild equivalence, and substitution identity.

use bullfrog_common::{Row, Value};
use bullfrog_query::{conjoin, conjuncts, ColRef, Expr, Scope};
use proptest::prelude::*;

fn scope() -> Scope {
    Scope::table("t", &["a".into(), "b".into(), "c".into()])
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-5i64..5).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    proptest::collection::vec((-5i64..5).prop_map(Value::Int), 3..=3).prop_map(Row)
}

/// Random boolean expression over columns a, b, c and small literals.
fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (
            prop_oneof![Just("a"), Just("b"), Just("c")],
            -5i64..5,
            0u8..3
        )
            .prop_map(|(c, v, op)| {
                let lhs = Expr::column(c);
                let rhs = Expr::lit(v);
                match op {
                    0 => lhs.eq(rhs),
                    1 => lhs.lt(rhs),
                    _ => lhs.ge(rhs),
                }
            }),
        arb_value().prop_map(|v| match v {
            Value::Bool(b) => Expr::lit(b),
            Value::Null => Expr::null(),
            other => Expr::Lit(other).eq(Expr::lit(0)),
        }),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn double_negation_preserves_matching(e in arb_bool_expr(), r in arb_row()) {
        let s = scope();
        let direct = e.clone().eval(&s, &r).unwrap();
        let doubled = e.not().not().eval(&s, &r).unwrap();
        prop_assert_eq!(direct, doubled);
    }

    #[test]
    fn and_or_commute(a in arb_bool_expr(), b in arb_bool_expr(), r in arb_row()) {
        let s = scope();
        prop_assert_eq!(
            a.clone().and(b.clone()).eval(&s, &r).unwrap(),
            b.clone().and(a.clone()).eval(&s, &r).unwrap()
        );
        prop_assert_eq!(
            a.clone().or(b.clone()).eval(&s, &r).unwrap(),
            b.or(a).eval(&s, &r).unwrap()
        );
    }

    #[test]
    fn de_morgan_holds(a in arb_bool_expr(), b in arb_bool_expr(), r in arb_row()) {
        let s = scope();
        let lhs = a.clone().and(b.clone()).not().eval(&s, &r).unwrap();
        let rhs = a.not().or(b.not()).eval(&s, &r).unwrap();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn conjunct_roundtrip_preserves_matches(
        parts in proptest::collection::vec(arb_bool_expr(), 1..5),
        r in arb_row(),
    ) {
        let s = scope();
        let pred = parts.clone().into_iter().reduce(Expr::and).expect("non-empty");
        let rebuilt = conjoin(conjuncts(&pred)).expect("non-empty");
        prop_assert_eq!(
            pred.matches(&s, &r).unwrap(),
            rebuilt.matches(&s, &r).unwrap()
        );
    }

    #[test]
    fn identity_substitution_is_noop(e in arb_bool_expr(), r in arb_row()) {
        let s = scope();
        let mapped = e.map_columns(&|c: &ColRef| Some(Expr::Col(c.clone())));
        prop_assert_eq!(e.eval(&s, &r).unwrap(), mapped.eval(&s, &r).unwrap());
    }

    #[test]
    fn matches_is_true_only_on_bool_true(e in arb_bool_expr(), r in arb_row()) {
        let s = scope();
        let v = e.clone().eval(&s, &r).unwrap();
        let m = e.matches(&s, &r).unwrap();
        prop_assert_eq!(m, v == Value::Bool(true));
    }
}
