//! Predicate analysis: conjunct extraction, table classification, and
//! sargable-condition detection.

use std::collections::BTreeSet;

use bullfrog_common::Value;

use crate::expr::{CmpOp, ColRef, Expr};

/// Splits a predicate into its top-level AND conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    collect_conjuncts(expr, &mut out);
    out
}

fn collect_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::And(a, b) => {
            collect_conjuncts(a, out);
            collect_conjuncts(b, out);
        }
        other => out.push(other.clone()),
    }
}

/// Rebuilds a predicate from conjuncts; `None` when the list is empty
/// (an empty conjunction is TRUE — "no filter").
pub fn conjoin(mut parts: Vec<Expr>) -> Option<Expr> {
    let first = if parts.is_empty() {
        return None;
    } else {
        parts.remove(0)
    };
    Some(parts.into_iter().fold(first, Expr::and))
}

/// The set of table aliases an expression references. Bare (unqualified)
/// references contribute `None`-alias markers via the empty string so the
/// caller can detect them.
pub fn referenced_tables(expr: &Expr) -> BTreeSet<String> {
    let mut cols = Vec::new();
    expr.columns(&mut cols);
    cols.into_iter()
        .map(|c| c.table.unwrap_or_default())
        .collect()
}

/// Extracts `column = literal` conditions (either operand order) usable for
/// index point lookups. Only top-level conjuncts are considered.
pub fn sargable_equalities(expr: &Expr) -> Vec<(ColRef, Value)> {
    let mut out = Vec::new();
    for c in conjuncts(expr) {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            match (*a, *b) {
                (Expr::Col(col), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(col)) => {
                    out.push((col, v));
                }
                _ => {}
            }
        }
    }
    out
}

/// A one-sided bound extracted from a conjunct: the value and whether it
/// is inclusive.
pub type RangeBound = (Value, bool);

/// Extracts per-column range bounds (`col > lit`, `lit >= col`, ...) from
/// top-level conjuncts: returns `(column, lower, upper)` triples with the
/// tightest bound seen per column.
pub fn sargable_ranges(expr: &Expr) -> Vec<(ColRef, Option<RangeBound>, Option<RangeBound>)> {
    use std::collections::BTreeMap;
    let mut map: BTreeMap<ColRef, (Option<RangeBound>, Option<RangeBound>)> = BTreeMap::new();
    for c in conjuncts(expr) {
        let Expr::Cmp(op, a, b) = c else { continue };
        // Normalize to col OP lit.
        let (col, lit, op) = match (*a, *b) {
            (Expr::Col(col), Expr::Lit(v)) => (col, v, op),
            (Expr::Lit(v), Expr::Col(col)) => {
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => other,
                };
                (col, v, flipped)
            }
            _ => continue,
        };
        if lit.is_null() {
            continue;
        }
        let entry = map.entry(col).or_default();
        match op {
            CmpOp::Gt | CmpOp::Ge => {
                let incl = op == CmpOp::Ge;
                let tighter = match &entry.0 {
                    None => true,
                    Some((cur, cur_incl)) => lit > *cur || (lit == *cur && *cur_incl && !incl),
                };
                if tighter {
                    entry.0 = Some((lit, incl));
                }
            }
            CmpOp::Lt | CmpOp::Le => {
                let incl = op == CmpOp::Le;
                let tighter = match &entry.1 {
                    None => true,
                    Some((cur, cur_incl)) => lit < *cur || (lit == *cur && *cur_incl && !incl),
                };
                if tighter {
                    entry.1 = Some((lit, incl));
                }
            }
            CmpOp::Eq | CmpOp::Ne => {}
        }
    }
    map.into_iter()
        .filter(|(_, (lo, hi))| lo.is_some() || hi.is_some())
        .map(|(c, (lo, hi))| (c, lo, hi))
        .collect()
}

/// Extracts `colA = colB` join conditions from top-level conjuncts.
pub fn column_equalities(expr: &Expr) -> Vec<(ColRef, ColRef)> {
    let mut out = Vec::new();
    for c in conjuncts(expr) {
        if let Expr::Cmp(CmpOp::Eq, a, b) = c {
            if let (Expr::Col(ca), Expr::Col(cb)) = (*a, *b) {
                out.push((ca, cb));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_split_flattens_nested_ands() {
        let p = Expr::column("a").eq(Expr::lit(1)).and(
            Expr::column("b")
                .gt(Expr::lit(2))
                .and(Expr::column("c").lt(Expr::lit(3))),
        );
        let cs = conjuncts(&p);
        assert_eq!(cs.len(), 3);
        // ORs are atomic conjuncts.
        let p = Expr::column("a")
            .eq(Expr::lit(1))
            .or(Expr::column("b").eq(Expr::lit(2)));
        assert_eq!(conjuncts(&p).len(), 1);
    }

    #[test]
    fn conjoin_round_trips() {
        let p = Expr::column("a")
            .eq(Expr::lit(1))
            .and(Expr::column("b").gt(Expr::lit(2)));
        let rebuilt = conjoin(conjuncts(&p)).unwrap();
        assert_eq!(conjuncts(&rebuilt), conjuncts(&p));
        assert!(conjoin(vec![]).is_none());
    }

    #[test]
    fn referenced_tables_classifies() {
        let p = Expr::col("f", "x")
            .eq(Expr::col("g", "y"))
            .and(Expr::column("z").gt(Expr::lit(0)));
        let tables = referenced_tables(&p);
        assert!(tables.contains("f"));
        assert!(tables.contains("g"));
        assert!(tables.contains("")); // the bare reference
    }

    #[test]
    fn sargable_detects_both_orders() {
        let p = Expr::col("f", "id")
            .eq(Expr::lit("AA101"))
            .and(Expr::lit(9).eq(Expr::column("day")))
            .and(Expr::column("x").gt(Expr::lit(1))); // not an equality
        let sarg = sargable_equalities(&p);
        assert_eq!(sarg.len(), 2);
        assert_eq!(sarg[0].0, ColRef::new("f", "id"));
        assert_eq!(sarg[0].1, Value::text("AA101"));
        assert_eq!(sarg[1].0, ColRef::bare("day"));
    }

    #[test]
    fn sargable_ranges_extracts_tightest_bounds() {
        let p = Expr::column("o")
            .ge(Expr::lit(10))
            .and(Expr::column("o").gt(Expr::lit(12)))
            .and(Expr::column("o").lt(Expr::lit(30)))
            .and(Expr::lit(25).ge(Expr::column("o"))); // 25 >= o → o <= 25
        let r = sargable_ranges(&p);
        assert_eq!(r.len(), 1);
        let (col, lo, hi) = &r[0];
        assert_eq!(col, &ColRef::bare("o"));
        assert_eq!(lo, &Some((Value::Int(12), false)), "o > 12 is tighter");
        assert_eq!(hi, &Some((Value::Int(25), true)), "o <= 25 is tighter");
    }

    #[test]
    fn sargable_ranges_ignores_null_and_equalities() {
        let p = Expr::column("a")
            .gt(Expr::null())
            .and(Expr::column("b").eq(Expr::lit(1)));
        assert!(sargable_ranges(&p).is_empty());
    }

    #[test]
    fn sargable_ignores_col_eq_col() {
        let p = Expr::col("f", "id").eq(Expr::col("g", "id"));
        assert!(sargable_equalities(&p).is_empty());
        assert_eq!(column_equalities(&p).len(), 1);
    }
}
