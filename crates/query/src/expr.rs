//! Expression AST and evaluation.

use std::cmp::Ordering;
use std::fmt;

use bullfrog_common::{Error, Result, Row, Value};

/// A column reference, optionally qualified by a table alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Table alias; `None` means "resolve by unique column name".
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColRef {
    /// Qualified reference `alias.column`.
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }

    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> Self {
        ColRef {
            table: None,
            column: column.into(),
        }
    }
}

impl fmt::Display for ColRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Does `ord` satisfy the operator?
    pub fn holds(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Scalar functions.
///
/// `ExtractDay` reproduces the paper's running example
/// (`EXTRACT(DAY FROM FLIGHTDATE) = 9`); the rest cover TPC-C needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// Day-of-month (1..=31) of a `Date` (days since epoch, proleptic
    /// Gregorian) or `Timestamp`.
    ExtractDay,
    /// Absolute value of a numeric.
    Abs,
    /// Unary negation of a numeric.
    Neg,
}

/// Aggregate functions (used by [`crate::spec::OutputColumn::Agg`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Count of non-NULL inputs.
    Count,
    /// Sum of non-NULL inputs (NULL when all inputs NULL).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of *distinct* non-NULL inputs (`COUNT(DISTINCT x)`,
    /// as in TPC-C StockLevel).
    CountDistinct,
}

/// The expression AST. Evaluation follows SQL three-valued logic: any
/// comparison with NULL yields NULL; `And`/`Or` use Kleene logic; a
/// predicate "matches" only when it evaluates to `true`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Column reference.
    Col(ColRef),
    /// Literal value.
    Lit(Value),
    /// Binary comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND (Kleene).
    And(Box<Expr>, Box<Expr>),
    /// Logical OR (Kleene).
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// IS NULL.
    IsNull(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Scalar function call.
    Call(Func, Box<Expr>),
    /// Positional parameter placeholder (`?`), 0-based. Only produced by
    /// prepared-statement templates; must be substituted via
    /// [`Expr::bind_params`] before evaluation.
    Param(u32),
}

impl Expr {
    /// `alias.column` reference.
    pub fn col(table: impl Into<String>, column: impl Into<String>) -> Self {
        Expr::Col(ColRef::new(table, column))
    }

    /// Unqualified column reference.
    pub fn column(column: impl Into<String>) -> Self {
        Expr::Col(ColRef::bare(column))
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Self {
        Expr::Lit(v.into())
    }

    /// NULL literal.
    pub fn null() -> Self {
        Expr::Lit(Value::Null)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Self {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Self {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Self {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Expr::Not(Box::new(self))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Self {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Self {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Self {
        Expr::Mul(Box::new(self), Box::new(other))
    }

    /// Evaluates against `row` laid out by `scope`.
    pub fn eval(&self, scope: &Scope, row: &Row) -> Result<Value> {
        match self {
            Expr::Col(c) => {
                let idx = scope.resolve(c)?;
                Ok(row
                    .try_get(idx)
                    .ok_or_else(|| Error::Eval(format!("row too short for {c}")))?
                    .clone())
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(scope, row)?, b.eval(scope, row)?);
                Ok(match va.sql_cmp(&vb) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(op.holds(ord)),
                })
            }
            Expr::And(a, b) => {
                let va = a.eval(scope, row)?;
                let vb = b.eval(scope, row)?;
                Ok(kleene_and(truth(&va)?, truth(&vb)?))
            }
            Expr::Or(a, b) => {
                let va = a.eval(scope, row)?;
                let vb = b.eval(scope, row)?;
                Ok(kleene_or(truth(&va)?, truth(&vb)?))
            }
            Expr::Not(e) => Ok(match truth(&e.eval(scope, row)?)? {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            }),
            Expr::IsNull(e) => Ok(Value::Bool(e.eval(scope, row)?.is_null())),
            Expr::Add(a, b) => arith(scope, row, a, b, "+", Value::add),
            Expr::Sub(a, b) => arith(scope, row, a, b, "-", Value::sub),
            Expr::Mul(a, b) => arith(scope, row, a, b, "*", Value::mul),
            Expr::Call(f, arg) => {
                let v = arg.eval(scope, row)?;
                eval_func(*f, v)
            }
            Expr::Param(i) => Err(Error::Eval(format!("unbound parameter ?{}", i + 1))),
        }
    }

    /// Evaluates as a predicate: `true` only when the expression is
    /// definitely true (SQL WHERE semantics).
    pub fn matches(&self, scope: &Scope, row: &Row) -> Result<bool> {
        Ok(truth(&self.eval(scope, row)?)? == Some(true))
    }

    /// Collects every column reference.
    pub fn columns(&self, out: &mut Vec<ColRef>) {
        match self {
            Expr::Col(c) => out.push(c.clone()),
            Expr::Lit(_) | Expr::Param(_) => {}
            Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b) => {
                a.columns(out);
                b.columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) | Expr::Call(_, e) => e.columns(out),
        }
    }

    /// Rewrites every column reference through `f`; `f` returning `None`
    /// leaves the reference unchanged.
    pub fn map_columns(&self, f: &impl Fn(&ColRef) -> Option<Expr>) -> Expr {
        match self {
            Expr::Col(c) => f(c).unwrap_or_else(|| Expr::Col(c.clone())),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Expr::And(a, b) => Expr::And(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Expr::Or(a, b) => Expr::Or(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Expr::Not(e) => Expr::Not(Box::new(e.map_columns(f))),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.map_columns(f))),
            Expr::Add(a, b) => Expr::Add(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Expr::Sub(a, b) => Expr::Sub(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Expr::Mul(a, b) => Expr::Mul(Box::new(a.map_columns(f)), Box::new(b.map_columns(f))),
            Expr::Call(func, e) => Expr::Call(*func, Box::new(e.map_columns(f))),
            Expr::Param(i) => Expr::Param(*i),
        }
    }

    /// Substitutes every [`Expr::Param`] with the corresponding literal from
    /// `params`. Errors when a placeholder index is out of range.
    pub fn bind_params(&self, params: &[Value]) -> Result<Expr> {
        Ok(match self {
            Expr::Param(i) => {
                let v = params.get(*i as usize).ok_or_else(|| {
                    Error::Eval(format!(
                        "parameter ?{} out of range ({} bound)",
                        i + 1,
                        params.len()
                    ))
                })?;
                Expr::Lit(v.clone())
            }
            Expr::Col(c) => Expr::Col(c.clone()),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.bind_params(params)?),
                Box::new(b.bind_params(params)?),
            ),
            Expr::And(a, b) => Expr::And(
                Box::new(a.bind_params(params)?),
                Box::new(b.bind_params(params)?),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.bind_params(params)?),
                Box::new(b.bind_params(params)?),
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.bind_params(params)?)),
            Expr::IsNull(e) => Expr::IsNull(Box::new(e.bind_params(params)?)),
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.bind_params(params)?),
                Box::new(b.bind_params(params)?),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(a.bind_params(params)?),
                Box::new(b.bind_params(params)?),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(a.bind_params(params)?),
                Box::new(b.bind_params(params)?),
            ),
            Expr::Call(func, e) => Expr::Call(*func, Box::new(e.bind_params(params)?)),
        })
    }
}

fn arith(
    scope: &Scope,
    row: &Row,
    a: &Expr,
    b: &Expr,
    op: &str,
    f: fn(&Value, &Value) -> Option<Value>,
) -> Result<Value> {
    let (va, vb) = (a.eval(scope, row)?, b.eval(scope, row)?);
    f(&va, &vb).ok_or_else(|| Error::Eval(format!("cannot compute {va} {op} {vb}")))
}

fn eval_func(f: Func, v: Value) -> Result<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    match f {
        Func::ExtractDay => {
            let days = match v {
                Value::Date(d) => d as i64,
                Value::Timestamp(us) => us.div_euclid(86_400_000_000),
                other => return Err(Error::Eval(format!("EXTRACT(DAY) from non-date {other}"))),
            };
            Ok(Value::Int(day_of_month(days)))
        }
        Func::Abs => match v {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Decimal(d) => Ok(Value::Decimal(d.abs())),
            Value::Float(x) => Ok(Value::Float(x.abs())),
            other => Err(Error::Eval(format!("ABS of non-numeric {other}"))),
        },
        Func::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Decimal(d) => Ok(Value::Decimal(-d)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(Error::Eval(format!("negation of non-numeric {other}"))),
        },
    }
}

/// Day of month (1-based) for a day count since 1970-01-01, proleptic
/// Gregorian calendar (civil-from-days algorithm).
fn day_of_month(days_since_epoch: i64) -> i64 {
    let z = days_since_epoch + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    doy - (153 * mp + 2) / 5 + 1
}

fn truth(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(Error::Eval(format!("expected boolean, got {other}"))),
    }
}

fn kleene_and(a: Option<bool>, b: Option<bool>) -> Value {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn kleene_or(a: Option<bool>, b: Option<bool>) -> Value {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Call(Func::ExtractDay, e) => write!(f, "EXTRACT(DAY FROM {e})"),
            Expr::Call(Func::Abs, e) => write!(f, "ABS({e})"),
            Expr::Call(Func::Neg, e) => write!(f, "(-{e})"),
            Expr::Param(_) => f.write_str("?"),
        }
    }
}

/// Maps qualified/bare column references to positions in a row.
///
/// Scopes are built by the engine: a single-table scan's scope is the
/// table's columns under its alias; a join's scope is the concatenation of
/// both sides' scopes.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    entries: Vec<(Option<String>, String)>,
}

impl Scope {
    /// Empty scope.
    pub fn new() -> Self {
        Scope::default()
    }

    /// Scope over one table's columns.
    pub fn table(alias: impl Into<String>, columns: &[String]) -> Self {
        let alias = alias.into();
        Scope {
            entries: columns
                .iter()
                .map(|c| (Some(alias.clone()), c.clone()))
                .collect(),
        }
    }

    /// Appends another scope (join).
    pub fn concat(&self, other: &Scope) -> Scope {
        let mut entries = self.entries.clone();
        entries.extend(other.entries.iter().cloned());
        Scope { entries }
    }

    /// Adds one column.
    pub fn push(&mut self, table: Option<String>, column: impl Into<String>) {
        self.entries.push((table, column.into()));
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolves a reference to a position. Bare references must match
    /// exactly one column across the scope.
    pub fn resolve(&self, c: &ColRef) -> Result<usize> {
        match &c.table {
            Some(alias) => self
                .entries
                .iter()
                .position(|(t, col)| t.as_deref() == Some(alias) && col == &c.column)
                .ok_or_else(|| Error::ColumnNotFound(c.to_string())),
            None => {
                let mut found = None;
                for (i, (_, col)) in self.entries.iter().enumerate() {
                    if col == &c.column {
                        if found.is_some() {
                            return Err(Error::Eval(format!("ambiguous column {}", c.column)));
                        }
                        found = Some(i);
                    }
                }
                found.ok_or_else(|| Error::ColumnNotFound(c.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullfrog_common::row;

    fn scope() -> Scope {
        Scope::table(
            "f",
            &[
                "flightid".into(),
                "flightdate".into(),
                "passenger_count".into(),
            ],
        )
    }

    #[test]
    fn column_resolution_qualified_and_bare() {
        let s = scope();
        let r = row!["AA101", 9, 120];
        assert_eq!(
            Expr::col("f", "flightid").eval(&s, &r).unwrap(),
            Value::text("AA101")
        );
        assert_eq!(
            Expr::column("passenger_count").eval(&s, &r).unwrap(),
            Value::Int(120)
        );
        assert!(Expr::col("g", "flightid").eval(&s, &r).is_err());
        assert!(Expr::column("nope").eval(&s, &r).is_err());
    }

    #[test]
    fn ambiguous_bare_reference_rejected() {
        let joined = scope().concat(&Scope::table("fi", &["flightid".into()]));
        let r = row!["AA101", 9, 120, "AA101"];
        assert!(Expr::column("flightid").eval(&joined, &r).is_err());
        assert_eq!(
            Expr::col("fi", "flightid").eval(&joined, &r).unwrap(),
            Value::text("AA101")
        );
    }

    #[test]
    fn comparisons_and_logic() {
        let s = scope();
        let r = row!["AA101", 9, 120];
        let p = Expr::col("f", "flightid")
            .eq(Expr::lit("AA101"))
            .and(Expr::column("passenger_count").gt(Expr::lit(100)));
        assert!(p.matches(&s, &r).unwrap());
        let p2 = Expr::column("passenger_count").lt(Expr::lit(100));
        assert!(!p2.matches(&s, &r).unwrap());
        assert!(p2.not().matches(&s, &r).unwrap());
    }

    #[test]
    fn null_comparisons_are_unknown() {
        let s = scope();
        let r = Row(vec![Value::text("AA101"), Value::Date(9), Value::Null]);
        let p = Expr::column("passenger_count").gt(Expr::lit(0));
        assert_eq!(p.eval(&s, &r).unwrap(), Value::Null);
        assert!(!p.matches(&s, &r).unwrap());
        // NOT unknown is still unknown → does not match.
        assert!(!p.clone().not().matches(&s, &r).unwrap());
        // IS NULL sees it.
        assert!(Expr::IsNull(Box::new(Expr::column("passenger_count")))
            .matches(&s, &r)
            .unwrap());
    }

    #[test]
    fn kleene_truth_tables() {
        let s = Scope::new();
        let r = Row(vec![]);
        let t = Expr::lit(true);
        let fa = Expr::lit(false);
        let u = Expr::null();
        // false AND unknown = false; true AND unknown = unknown.
        assert_eq!(
            fa.clone().and(u.clone()).eval(&s, &r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(t.clone().and(u.clone()).eval(&s, &r).unwrap(), Value::Null);
        // true OR unknown = true; false OR unknown = unknown.
        assert_eq!(
            t.clone().or(u.clone()).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(fa.clone().or(u.clone()).eval(&s, &r).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic() {
        let s = scope();
        let r = row!["AA101", 9, 120];
        // capacity(=180 literal) - passenger_count = 60
        let e = Expr::lit(180).sub(Expr::column("passenger_count"));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Int(60));
        let e = Expr::column("passenger_count").mul(Expr::lit(2));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Int(240));
        // Overflow is an error, not a wrap.
        let e = Expr::lit(i64::MAX).add(Expr::lit(1));
        assert!(e.eval(&s, &r).is_err());
    }

    #[test]
    fn extract_day_matches_civil_calendar() {
        // 1970-01-01 is day 0 → day-of-month 1.
        assert_eq!(day_of_month(0), 1);
        // 1970-01-31.
        assert_eq!(day_of_month(30), 31);
        // 1970-02-01.
        assert_eq!(day_of_month(31), 1);
        // 2000-02-29 (leap): days = 11016.
        assert_eq!(day_of_month(11016), 29);
        // 1969-12-31 (negative days).
        assert_eq!(day_of_month(-1), 31);
        // Via the Expr API on Date and Timestamp.
        let s = Scope::new();
        let r = Row(vec![]);
        let e = Expr::Call(Func::ExtractDay, Box::new(Expr::Lit(Value::Date(8))));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Int(9));
        let us_day8 = 8 * 86_400_000_000i64 + 3_600_000_000;
        let e = Expr::Call(
            Func::ExtractDay,
            Box::new(Expr::Lit(Value::Timestamp(us_day8))),
        );
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Int(9));
    }

    #[test]
    fn functions_propagate_null() {
        let s = Scope::new();
        let r = Row(vec![]);
        for f in [Func::ExtractDay, Func::Abs, Func::Neg] {
            let e = Expr::Call(f, Box::new(Expr::null()));
            assert_eq!(e.eval(&s, &r).unwrap(), Value::Null);
        }
    }

    #[test]
    fn columns_collects_all_refs() {
        let p = Expr::col("f", "a")
            .eq(Expr::col("g", "b"))
            .and(Expr::column("c").gt(Expr::lit(1)));
        let mut cols = Vec::new();
        p.columns(&mut cols);
        assert_eq!(
            cols,
            vec![
                ColRef::new("f", "a"),
                ColRef::new("g", "b"),
                ColRef::bare("c")
            ]
        );
    }

    #[test]
    fn map_columns_substitutes() {
        let p = Expr::column("fid").eq(Expr::lit("AA101"));
        let mapped =
            p.map_columns(&|c| (c.column == "fid").then(|| Expr::col("flights", "flightid")));
        assert_eq!(
            mapped,
            Expr::col("flights", "flightid").eq(Expr::lit("AA101"))
        );
    }

    #[test]
    fn display_round_readable() {
        let p = Expr::col("f", "flightid").eq(Expr::lit("AA101"));
        assert_eq!(p.to_string(), "(f.flightid = 'AA101')");
        let e = Expr::Call(Func::ExtractDay, Box::new(Expr::column("flightdate")));
        assert_eq!(e.to_string(), "EXTRACT(DAY FROM flightdate)");
    }
}
