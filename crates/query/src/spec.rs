//! Select specifications — the structured form of migration queries.
//!
//! A [`SelectSpec`] is the equivalent of the paper's migration DDL body
//! (`SELECT ... FROM inputs WHERE joins/filters [GROUP BY keys]`): inputs
//! with aliases, equi-join conditions, an optional residual filter,
//! and output columns that are either scalar expressions or aggregates.
//! When any aggregate output is present the scalar outputs form the GROUP
//! BY key, mirroring SQL.

use crate::expr::{AggFunc, ColRef, Expr};

/// A FROM-list entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name in the catalog.
    pub table: String,
    /// Alias used by column references in this spec.
    pub alias: String,
}

/// One output column of a select spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputColumn {
    /// `expr AS name`.
    Scalar {
        /// Output column name.
        name: String,
        /// Defining expression over the input aliases.
        expr: Expr,
    },
    /// `AGG(arg) AS name`.
    Agg {
        /// Output column name.
        name: String,
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated expression (use `Expr::lit(1)` for `COUNT(*)`).
        arg: Expr,
    },
}

impl OutputColumn {
    /// The output column name.
    pub fn name(&self) -> &str {
        match self {
            OutputColumn::Scalar { name, .. } | OutputColumn::Agg { name, .. } => name,
        }
    }
}

/// A select-project-join-aggregate specification.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SelectSpec {
    /// FROM list.
    pub inputs: Vec<TableRef>,
    /// Equi-join conditions between input columns (inner joins).
    pub join_conds: Vec<(ColRef, ColRef)>,
    /// Residual filter over the input aliases.
    pub filter: Option<Expr>,
    /// Output columns.
    pub columns: Vec<OutputColumn>,
}

impl SelectSpec {
    /// Empty spec; populate with the builder methods.
    pub fn new() -> Self {
        SelectSpec::default()
    }

    /// Adds a FROM entry (builder).
    pub fn from_table(mut self, table: impl Into<String>, alias: impl Into<String>) -> Self {
        self.inputs.push(TableRef {
            table: table.into(),
            alias: alias.into(),
        });
        self
    }

    /// Adds an equi-join condition (builder).
    pub fn join_on(mut self, left: ColRef, right: ColRef) -> Self {
        self.join_conds.push((left, right));
        self
    }

    /// ANDs `pred` into the residual filter (builder).
    pub fn filter(mut self, pred: Expr) -> Self {
        self.filter = Some(match self.filter.take() {
            Some(f) => f.and(pred),
            None => pred,
        });
        self
    }

    /// Adds a scalar output column (builder).
    pub fn select(mut self, name: impl Into<String>, expr: Expr) -> Self {
        self.columns.push(OutputColumn::Scalar {
            name: name.into(),
            expr,
        });
        self
    }

    /// Adds an aggregate output column (builder).
    pub fn select_agg(mut self, name: impl Into<String>, func: AggFunc, arg: Expr) -> Self {
        self.columns.push(OutputColumn::Agg {
            name: name.into(),
            func,
            arg,
        });
        self
    }

    /// True when any output column aggregates (the spec is then a GROUP BY
    /// over the scalar outputs).
    pub fn is_aggregate(&self) -> bool {
        self.columns
            .iter()
            .any(|c| matches!(c, OutputColumn::Agg { .. }))
    }

    /// The GROUP BY key expressions (scalar outputs of an aggregate spec).
    pub fn group_key_exprs(&self) -> Vec<&Expr> {
        self.columns
            .iter()
            .filter_map(|c| match c {
                OutputColumn::Scalar { expr, .. } => Some(expr),
                OutputColumn::Agg { .. } => None,
            })
            .collect()
    }

    /// Output column names in order.
    pub fn output_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name().to_owned()).collect()
    }

    /// The defining expression of a scalar output column.
    pub fn projection_of(&self, out_name: &str) -> Option<&Expr> {
        self.columns.iter().find_map(|c| match c {
            OutputColumn::Scalar { name, expr } if name == out_name => Some(expr),
            _ => None,
        })
    }

    /// The alias of the single input table, when there is exactly one.
    pub fn single_input(&self) -> Option<&TableRef> {
        match self.inputs.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// Looks up an input by alias.
    pub fn input(&self, alias: &str) -> Option<&TableRef> {
        self.inputs.iter().find(|t| t.alias == alias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    /// The paper's §2.1 FLEWONINFO migration query.
    fn flewoninfo_spec() -> SelectSpec {
        SelectSpec::new()
            .from_table("flights", "f")
            .from_table("flewon", "fi")
            .join_on(ColRef::new("f", "flightid"), ColRef::new("fi", "flightid"))
            .select("fid", Expr::col("f", "flightid"))
            .select("flightdate", Expr::col("fi", "flightdate"))
            .select("passenger_count", Expr::col("fi", "passenger_count"))
            .select(
                "empty_seats",
                Expr::col("f", "capacity").sub(Expr::col("fi", "passenger_count")),
            )
            .select("expected_departure_time", Expr::col("f", "departure_time"))
            .select("actual_departure_time", Expr::null())
    }

    #[test]
    fn builder_accumulates() {
        let s = flewoninfo_spec();
        assert_eq!(s.inputs.len(), 2);
        assert_eq!(s.join_conds.len(), 1);
        assert_eq!(s.columns.len(), 6);
        assert!(!s.is_aggregate());
        assert!(s.single_input().is_none());
        assert_eq!(s.input("fi").unwrap().table, "flewon");
    }

    #[test]
    fn projection_lookup() {
        let s = flewoninfo_spec();
        assert_eq!(s.projection_of("fid"), Some(&Expr::col("f", "flightid")));
        assert!(s.projection_of("nope").is_none());
        assert_eq!(s.output_names()[3], "empty_seats");
    }

    #[test]
    fn aggregate_spec_group_keys() {
        let s = SelectSpec::new()
            .from_table("order_line", "ol")
            .select("w_id", Expr::col("ol", "ol_w_id"))
            .select("d_id", Expr::col("ol", "ol_d_id"))
            .select_agg("ol_total", AggFunc::Sum, Expr::col("ol", "ol_amount"));
        assert!(s.is_aggregate());
        assert_eq!(s.group_key_exprs().len(), 2);
        assert_eq!(s.single_input().unwrap().alias, "ol");
    }

    #[test]
    fn filter_builder_ands() {
        let s = SelectSpec::new()
            .from_table("t", "t")
            .filter(Expr::column("a").eq(Expr::lit(1)))
            .filter(Expr::column("b").eq(Expr::lit(2)));
        let f = s.filter.unwrap();
        assert_eq!(crate::pred::conjuncts(&f).len(), 2);
    }
}
