//! Expressions, predicates, select specifications, and view expansion.
//!
//! BullFrog's lazy migration hinges on moving filters across schemas
//! (paper §2.1): a client predicate over the *new* schema must be converted
//! into predicates over the *old* input tables that select a (small)
//! superset of the tuples the request needs. PostgreSQL does this for the
//! paper via view expansion + the optimizer; here the same capability is
//! provided by:
//!
//! - [`expr::Expr`] — an expression AST with SQL three-valued evaluation;
//! - [`spec::SelectSpec`] — the structured select-project-join-aggregate
//!   form in which migration statements are written (the equivalent of the
//!   paper's `CREATE TABLE ... AS SELECT ...` DDL);
//! - [`rewrite::transpose`] — predicate transposition: substitutes output
//!   columns with their defining input expressions, then propagates
//!   equality constants through join equivalence classes, yielding one
//!   filter per input table. Conjuncts that cannot be transposed are
//!   dropped, which keeps the result a sound *superset* filter.

pub mod expr;
pub mod pred;
pub mod rewrite;
pub mod spec;

pub use expr::{AggFunc, CmpOp, ColRef, Expr, Func, Scope};
pub use pred::{
    conjoin, conjuncts, referenced_tables, sargable_equalities, sargable_ranges, RangeBound,
};
pub use rewrite::{transpose, TransposedPredicates};
pub use spec::{OutputColumn, SelectSpec, TableRef};
