//! View expansion: transposing client predicates from the new schema onto
//! the old input tables.
//!
//! This is the reproduction of the paper's §2.1 mechanism. PostgreSQL gave
//! the authors predicate movement for free (expand the migration view,
//! optimize, read the per-table filters off the plan). Here the migration
//! query is already structured (a [`SelectSpec`]), so transposition is
//! direct:
//!
//! 1. **Substitute** — every reference to an output column inside a client
//!    conjunct is replaced by the column's defining expression over the
//!    input aliases. Conjuncts referencing aggregate outputs (or unknown
//!    columns) cannot be transposed and are dropped.
//! 2. **Attach** — a substituted conjunct whose columns all come from one
//!    input alias becomes a filter on that table. Multi-table conjuncts are
//!    dropped (they would need the join to evaluate).
//! 3. **Propagate** — `column = literal` conjuncts are copied to every
//!    input column in the same join-equivalence class, which is what turns
//!    `FID = 'AA101'` into filters on *both* `flights` and `flewon`.
//!
//! Dropping a conjunct only ever *widens* the set of tuples migrated, so
//! the result is always sound (a superset filter); `dropped` reports what
//! was lost so callers can log or test it.

use std::collections::BTreeMap;

use bullfrog_common::Value;

use crate::expr::{CmpOp, ColRef, Expr};
use crate::pred::{conjoin, conjuncts};
use crate::spec::SelectSpec;

/// Result of predicate transposition: one optional filter per input alias.
#[derive(Debug, Clone, Default)]
pub struct TransposedPredicates {
    /// Input alias → filter over that table's columns (alias-qualified).
    /// Absent aliases have no filter (full scan).
    pub per_table: BTreeMap<String, Expr>,
    /// Client conjuncts that could not be transposed (the migration scope
    /// is widened to a superset accordingly).
    pub dropped: Vec<Expr>,
}

impl TransposedPredicates {
    /// The filter for `alias`, if any conjunct attached to it.
    pub fn filter_for(&self, alias: &str) -> Option<&Expr> {
        self.per_table.get(alias)
    }

    /// True when no conjunct was transposed anywhere — every potentially
    /// relevant tuple of every input must be migrated.
    pub fn is_unfiltered(&self) -> bool {
        self.per_table.is_empty()
    }
}

/// Transposes `client_pred` (over the spec's output columns) into
/// per-input-table predicates. `None` means "no predicate" (e.g. a full
/// table scan or a background migration slice) and yields no filters.
pub fn transpose(spec: &SelectSpec, client_pred: Option<&Expr>) -> TransposedPredicates {
    let mut out = TransposedPredicates::default();
    let Some(pred) = client_pred else {
        return out;
    };

    let classes = EquivClasses::from_spec(spec);
    let mut per_table: BTreeMap<String, Vec<Expr>> = BTreeMap::new();

    for conjunct in conjuncts(pred) {
        // 1. Substitute output columns with their defining expressions.
        let Some(substituted) = substitute(spec, &conjunct) else {
            out.dropped.push(conjunct);
            continue;
        };

        // 3. Propagate equality constants through join equivalence classes
        //    (do this before the single-table check so a constant on a join
        //    column reaches every joined table, as in the paper's example).
        let mut attached = false;
        if let Some((col, lit)) = as_col_eq_lit(&substituted) {
            for eq_col in classes.equivalents(&col) {
                let alias = eq_col.table.clone().unwrap_or_default();
                per_table
                    .entry(alias)
                    .or_default()
                    .push(Expr::Col(eq_col.clone()).eq(Expr::Lit(lit.clone())));
                attached = true;
            }
            if attached {
                continue;
            }
        }

        // 2. Attach single-table conjuncts.
        let mut cols = Vec::new();
        substituted.columns(&mut cols);
        let mut aliases: Vec<String> = cols
            .iter()
            .map(|c| c.table.clone().unwrap_or_default())
            .collect();
        aliases.sort();
        aliases.dedup();
        match aliases.as_slice() {
            [one] => {
                per_table.entry(one.clone()).or_default().push(substituted);
            }
            [] => {
                // Constant conjunct (e.g. TRUE): filters nothing; drop it
                // silently — correctness is unaffected.
            }
            _ => out.dropped.push(conjunct),
        }
    }

    out.per_table = per_table
        .into_iter()
        .filter_map(|(alias, parts)| conjoin(parts).map(|e| (alias, e)))
        .collect();
    out
}

/// Replaces references to output columns with their defining input
/// expressions; `None` when any referenced column has no scalar projection
/// (aggregate output or unknown name).
fn substitute(spec: &SelectSpec, conjunct: &Expr) -> Option<Expr> {
    let mut cols = Vec::new();
    conjunct.columns(&mut cols);
    for c in &cols {
        spec.projection_of(&c.column)?;
    }
    Some(conjunct.map_columns(&|c: &ColRef| spec.projection_of(&c.column).cloned()))
}

/// Matches `col = literal` / `literal = col`.
fn as_col_eq_lit(e: &Expr) -> Option<(ColRef, Value)> {
    if let Expr::Cmp(CmpOp::Eq, a, b) = e {
        match (a.as_ref(), b.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(c)) => {
                return Some((c.clone(), v.clone()));
            }
            _ => {}
        }
    }
    None
}

/// Union-find over input columns connected by equi-join conditions.
struct EquivClasses {
    members: Vec<ColRef>,
    parent: Vec<usize>,
}

impl EquivClasses {
    fn from_spec(spec: &SelectSpec) -> Self {
        let mut ec = EquivClasses {
            members: Vec::new(),
            parent: Vec::new(),
        };
        for (a, b) in &spec.join_conds {
            let ia = ec.intern(a);
            let ib = ec.intern(b);
            ec.union(ia, ib);
        }
        ec
    }

    fn intern(&mut self, c: &ColRef) -> usize {
        if let Some(i) = self.members.iter().position(|m| m == c) {
            return i;
        }
        self.members.push(c.clone());
        self.parent.push(self.members.len() - 1);
        self.members.len() - 1
    }

    fn find(&self, mut i: usize) -> usize {
        while self.parent[i] != i {
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Every column equivalent to `c`, including `c` itself. Columns not
    /// mentioned in any join condition are their own singleton class.
    fn equivalents(&self, c: &ColRef) -> Vec<ColRef> {
        match self.members.iter().position(|m| m == c) {
            None => vec![c.clone()],
            Some(i) => {
                let root = self.find(i);
                self.members
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| self.find(*j) == root)
                    .map(|(_, m)| m.clone())
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Func;

    /// The paper's §2.1 FLEWONINFO migration spec.
    fn flewoninfo() -> SelectSpec {
        SelectSpec::new()
            .from_table("flights", "f")
            .from_table("flewon", "fi")
            .join_on(ColRef::new("f", "flightid"), ColRef::new("fi", "flightid"))
            .select("fid", Expr::col("f", "flightid"))
            .select("flightdate", Expr::col("fi", "flightdate"))
            .select("passenger_count", Expr::col("fi", "passenger_count"))
            .select(
                "empty_seats",
                Expr::col("f", "capacity").sub(Expr::col("fi", "passenger_count")),
            )
    }

    /// Reproduces the paper's running example: `FID = 'AA101' AND
    /// EXTRACT(DAY FROM FLIGHTDATE) = 9` lands on both tables / flewon.
    #[test]
    fn paper_example_transposes_to_both_tables() {
        let spec = flewoninfo();
        let pred = Expr::column("fid").eq(Expr::lit("AA101")).and(
            Expr::Call(Func::ExtractDay, Box::new(Expr::column("flightdate"))).eq(Expr::lit(9)),
        );
        let t = transpose(&spec, Some(&pred));
        assert!(t.dropped.is_empty());
        let f = t.filter_for("f").unwrap().to_string();
        assert_eq!(f, "(f.flightid = 'AA101')");
        let fi = t.filter_for("fi").unwrap().to_string();
        assert!(
            fi.contains("(fi.flightid = 'AA101')")
                && fi.contains("EXTRACT(DAY FROM fi.flightdate)"),
            "{fi}"
        );
    }

    #[test]
    fn no_predicate_means_no_filters() {
        let t = transpose(&flewoninfo(), None);
        assert!(t.is_unfiltered());
        assert!(t.dropped.is_empty());
    }

    #[test]
    fn derived_column_predicate_stays_single_table_or_drops() {
        let spec = flewoninfo();
        // empty_seats = capacity - passenger_count references BOTH tables
        // after substitution → dropped.
        let pred = Expr::column("empty_seats").gt(Expr::lit(0));
        let t = transpose(&spec, Some(&pred));
        assert_eq!(t.dropped.len(), 1);
        assert!(t.is_unfiltered());
    }

    #[test]
    fn unknown_or_aggregate_columns_drop() {
        let spec = SelectSpec::new()
            .from_table("order_line", "ol")
            .select("o_id", Expr::col("ol", "ol_o_id"))
            .select_agg(
                "ol_total",
                crate::expr::AggFunc::Sum,
                Expr::col("ol", "ol_amount"),
            );
        // Aggregate output: not transposable.
        let pred = Expr::column("ol_total").gt(Expr::lit(100));
        let t = transpose(&spec, Some(&pred));
        assert_eq!(t.dropped.len(), 1);
        // Group-key output: transposable.
        let pred = Expr::column("o_id").eq(Expr::lit(7));
        let t = transpose(&spec, Some(&pred));
        assert_eq!(t.filter_for("ol").unwrap().to_string(), "(ol.ol_o_id = 7)");
    }

    #[test]
    fn non_equality_predicates_do_not_propagate_across_join() {
        let spec = flewoninfo();
        // A range on the join column applies only to the table whose
        // projection defines it.
        let pred = Expr::column("fid").gt(Expr::lit("AA"));
        let t = transpose(&spec, Some(&pred));
        assert!(t.filter_for("f").is_some());
        assert!(t.filter_for("fi").is_none());
    }

    #[test]
    fn literal_on_either_side_propagates() {
        let spec = flewoninfo();
        let pred = Expr::lit("AA101").eq(Expr::column("fid"));
        let t = transpose(&spec, Some(&pred));
        assert!(t.filter_for("f").is_some());
        assert!(t.filter_for("fi").is_some());
    }

    #[test]
    fn constant_conjuncts_are_harmless() {
        let spec = flewoninfo();
        let pred = Expr::lit(true).and(Expr::column("fid").eq(Expr::lit("AA101")));
        let t = transpose(&spec, Some(&pred));
        assert!(t.dropped.is_empty());
        assert_eq!(t.per_table.len(), 2);
    }

    #[test]
    fn transitive_join_equivalence() {
        // a.x = b.y AND b.y = c.z → constant on x reaches all three.
        let spec = SelectSpec::new()
            .from_table("a", "a")
            .from_table("b", "b")
            .from_table("c", "c")
            .join_on(ColRef::new("a", "x"), ColRef::new("b", "y"))
            .join_on(ColRef::new("b", "y"), ColRef::new("c", "z"))
            .select("x", Expr::col("a", "x"));
        let pred = Expr::column("x").eq(Expr::lit(5));
        let t = transpose(&spec, Some(&pred));
        assert_eq!(t.per_table.len(), 3);
        assert_eq!(t.filter_for("c").unwrap().to_string(), "(c.z = 5)");
    }

    #[test]
    fn multiple_conjuncts_per_table_conjoin() {
        let spec = flewoninfo();
        let pred = Expr::column("flightdate")
            .ge(Expr::lit(Value::Date(1)))
            .and(Expr::column("flightdate").le(Expr::lit(Value::Date(31))))
            .and(Expr::column("passenger_count").gt(Expr::lit(0)));
        let t = transpose(&spec, Some(&pred));
        let fi = t.filter_for("fi").unwrap();
        assert_eq!(conjuncts(fi).len(), 3);
        assert!(t.filter_for("f").is_none());
    }
}
