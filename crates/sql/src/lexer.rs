//! Tokenizer for the BullFrog SQL dialect.

use bullfrog_common::{Error, Result};

/// A token with its upper-cased text (identifiers keep their original
/// form in `raw`; SQL keywords and identifiers are matched
/// case-insensitively).
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (normalized lower-case).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (unescaped).
    Str(String),
    /// Punctuation / operator: `( ) , . * + - = < > <= >= <>`.
    Sym(&'static str),
}

impl Token {
    /// The token as a keyword (lower-case word), if it is one.
    pub fn word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }
}

/// Tokenizes `input`; errors carry the offending position.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | '.' | '*' | '+' | ';' => {
                out.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    ';' => ";",
                    _ => "+",
                }));
                i += 1;
            }
            '-' => {
                out.push(Token::Sym("-"));
                i += 1;
            }
            '=' => {
                out.push(Token::Sym("="));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym(">="));
                    i += 2;
                } else {
                    out.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Sym("<>"));
                i += 2;
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                let mut s = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(Error::Eval(format!(
                            "unterminated string literal at byte {i}"
                        )));
                    }
                    if bytes[j] == b'\'' {
                        // '' escapes a quote.
                        if bytes.get(j + 1) == Some(&b'\'') {
                            s.push('\'');
                            j += 2;
                            continue;
                        }
                        break;
                    }
                    s.push(bytes[j] as char);
                    j += 1;
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &input[start..i];
                    out.push(Token::Float(
                        text.parse()
                            .map_err(|_| Error::Eval(format!("bad float literal {text}")))?,
                    ));
                } else {
                    let text = &input[start..i];
                    out.push(Token::Int(text.parse().map_err(|_| {
                        Error::Eval(format!("bad integer literal {text}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Word(input[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(Error::Eval(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_lowercase_and_symbols() {
        let toks = lex("SELECT F.FlightID, 42 FROM flights WHERE x >= 3.5").unwrap();
        assert_eq!(toks[0], Token::Word("select".into()));
        assert_eq!(toks[1], Token::Word("f".into()));
        assert_eq!(toks[2], Token::Sym("."));
        assert_eq!(toks[3], Token::Word("flightid".into()));
        assert_eq!(toks[5], Token::Int(42));
        assert!(toks.contains(&Token::Sym(">=")));
        assert!(toks.contains(&Token::Float(3.5)));
    }

    #[test]
    fn strings_with_escapes() {
        let toks = lex("name = 'O''Hare'").unwrap();
        assert_eq!(toks[2], Token::Str("O'Hare".into()));
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("a -- comment here\n = 1").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn neq_variants() {
        assert_eq!(lex("a <> b").unwrap()[1], Token::Sym("<>"));
        assert_eq!(lex("a != b").unwrap()[1], Token::Sym("<>"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(lex("a = 'unterminated").is_err());
        assert!(lex("a ? b").is_err());
    }
}
