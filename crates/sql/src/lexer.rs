//! Tokenizer for the BullFrog SQL dialect.
//!
//! The lexer walks characters (not bytes), so multi-byte UTF-8 input —
//! accented identifiers, emoji inside string literals — either tokenizes
//! correctly or produces a clean [`Error::Eval`]; it never panics and
//! never slices the input off a character boundary. Oversized numeric
//! literals are rejected by the overflow-checked parses, and a total
//! input-size cap bounds what a hostile network client can make the
//! server tokenize.

use bullfrog_common::{Error, Result};

/// Hard cap on statement text size (network sessions feed untrusted
/// input straight into `lex`).
pub const MAX_SQL_BYTES: usize = 1 << 20;

/// A token with its upper-cased text (identifiers keep their original
/// form in `raw`; SQL keywords and identifiers are matched
/// case-insensitively).
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (normalized lower-case).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (unescaped).
    Str(String),
    /// Punctuation / operator: `( ) , . * + - = < > <= >= <> ?`.
    Sym(&'static str),
}

impl Token {
    /// The token as a keyword (lower-case word), if it is one.
    pub fn word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }
}

/// Tokenizes `input`; errors carry the offending byte position.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    if input.len() > MAX_SQL_BYTES {
        return Err(Error::Eval(format!(
            "statement text too large ({} bytes, max {MAX_SQL_BYTES})",
            input.len()
        )));
    }
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < chars.len() {
        let (pos, c) = chars[i];
        let next = chars.get(i + 1).map(|&(_, c)| c);
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if next == Some('-') => {
                // Line comment.
                while i < chars.len() && chars[i].1 != '\n' {
                    i += 1;
                }
            }
            '(' | ')' | ',' | '.' | '*' | '+' | ';' | '-' | '=' | '?' => {
                out.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    '*' => "*",
                    ';' => ";",
                    '-' => "-",
                    '=' => "=",
                    '?' => "?",
                    _ => "+",
                }));
                i += 1;
            }
            '<' => {
                if next == Some('=') {
                    out.push(Token::Sym("<="));
                    i += 2;
                } else if next == Some('>') {
                    out.push(Token::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if next == Some('=') {
                    out.push(Token::Sym(">="));
                    i += 2;
                } else {
                    out.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '!' if next == Some('=') => {
                out.push(Token::Sym("<>"));
                i += 2;
            }
            '\'' => {
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    match chars.get(j) {
                        None => {
                            return Err(Error::Eval(format!(
                                "unterminated string literal at byte {pos}"
                            )))
                        }
                        Some(&(_, '\'')) => {
                            // '' escapes a quote.
                            if chars.get(j + 1).map(|&(_, c)| c) == Some('\'') {
                                s.push('\'');
                                j += 2;
                                continue;
                            }
                            break;
                        }
                        Some(&(_, c)) => {
                            s.push(c);
                            j += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
                i = j + 1;
            }
            '0'..='9' => {
                let mut text = String::new();
                while i < chars.len() && chars[i].1.is_ascii_digit() {
                    text.push(chars[i].1);
                    i += 1;
                }
                let is_float = chars.get(i).map(|&(_, c)| c) == Some('.')
                    && chars.get(i + 1).is_some_and(|&(_, c)| c.is_ascii_digit());
                if is_float {
                    text.push('.');
                    i += 1;
                    while i < chars.len() && chars[i].1.is_ascii_digit() {
                        text.push(chars[i].1);
                        i += 1;
                    }
                    out.push(Token::Float(
                        text.parse()
                            .map_err(|_| Error::Eval(format!("bad float literal {text}")))?,
                    ));
                } else {
                    // Overflow-checked: oversized literals are a clean error.
                    out.push(Token::Int(text.parse().map_err(|_| {
                        Error::Eval(format!("integer literal {text} out of range"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while i < chars.len() && (chars[i].1.is_alphanumeric() || chars[i].1 == '_') {
                    word.extend(chars[i].1.to_lowercase());
                    i += 1;
                }
                out.push(Token::Word(word));
            }
            other => {
                return Err(Error::Eval(format!(
                    "unexpected character {other:?} at byte {pos}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_lowercase_and_symbols() {
        let toks = lex("SELECT F.FlightID, 42 FROM flights WHERE x >= 3.5").unwrap();
        assert_eq!(toks[0], Token::Word("select".into()));
        assert_eq!(toks[1], Token::Word("f".into()));
        assert_eq!(toks[2], Token::Sym("."));
        assert_eq!(toks[3], Token::Word("flightid".into()));
        assert_eq!(toks[5], Token::Int(42));
        assert!(toks.contains(&Token::Sym(">=")));
        assert!(toks.contains(&Token::Float(3.5)));
    }

    #[test]
    fn strings_with_escapes() {
        let toks = lex("name = 'O''Hare'").unwrap();
        assert_eq!(toks[2], Token::Str("O'Hare".into()));
    }

    #[test]
    fn comments_skipped() {
        let toks = lex("a -- comment here\n = 1").unwrap();
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn neq_variants() {
        assert_eq!(lex("a <> b").unwrap()[1], Token::Sym("<>"));
        assert_eq!(lex("a != b").unwrap()[1], Token::Sym("<>"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(lex("a = 'unterminated").is_err());
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn question_mark_is_a_symbol() {
        assert_eq!(lex("a = ?").unwrap()[2], Token::Sym("?"));
    }

    #[test]
    fn multibyte_identifiers_and_strings() {
        let toks = lex("SÉLÉCTION = 'naïve ✈ café'").unwrap();
        assert_eq!(toks[0], Token::Word("séléction".into()));
        assert_eq!(toks[2], Token::Str("naïve ✈ café".into()));
    }

    #[test]
    fn multibyte_unterminated_string_is_error_not_panic() {
        assert!(lex("x = 'héllo").is_err());
        assert!(lex("'✈").is_err());
    }

    #[test]
    fn oversized_int_literal_rejected() {
        assert!(lex("99999999999999999999999999").is_err());
        assert_eq!(lex("9223372036854775807").unwrap()[0], Token::Int(i64::MAX));
    }

    #[test]
    fn input_size_cap() {
        let big = "a ".repeat(MAX_SQL_BYTES / 2 + 1);
        assert!(lex(&big).is_err());
    }
}
