//! Statement-level entry point: the full command surface a network
//! session accepts.
//!
//! [`parse_statement`] turns one statement of text into a [`Statement`] —
//! the union of everything a remote client may submit: reads
//! (`SELECT`), writes (`INSERT`/`UPDATE`/`DELETE`), transaction control
//! (`BEGIN`/`COMMIT`/`ROLLBACK`), plain DDL (`CREATE TABLE`), migration
//! DDL (`CREATE TABLE ... AS SELECT ...`, optionally followed by
//! `PRIMARY KEY (...)` re-declaring the new table's key, as the paper's
//! DDL does), and the BullFrog maintenance verbs `CHECKPOINT` and
//! `FINALIZE MIGRATION [DROP OLD]`.
//!
//! Parsing is catalog-independent: migration DDL carries its defining
//! [`SelectSpec`] unresolved, and the executor (the server session)
//! performs schema inference against its own catalog. `INSERT` values
//! are constant-folded at parse time — they may be arithmetic over
//! literals, but any column reference is a parse error.

use bullfrog_common::{Error, Result, Row, TableSchema, Value};
use bullfrog_query::{Expr, Scope, SelectSpec};

use crate::parser::Parser;

/// One parsed client statement.
#[derive(Debug, Clone)]
pub enum Statement {
    /// `SELECT ...` — a read (possibly joining/aggregating).
    Select(SelectSpec),
    /// `INSERT INTO t [(cols)] VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list (empty = schema order).
        columns: Vec<String>,
        /// Constant-folded value tuples.
        rows: Vec<Row>,
    },
    /// `INSERT INTO t [(cols)] VALUES (...)` inside a prepared template
    /// whose value expressions contain `?` placeholders: folding is
    /// deferred to [`PreparedTemplate::bind`], which turns this back into
    /// [`Statement::Insert`]. Never produced by [`parse_statement`].
    InsertExprs {
        /// Target table.
        table: String,
        /// Explicit column list (empty = schema order).
        columns: Vec<String>,
        /// Unfolded value tuples (literals, arithmetic, placeholders).
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE t SET col = expr, ... [WHERE pred]`; set expressions may
    /// reference the row's own columns (`balance = balance + 1`).
    Update {
        /// Target table.
        table: String,
        /// `(column, new value expression)` pairs.
        sets: Vec<(String, Expr)>,
        /// Row filter (`None` = all rows).
        predicate: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE pred]`.
    Delete {
        /// Target table.
        table: String,
        /// Row filter (`None` = all rows).
        predicate: Option<Expr>,
    },
    /// `CREATE TABLE t (col type ..., constraints...)`.
    CreateTable(TableSchema),
    /// Migration DDL: `CREATE TABLE t AS (SELECT ...) [PRIMARY KEY (...)]`.
    CreateTableAs {
        /// New table name.
        name: String,
        /// Defining query over the old schema (unresolved).
        select: SelectSpec,
        /// Re-declared primary key of the new table (may be empty).
        primary_key: Vec<String>,
    },
    /// `BEGIN` — open an explicit transaction.
    Begin,
    /// `COMMIT` — commit the session's open transaction.
    Commit,
    /// `COMMIT NOWAIT` — commit asynchronously: the server acknowledges
    /// at WAL-enqueue time instead of waiting for the group-commit fsync.
    CommitNowait,
    /// `ROLLBACK` (or `ABORT`) — abort the session's open transaction.
    Rollback,
    /// `CHECKPOINT` — run one checkpoint cycle.
    Checkpoint,
    /// `FINALIZE MIGRATION [DROP OLD]` — clear a completed migration.
    FinalizeMigration {
        /// Also drop the old input tables.
        drop_old: bool,
    },
    /// `SET COMMIT_MODE NOWAIT(n) | SYNC` — switch the session's commit
    /// acknowledgement mode: `NOWAIT(n)` makes every commit asynchronous
    /// with at most `n` un-durable commits outstanding (the session blocks
    /// on the oldest when the window fills); `SYNC` drains the window and
    /// restores synchronous commits.
    SetCommitMode {
        /// `Some(max_unacked)` for `NOWAIT(n)`, `None` for `SYNC`.
        max_unacked: Option<u64>,
    },
    /// `SET SYNC_REPLICAS n` — gate every commit acknowledgement on `n`
    /// replicas confirming the commit applied (composed with the merged
    /// WAL durable horizon). `0` turns synchronous replication off.
    /// Node-global, not per-session.
    SetSyncReplicas {
        /// Replica acks required per commit.
        count: u64,
    },
    /// `SET SYNC_POLICY BLOCK | DEGRADE <ms>` — what a sync-replicated
    /// commit does when the replicas fall away: `BLOCK` waits
    /// indefinitely; `DEGRADE ms` acks on local durability after the
    /// window, provided the node still verifiably leads.
    SetSyncPolicy {
        /// `Some(window_ms)` for `DEGRADE <ms>`, `None` for `BLOCK`.
        degrade_ms: Option<u64>,
    },
}

/// Parses one statement. Never panics: malformed input, oversized
/// literals, and absurd nesting all return `Err`. `?` placeholders are
/// rejected — prepared templates go through [`parse_template`].
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = statement(&mut p)?;
    p.expect_end()?;
    Ok(stmt)
}

/// A parsed prepared-statement template: a [`Statement`] that may contain
/// `?` placeholders ([`bullfrog_query::Expr::Param`]), plus the number of
/// placeholders. [`PreparedTemplate::bind`] substitutes actual values and
/// yields an executable [`Statement`].
#[derive(Debug, Clone)]
pub struct PreparedTemplate {
    stmt: Statement,
    n_params: u32,
}

/// Parses one statement as a prepared template, allowing `?` placeholders
/// inside DML expressions (assigned positions left to right). Placeholders
/// are only legal in `SELECT`/`INSERT`/`UPDATE`/`DELETE`: DDL and control
/// statements need concrete values at parse time.
pub fn parse_template(sql: &str) -> Result<PreparedTemplate> {
    let mut p = Parser::new_template(sql)?;
    let stmt = statement(&mut p)?;
    p.expect_end()?;
    let n_params = p.param_count();
    if n_params > 0
        && !matches!(
            stmt,
            Statement::Select(_)
                | Statement::Insert { .. }
                | Statement::InsertExprs { .. }
                | Statement::Update { .. }
                | Statement::Delete { .. }
        )
    {
        return Err(Error::Eval(
            "parameter placeholders are only allowed in SELECT/INSERT/UPDATE/DELETE".into(),
        ));
    }
    Ok(PreparedTemplate { stmt, n_params })
}

impl PreparedTemplate {
    /// The underlying (possibly placeholder-carrying) statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }

    /// Number of `?` placeholders the template expects.
    pub fn n_params(&self) -> u32 {
        self.n_params
    }

    /// Substitutes `params` for the placeholders and returns an executable
    /// statement. Arity must match exactly.
    pub fn bind(&self, params: &[Value]) -> Result<Statement> {
        if params.len() != self.n_params as usize {
            return Err(Error::Eval(format!(
                "prepared statement expects {} parameters, got {}",
                self.n_params,
                params.len()
            )));
        }
        Ok(match &self.stmt {
            Statement::Select(spec) => Statement::Select(bind_spec(spec, params)?),
            Statement::InsertExprs {
                table,
                columns,
                rows,
            } => {
                let empty_scope = Scope::new();
                let empty_row = Row(Vec::new());
                let mut out = Vec::with_capacity(rows.len());
                for exprs in rows {
                    let mut vals = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        let bound = e.bind_params(params)?;
                        vals.push(bound.eval(&empty_scope, &empty_row).map_err(|_| {
                            Error::Eval(format!(
                                "INSERT value {bound} is not a constant expression"
                            ))
                        })?);
                    }
                    out.push(Row(vals));
                }
                Statement::Insert {
                    table: table.clone(),
                    columns: columns.clone(),
                    rows: out,
                }
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => Statement::Update {
                table: table.clone(),
                sets: sets
                    .iter()
                    .map(|(c, e)| Ok((c.clone(), e.bind_params(params)?)))
                    .collect::<Result<Vec<_>>>()?,
                predicate: predicate
                    .as_ref()
                    .map(|e| e.bind_params(params))
                    .transpose()?,
            },
            Statement::Delete { table, predicate } => Statement::Delete {
                table: table.clone(),
                predicate: predicate
                    .as_ref()
                    .map(|e| e.bind_params(params))
                    .transpose()?,
            },
            // Zero-parameter templates of any other kind execute as-is.
            other => other.clone(),
        })
    }
}

fn bind_spec(spec: &SelectSpec, params: &[Value]) -> Result<SelectSpec> {
    use bullfrog_query::OutputColumn;
    Ok(SelectSpec {
        inputs: spec.inputs.clone(),
        join_conds: spec.join_conds.clone(),
        filter: spec
            .filter
            .as_ref()
            .map(|e| e.bind_params(params))
            .transpose()?,
        columns: spec
            .columns
            .iter()
            .map(|c| {
                Ok(match c {
                    OutputColumn::Scalar { name, expr } => OutputColumn::Scalar {
                        name: name.clone(),
                        expr: expr.bind_params(params)?,
                    },
                    OutputColumn::Agg { name, func, arg } => OutputColumn::Agg {
                        name: name.clone(),
                        func: *func,
                        arg: arg.bind_params(params)?,
                    },
                })
            })
            .collect::<Result<Vec<_>>>()?,
    })
}

fn statement(p: &mut Parser) -> Result<Statement> {
    use crate::lexer::Token;
    match p.peek().and_then(Token::word) {
        Some("select") => return Ok(Statement::Select(p.select()?)),
        Some("create") => return create(p),
        _ => {}
    }
    if p.eat_word("insert") {
        return insert(p);
    }
    if p.eat_word("update") {
        return update(p);
    }
    if p.eat_word("delete") {
        p.keyword("from")?;
        let table = p.ident()?;
        let predicate = where_clause(p)?;
        return Ok(Statement::Delete { table, predicate });
    }
    if p.eat_word("begin") {
        let _ = p.eat_word("transaction");
        return Ok(Statement::Begin);
    }
    if p.eat_word("commit") {
        if p.eat_word("nowait") {
            return Ok(Statement::CommitNowait);
        }
        return Ok(Statement::Commit);
    }
    if p.eat_word("rollback") || p.eat_word("abort") {
        return Ok(Statement::Rollback);
    }
    if p.eat_word("checkpoint") {
        return Ok(Statement::Checkpoint);
    }
    if p.eat_word("set") {
        if p.eat_word("sync_replicas") {
            let n = p.int_literal()?;
            if n < 0 {
                return Err(Error::Eval(format!(
                    "SYNC_REPLICAS must be non-negative, got {n}"
                )));
            }
            return Ok(Statement::SetSyncReplicas { count: n as u64 });
        }
        if p.eat_word("sync_policy") {
            if p.eat_word("block") {
                return Ok(Statement::SetSyncPolicy { degrade_ms: None });
            }
            p.keyword("degrade")?;
            let ms = p.int_literal()?;
            if ms < 0 {
                return Err(Error::Eval(format!(
                    "SYNC_POLICY DEGRADE window must be non-negative, got {ms}"
                )));
            }
            return Ok(Statement::SetSyncPolicy {
                degrade_ms: Some(ms as u64),
            });
        }
        p.keyword("commit_mode")?;
        if p.eat_word("sync") {
            return Ok(Statement::SetCommitMode { max_unacked: None });
        }
        p.keyword("nowait")?;
        p.sym("(")?;
        let n = p.int_literal()?;
        p.sym(")")?;
        if n < 0 {
            return Err(Error::Eval(format!(
                "COMMIT_MODE NOWAIT window must be non-negative, got {n}"
            )));
        }
        return Ok(Statement::SetCommitMode {
            max_unacked: Some(n as u64),
        });
    }
    if p.eat_word("finalize") {
        p.keyword("migration")?;
        let drop_old = if p.eat_word("drop") {
            p.keyword("old")?;
            true
        } else {
            false
        };
        return Ok(Statement::FinalizeMigration { drop_old });
    }
    Err(Error::Eval(format!(
        "expected a statement keyword, found {:?}",
        p.peek()
    )))
}

fn create(p: &mut Parser) -> Result<Statement> {
    // Look ahead past `CREATE TABLE <name>` to distinguish plain DDL
    // from migration DDL, then rewind for the plain-DDL path (whose
    // parser consumes the whole prefix itself).
    let start = p.mark();
    p.keyword("create")?;
    p.keyword("table")?;
    let name = p.ident()?;
    if p.eat_word("as") {
        let parenthesized = p.eat_sym("(");
        let select = p.select()?;
        if parenthesized {
            p.sym(")")?;
        }
        let mut primary_key = Vec::new();
        if p.eat_word("primary") {
            p.keyword("key")?;
            primary_key = p.paren_ident_list()?;
        }
        return Ok(Statement::CreateTableAs {
            name,
            select,
            primary_key,
        });
    }
    p.rewind(start);
    Ok(Statement::CreateTable(p.create_table()?))
}

fn insert(p: &mut Parser) -> Result<Statement> {
    p.keyword("into")?;
    let table = p.ident()?;
    let mut columns = Vec::new();
    // A '(' here is ambiguous only with VALUES, which must follow anyway.
    if matches!(p.peek(), Some(crate::lexer::Token::Sym("("))) {
        columns = p.paren_ident_list()?;
    }
    p.keyword("values")?;
    let params_before = p.param_count();
    let mut exprs = Vec::new();
    loop {
        p.sym("(")?;
        let mut vals = Vec::new();
        loop {
            vals.push(p.additive()?);
            if !p.eat_sym(",") {
                break;
            }
        }
        p.sym(")")?;
        exprs.push(vals);
        if !p.eat_sym(",") {
            break;
        }
    }
    if p.param_count() > params_before {
        // Placeholders present: folding waits for bind(), but column
        // references are still a parse error (same contract as below).
        for e in exprs.iter().flatten() {
            let mut cols = Vec::new();
            e.columns(&mut cols);
            if !cols.is_empty() {
                return Err(Error::Eval(format!(
                    "INSERT value {e} is not a constant expression"
                )));
            }
        }
        return Ok(Statement::InsertExprs {
            table,
            columns,
            rows: exprs,
        });
    }
    let empty_scope = Scope::new();
    let empty_row = Row(Vec::new());
    let mut rows = Vec::with_capacity(exprs.len());
    for vals in exprs {
        let mut folded = Vec::with_capacity(vals.len());
        for e in vals {
            // Constant-fold: INSERT values must be literal expressions.
            folded.push(e.eval(&empty_scope, &empty_row).map_err(|_| {
                Error::Eval(format!("INSERT value {e} is not a constant expression"))
            })?);
        }
        rows.push(Row(folded));
    }
    Ok(Statement::Insert {
        table,
        columns,
        rows,
    })
}

fn update(p: &mut Parser) -> Result<Statement> {
    let table = p.ident()?;
    p.keyword("set")?;
    let mut sets = Vec::new();
    loop {
        let col = p.ident()?;
        p.sym("=")?;
        sets.push((col, p.additive()?));
        if !p.eat_sym(",") {
            break;
        }
    }
    let predicate = where_clause(p)?;
    Ok(Statement::Update {
        table,
        sets,
        predicate,
    })
}

fn where_clause(p: &mut Parser) -> Result<Option<Expr>> {
    if p.eat_word("where") {
        Ok(Some(p.or_expr()?))
    } else {
        Ok(None)
    }
}

/// Convenience: the value tuples of an INSERT reordered to `schema`'s
/// column order (resolving an explicit column list, `NULL`-filling
/// omitted nullable columns). Errors on unknown columns or arity
/// mismatches — never panics.
pub fn reorder_insert_rows(
    schema: &TableSchema,
    columns: &[String],
    rows: &[Row],
) -> Result<Vec<Row>> {
    if columns.is_empty() {
        for r in rows {
            if r.0.len() != schema.columns.len() {
                return Err(Error::SchemaMismatch(format!(
                    "INSERT into {} supplies {} values for {} columns",
                    schema.name,
                    r.0.len(),
                    schema.columns.len()
                )));
            }
        }
        return Ok(rows.to_vec());
    }
    let mut positions = Vec::with_capacity(columns.len());
    for c in columns {
        positions.push(schema.col_index(c)?);
    }
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if r.0.len() != positions.len() {
            return Err(Error::SchemaMismatch(format!(
                "INSERT into {} supplies {} values for {} named columns",
                schema.name,
                r.0.len(),
                positions.len()
            )));
        }
        let mut full = vec![Value::Null; schema.columns.len()];
        for (v, &pos) in r.0.iter().zip(&positions) {
            full[pos] = v.clone();
        }
        out.push(Row(full));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_statement_kind() {
        assert!(matches!(
            parse_statement("SELECT a FROM t").unwrap(),
            Statement::Select(_)
        ));
        assert!(matches!(
            parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap(),
            Statement::Insert { ref rows, .. } if rows.len() == 2
        ));
        assert!(matches!(
            parse_statement("UPDATE t SET a = a + 1 WHERE id = 3").unwrap(),
            Statement::Update { ref sets, .. } if sets.len() == 1
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE id = 3").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(
            parse_statement("CREATE TABLE t (a INT, PRIMARY KEY (a))").unwrap(),
            Statement::CreateTable(_)
        ));
        assert!(matches!(
            parse_statement("BEGIN").unwrap(),
            Statement::Begin
        ));
        assert!(matches!(
            parse_statement("COMMIT;").unwrap(),
            Statement::Commit
        ));
        assert!(matches!(
            parse_statement("COMMIT NOWAIT").unwrap(),
            Statement::CommitNowait
        ));
        assert!(matches!(
            parse_statement("ROLLBACK").unwrap(),
            Statement::Rollback
        ));
        assert!(matches!(
            parse_statement("CHECKPOINT").unwrap(),
            Statement::Checkpoint
        ));
        assert!(matches!(
            parse_statement("FINALIZE MIGRATION DROP OLD").unwrap(),
            Statement::FinalizeMigration { drop_old: true }
        ));
        assert!(matches!(
            parse_statement("SET COMMIT_MODE NOWAIT(8)").unwrap(),
            Statement::SetCommitMode {
                max_unacked: Some(8)
            }
        ));
        assert!(matches!(
            parse_statement("SET COMMIT_MODE SYNC").unwrap(),
            Statement::SetCommitMode { max_unacked: None }
        ));
    }

    #[test]
    fn commit_mode_rejects_malformed_windows() {
        assert!(parse_statement("SET COMMIT_MODE NOWAIT(-1)").is_err());
        assert!(parse_statement("SET COMMIT_MODE NOWAIT").is_err());
        assert!(parse_statement("SET COMMIT_MODE").is_err());
        assert!(parse_statement("SET LOCK_MODE SYNC").is_err());
    }

    #[test]
    fn sync_replication_settings_parse() {
        assert!(matches!(
            parse_statement("SET SYNC_REPLICAS 2").unwrap(),
            Statement::SetSyncReplicas { count: 2 }
        ));
        assert!(matches!(
            parse_statement("set sync_replicas 0").unwrap(),
            Statement::SetSyncReplicas { count: 0 }
        ));
        assert!(matches!(
            parse_statement("SET SYNC_POLICY BLOCK").unwrap(),
            Statement::SetSyncPolicy { degrade_ms: None }
        ));
        assert!(matches!(
            parse_statement("SET SYNC_POLICY DEGRADE 750").unwrap(),
            Statement::SetSyncPolicy {
                degrade_ms: Some(750)
            }
        ));
        assert!(parse_statement("SET SYNC_REPLICAS -1").is_err());
        assert!(parse_statement("SET SYNC_REPLICAS").is_err());
        assert!(parse_statement("SET SYNC_POLICY DEGRADE -5").is_err());
        assert!(parse_statement("SET SYNC_POLICY RETREAT").is_err());
    }

    #[test]
    fn migration_ddl_with_primary_key() {
        let s = parse_statement(
            "CREATE TABLE flewoninfo AS (SELECT f.flightid AS fid, fi.flightdate \
             FROM flights f, flewon fi WHERE f.flightid = fi.flightid) \
             PRIMARY KEY (fid, flightdate)",
        )
        .unwrap();
        match s {
            Statement::CreateTableAs {
                name,
                select,
                primary_key,
            } => {
                assert_eq!(name, "flewoninfo");
                assert_eq!(select.inputs.len(), 2);
                assert_eq!(primary_key, vec!["fid", "flightdate"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_values_are_constant_folded() {
        match parse_statement("INSERT INTO t VALUES (1 + 2, -3, 'x')").unwrap() {
            Statement::Insert { rows, .. } => {
                assert_eq!(
                    rows[0],
                    Row(vec![Value::Int(3), Value::Int(-3), Value::text("x")])
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("INSERT INTO t VALUES (a)").is_err());
    }

    #[test]
    fn plain_parse_rejects_placeholders() {
        assert!(parse_statement("SELECT a FROM t WHERE id = ?").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (?)").is_err());
    }

    #[test]
    fn template_select_binds_to_same_statement_as_literal() {
        let t = parse_template("SELECT a FROM t WHERE id = ? AND b < ?").unwrap();
        assert_eq!(t.n_params(), 2);
        let bound = t.bind(&[Value::Int(7), Value::text("z")]).unwrap();
        let literal = parse_statement("SELECT a FROM t WHERE id = 7 AND b < 'z'").unwrap();
        match (bound, literal) {
            (Statement::Select(a), Statement::Select(b)) => {
                assert_eq!(a.filter, b.filter);
                assert_eq!(a.columns, b.columns);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn template_insert_defers_folding() {
        let t = parse_template("INSERT INTO t (a, b) VALUES (?, ? + 1)").unwrap();
        assert_eq!(t.n_params(), 2);
        assert!(matches!(t.statement(), Statement::InsertExprs { .. }));
        match t.bind(&[Value::Int(3), Value::Int(9)]).unwrap() {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0], Row(vec![Value::Int(3), Value::Int(10)]));
            }
            other => panic!("{other:?}"),
        }
        // Column references are still rejected at parse time.
        assert!(parse_template("INSERT INTO t VALUES (?, some_col)").is_err());
    }

    #[test]
    fn template_update_delete_bind() {
        let t = parse_template("UPDATE t SET a = a + ? WHERE id = ?").unwrap();
        match t.bind(&[Value::Int(5), Value::Int(1)]).unwrap() {
            Statement::Update {
                sets, predicate, ..
            } => {
                assert_eq!(sets[0].1.to_string(), "(a + 5)");
                assert_eq!(predicate.unwrap().to_string(), "(id = 1)");
            }
            other => panic!("{other:?}"),
        }
        let t = parse_template("DELETE FROM t WHERE id = ?").unwrap();
        assert!(matches!(
            t.bind(&[Value::Int(2)]).unwrap(),
            Statement::Delete { .. }
        ));
    }

    #[test]
    fn template_arity_and_kind_checks() {
        let t = parse_template("SELECT a FROM t WHERE id = ?").unwrap();
        assert!(t.bind(&[]).is_err());
        assert!(t.bind(&[Value::Int(1), Value::Int(2)]).is_err());
        // Placeholders outside DML are rejected.
        assert!(parse_template("CREATE TABLE x AS (SELECT a FROM t WHERE id = ?)").is_err());
        // Zero-param templates of any kind still parse.
        assert_eq!(parse_template("BEGIN").unwrap().n_params(), 0);
    }

    #[test]
    fn reorder_fills_missing_with_null() {
        let schema = TableSchema::new(
            "t",
            vec![
                bullfrog_common::ColumnDef::new("a", bullfrog_common::DataType::Int),
                bullfrog_common::ColumnDef::nullable("b", bullfrog_common::DataType::Text),
            ],
        );
        let rows =
            reorder_insert_rows(&schema, &["a".into()], &[Row(vec![Value::Int(7)])]).unwrap();
        assert_eq!(rows[0], Row(vec![Value::Int(7), Value::Null]));
        assert!(reorder_insert_rows(&schema, &["zz".into()], &[Row(vec![Value::Int(7)])]).is_err());
        assert!(reorder_insert_rows(&schema, &[], &[Row(vec![Value::Int(7)])]).is_err());
    }
}
