//! Output-schema inference for `CREATE TABLE ... AS SELECT` (the types a
//! real engine derives during CTAS planning).

use bullfrog_common::{ColumnDef, DataType, Error, Result, TableSchema};
use bullfrog_engine::Database;
use bullfrog_query::{AggFunc, ColRef, Expr, Func, OutputColumn, SelectSpec};

/// Inferred type + nullability of an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Inferred {
    dtype: DataType,
    nullable: bool,
}

/// Qualifies every bare column reference in the spec (projections,
/// filters, join conditions) with the alias of the unique input table
/// holding that column. Migration specs need this: predicate transposition
/// attaches filters per alias, so an unqualified `FLIGHTDATE` would
/// otherwise not reach its table's scan.
pub fn qualify_spec(db: &Database, spec: &SelectSpec) -> Result<SelectSpec> {
    let resolve = |c: &ColRef| -> Result<Option<ColRef>> {
        if c.table.is_some() {
            return Ok(None);
        }
        let mut found: Option<ColRef> = None;
        for input in &spec.inputs {
            let table = db.table(&input.table)?;
            if table.schema().col_index(&c.column).is_ok() {
                if found.is_some() {
                    return Err(Error::Eval(format!(
                        "ambiguous column {} across inputs",
                        c.column
                    )));
                }
                found = Some(ColRef::new(input.alias.clone(), c.column.clone()));
            }
        }
        Ok(Some(
            found.ok_or_else(|| Error::ColumnNotFound(c.to_string()))?,
        ))
    };

    // map_columns is infallible; collect errors on the side.
    let failure: std::cell::RefCell<Option<Error>> = std::cell::RefCell::new(None);
    let qualify_expr = |e: &Expr| -> Expr {
        e.map_columns(&|c: &ColRef| match resolve(c) {
            Ok(Some(q)) => Some(Expr::Col(q)),
            Ok(None) => None,
            Err(err) => {
                *failure.borrow_mut() = Some(err);
                None
            }
        })
    };

    let mut out = SelectSpec::new();
    for input in &spec.inputs {
        out = out.from_table(input.table.clone(), input.alias.clone());
    }
    for (a, b) in &spec.join_conds {
        let qa = resolve(a)?.unwrap_or_else(|| a.clone());
        let qb = resolve(b)?.unwrap_or_else(|| b.clone());
        out = out.join_on(qa, qb);
    }
    if let Some(f) = &spec.filter {
        out = out.filter(qualify_expr(f));
    }
    for c in &spec.columns {
        match c {
            OutputColumn::Scalar { name, expr } => {
                out = out.select(name.clone(), qualify_expr(expr));
            }
            OutputColumn::Agg { name, func, arg } => {
                out = out.select_agg(name.clone(), *func, qualify_expr(arg));
            }
        }
    }
    match failure.into_inner() {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Infers the output table's schema from the spec and the catalog.
/// Columns defined as a literal `NULL` carry no type of their own; list
/// them in `null_types` (name → type), otherwise they infer as nullable
/// `Text`.
pub fn infer_output_schema(
    db: &Database,
    name: &str,
    spec: &SelectSpec,
    null_types: &[(&str, DataType)],
) -> Result<TableSchema> {
    let mut columns = Vec::with_capacity(spec.columns.len());
    for c in &spec.columns {
        let (col_name, inferred) = match c {
            OutputColumn::Scalar { name, expr } => {
                if matches!(expr, Expr::Lit(bullfrog_common::Value::Null)) {
                    let dtype = null_types
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, t)| *t)
                        .unwrap_or(DataType::Text);
                    (
                        name.clone(),
                        Inferred {
                            dtype,
                            nullable: true,
                        },
                    )
                } else {
                    (name.clone(), infer_expr(db, spec, expr)?)
                }
            }
            OutputColumn::Agg { name, func, arg } => {
                let base = infer_expr(db, spec, arg)?;
                let inferred = match func {
                    AggFunc::Count | AggFunc::CountDistinct => Inferred {
                        dtype: DataType::Int,
                        nullable: false,
                    },
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => Inferred {
                        dtype: base.dtype,
                        nullable: true, // empty groups yield NULL
                    },
                };
                (name.clone(), inferred)
            }
        };
        columns.push(ColumnDef {
            name: col_name,
            dtype: inferred.dtype,
            nullable: inferred.nullable,
        });
    }
    Ok(TableSchema::new(name, columns))
}

fn infer_expr(db: &Database, spec: &SelectSpec, e: &Expr) -> Result<Inferred> {
    match e {
        Expr::Col(c) => infer_col(db, spec, c),
        Expr::Lit(v) => Ok(Inferred {
            dtype: v.data_type().unwrap_or(DataType::Text),
            nullable: v.is_null(),
        }),
        Expr::Cmp(..) | Expr::And(..) | Expr::Or(..) | Expr::Not(_) | Expr::IsNull(_) => {
            Ok(Inferred {
                dtype: DataType::Bool,
                nullable: true,
            })
        }
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
            let (ia, ib) = (infer_expr(db, spec, a)?, infer_expr(db, spec, b)?);
            let dtype = match (ia.dtype, ib.dtype) {
                (DataType::Float, _) | (_, DataType::Float) => DataType::Float,
                (DataType::Decimal, _) | (_, DataType::Decimal) => DataType::Decimal,
                _ => DataType::Int,
            };
            Ok(Inferred {
                dtype,
                nullable: ia.nullable || ib.nullable,
            })
        }
        Expr::Call(Func::ExtractDay, arg) => {
            let a = infer_expr(db, spec, arg)?;
            Ok(Inferred {
                dtype: DataType::Int,
                nullable: a.nullable,
            })
        }
        Expr::Call(Func::Abs | Func::Neg, arg) => infer_expr(db, spec, arg),
        Expr::Param(i) => Err(Error::Eval(format!(
            "parameter ?{} not allowed here: output schema inference needs concrete types",
            i + 1
        ))),
    }
}

fn infer_col(db: &Database, spec: &SelectSpec, c: &ColRef) -> Result<Inferred> {
    // Qualified: look in that alias; bare: search all inputs, must be
    // unambiguous.
    let mut found: Option<Inferred> = None;
    for input in &spec.inputs {
        if let Some(alias) = &c.table {
            if *alias != input.alias {
                continue;
            }
        }
        let table = db.table(&input.table)?;
        if let Ok(idx) = table.schema().col_index(&c.column) {
            let col = &table.schema().columns[idx];
            let inferred = Inferred {
                dtype: col.dtype,
                nullable: col.nullable,
            };
            if c.table.is_some() {
                return Ok(inferred);
            }
            if found.is_some() {
                return Err(Error::Eval(format!(
                    "ambiguous column {} across inputs",
                    c.column
                )));
            }
            found = Some(inferred);
        }
    }
    found.ok_or_else(|| Error::ColumnNotFound(c.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_select;

    fn db() -> Database {
        let db = Database::new();
        db.create_table(
            TableSchema::new(
                "flights",
                vec![
                    ColumnDef::new("flightid", DataType::Text),
                    ColumnDef::new("capacity", DataType::Int),
                    ColumnDef::new("departure_time", DataType::Timestamp),
                ],
            )
            .with_primary_key(&["flightid"]),
        )
        .unwrap();
        db.create_table(TableSchema::new(
            "flewon",
            vec![
                ColumnDef::new("flightid", DataType::Text),
                ColumnDef::new("flightdate", DataType::Date),
                ColumnDef::nullable("passenger_count", DataType::Int),
            ],
        ))
        .unwrap();
        db
    }

    #[test]
    fn ctas_types_follow_sources() {
        let db = db();
        let spec = parse_select(
            "SELECT f.flightid AS fid, flightdate, passenger_count, \
             capacity - passenger_count AS empty_seats, \
             departure_time AS expected, NULL AS actual \
             FROM flights f, flewon fi WHERE f.flightid = fi.flightid",
        )
        .unwrap();
        let s = infer_output_schema(&db, "out", &spec, &[("actual", DataType::Timestamp)]).unwrap();
        let types: Vec<(String, DataType, bool)> = s
            .columns
            .iter()
            .map(|c| (c.name.clone(), c.dtype, c.nullable))
            .collect();
        assert_eq!(types[0], ("fid".into(), DataType::Text, false));
        assert_eq!(types[1], ("flightdate".into(), DataType::Date, false));
        assert_eq!(types[2], ("passenger_count".into(), DataType::Int, true));
        // Arithmetic with a nullable operand is nullable.
        assert_eq!(types[3], ("empty_seats".into(), DataType::Int, true));
        assert_eq!(types[4], ("expected".into(), DataType::Timestamp, false));
        assert_eq!(types[5], ("actual".into(), DataType::Timestamp, true));
    }

    #[test]
    fn aggregates_infer_correctly() {
        let db = db();
        let spec = parse_select(
            "SELECT flightid, COUNT(*) AS n, SUM(passenger_count) AS total \
             FROM flewon GROUP BY flightid",
        )
        .unwrap();
        let s = infer_output_schema(&db, "out", &spec, &[]).unwrap();
        assert_eq!(s.columns[1].dtype, DataType::Int);
        assert!(!s.columns[1].nullable, "COUNT is never NULL");
        assert_eq!(s.columns[2].dtype, DataType::Int);
        assert!(s.columns[2].nullable, "SUM of empty group is NULL");
    }

    #[test]
    fn ambiguous_bare_column_rejected() {
        let db = db();
        let spec = parse_select(
            "SELECT flightid FROM flights f, flewon fi WHERE f.flightid = fi.flightid",
        )
        .unwrap();
        assert!(infer_output_schema(&db, "out", &spec, &[]).is_err());
    }

    #[test]
    fn unknown_column_rejected() {
        let db = db();
        let spec = parse_select("SELECT nope FROM flights").unwrap();
        assert!(matches!(
            infer_output_schema(&db, "out", &spec, &[]),
            Err(Error::ColumnNotFound(_))
        ));
    }
}
