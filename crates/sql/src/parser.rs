//! Recursive-descent parser for the BullFrog SQL dialect.

use bullfrog_common::{CheckExpr, CheckOp, ColumnDef, DataType, Error, Result, TableSchema, Value};
use bullfrog_core::MigrationStatement;
use bullfrog_engine::Database;
use bullfrog_query::{AggFunc, CmpOp, ColRef, Expr, Func, SelectSpec};

use crate::lexer::{lex, Token};

/// Parses a `WHERE`-clause predicate, e.g.
/// `fid = 'AA101' AND extract(day from flightdate) = 9`.
pub fn parse_predicate(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.or_expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parses a `SELECT` statement into a [`SelectSpec`]. Equality conjuncts
/// between columns of two different FROM aliases become join conditions
/// (the paper writes its migration joins exactly this way).
pub fn parse_select(sql: &str) -> Result<SelectSpec> {
    let mut p = Parser::new(sql)?;
    let spec = p.select()?;
    p.expect_end()?;
    Ok(spec)
}

/// Parses a `CREATE TABLE` statement with columns and constraints.
pub fn parse_create_table(sql: &str) -> Result<TableSchema> {
    let mut p = Parser::new(sql)?;
    let schema = p.create_table()?;
    p.expect_end()?;
    Ok(schema)
}

/// Parses migration DDL — `CREATE TABLE <name> AS (SELECT ...)` — into a
/// [`MigrationStatement`], inferring the output schema's column types from
/// the input tables in `db`'s catalog. `primary_key` names the new
/// table's key columns (the paper re-declares constraints explicitly;
/// pass `&[]` for none). `null_types` overrides the inferred type of
/// columns defined as literal `NULL` (which carry no type of their own).
pub fn parse_migration(
    db: &Database,
    sql: &str,
    primary_key: &[&str],
    null_types: &[(&str, DataType)],
) -> Result<MigrationStatement> {
    let mut p = Parser::new(sql)?;
    p.keyword("create")?;
    p.keyword("table")?;
    let name = p.ident()?;
    p.keyword("as")?;
    let parenthesized = p.eat_sym("(");
    let spec = p.select()?;
    if parenthesized {
        p.sym(")")?;
    }
    p.expect_end()?;
    let spec = crate::infer::qualify_spec(db, &spec)?;
    let mut schema = crate::infer::infer_output_schema(db, &name, &spec, null_types)?;
    if !primary_key.is_empty() {
        schema.primary_key = primary_key.iter().map(|s| s.to_string()).collect();
        // PK columns are implicitly NOT NULL.
        for c in &mut schema.columns {
            if schema.primary_key.contains(&c.name) {
                c.nullable = false;
            }
        }
    }
    Ok(MigrationStatement::new(schema, spec))
}

/// Maximum expression nesting depth. Recursive descent means parser
/// recursion tracks input nesting; without a cap, `((((((...` from an
/// untrusted network client overflows the stack (a panic/abort, not an
/// `Err`). 100 is far beyond any real statement.
const MAX_DEPTH: usize = 100;

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
    /// When false (the default), `?` placeholders are a parse error;
    /// prepared-statement templates opt in via [`Parser::new_template`].
    allow_params: bool,
    /// Number of `?` placeholders consumed so far (assigned left to right).
    params: u32,
}

impl Parser {
    pub(crate) fn new(sql: &str) -> Result<Self> {
        Ok(Parser {
            tokens: lex(sql)?,
            pos: 0,
            depth: 0,
            allow_params: false,
            params: 0,
        })
    }

    /// Parser accepting `?` parameter placeholders (PREPARE templates).
    pub(crate) fn new_template(sql: &str) -> Result<Self> {
        let mut p = Parser::new(sql)?;
        p.allow_params = true;
        Ok(p)
    }

    /// Number of `?` placeholders consumed so far.
    pub(crate) fn param_count(&self) -> u32 {
        self.params
    }

    pub(crate) fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    /// Current position, for [`Parser::rewind`]-based lookahead.
    pub(crate) fn mark(&self) -> usize {
        self.pos
    }

    /// Rewinds to a position previously returned by [`Parser::mark`].
    pub(crate) fn rewind(&mut self, pos: usize) {
        self.pos = pos;
    }

    fn descend(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::Eval(format!(
                "expression nesting exceeds {MAX_DEPTH} levels"
            )));
        }
        Ok(())
    }

    pub(crate) fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Eval("unexpected end of SQL".into()))?;
        self.pos += 1;
        Ok(t)
    }

    pub(crate) fn eat_word(&mut self, w: &str) -> bool {
        if self.peek().and_then(Token::word) == Some(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn keyword(&mut self, w: &str) -> Result<()> {
        if self.eat_word(w) {
            Ok(())
        } else {
            Err(Error::Eval(format!(
                "expected keyword {w:?}, found {:?}",
                self.peek()
            )))
        }
    }

    pub(crate) fn sym(&mut self, s: &str) -> Result<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(Error::Eval(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    pub(crate) fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Word(w) => Ok(w),
            other => Err(Error::Eval(format!("expected identifier, found {other:?}"))),
        }
    }

    pub(crate) fn expect_end(&mut self) -> Result<()> {
        // Allow a trailing semicolon.
        if matches!(self.peek(), Some(Token::Sym(";"))) {
            self.pos += 1;
        }
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(Error::Eval(format!("trailing input at {t:?}"))),
        }
    }

    // --- predicates -------------------------------------------------------

    pub(crate) fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_word("or") {
            e = e.or(self.and_expr()?);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary_pred()?;
        while self.eat_word("and") {
            e = e.and(self.unary_pred()?);
        }
        Ok(e)
    }

    fn unary_pred(&mut self) -> Result<Expr> {
        self.descend()?;
        let r = self.unary_pred_inner();
        self.depth -= 1;
        r
    }

    fn unary_pred_inner(&mut self) -> Result<Expr> {
        if self.eat_word("not") {
            return Ok(self.unary_pred()?.not());
        }
        // Parenthesized sub-predicate vs parenthesized operand: parse as a
        // full predicate if it is followed by AND/OR/), else fall through.
        let checkpoint = self.pos;
        if self.eat_sym("(") {
            if let Ok(inner) = self.or_expr() {
                if self.eat_sym(")") {
                    // If a comparison operator follows, the parens were an
                    // operand grouping; restart as a comparison.
                    if !matches!(
                        self.peek(),
                        Some(Token::Sym(
                            "=" | "<" | ">" | "<=" | ">=" | "<>" | "+" | "-" | "*"
                        ))
                    ) {
                        return Ok(inner);
                    }
                }
            }
            self.pos = checkpoint;
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.additive()?;
        if self.eat_word("is") {
            let negated = self.eat_word("not");
            self.keyword("null")?;
            let e = Expr::IsNull(Box::new(lhs));
            return Ok(if negated { e.not() } else { e });
        }
        let op = match self.peek() {
            Some(Token::Sym("=")) => CmpOp::Eq,
            Some(Token::Sym("<>")) => CmpOp::Ne,
            Some(Token::Sym("<")) => CmpOp::Lt,
            Some(Token::Sym("<=")) => CmpOp::Le,
            Some(Token::Sym(">")) => CmpOp::Gt,
            Some(Token::Sym(">=")) => CmpOp::Ge,
            _ => {
                return Err(Error::Eval(format!(
                    "expected comparison operator, found {:?}",
                    self.peek()
                )))
            }
        };
        self.pos += 1;
        let rhs = self.additive()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    // --- scalar expressions -------------------------------------------------

    pub(crate) fn additive(&mut self) -> Result<Expr> {
        let mut e = self.term()?;
        loop {
            if self.eat_sym("+") {
                e = e.add(self.term()?);
            } else if self.eat_sym("-") {
                e = e.sub(self.term()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn term(&mut self) -> Result<Expr> {
        let mut e = self.factor()?;
        while self.eat_sym("*") {
            e = e.mul(self.factor()?);
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<Expr> {
        self.descend()?;
        let r = self.factor_inner();
        self.depth -= 1;
        r
    }

    fn factor_inner(&mut self) -> Result<Expr> {
        if self.eat_sym("(") {
            let e = self.additive()?;
            self.sym(")")?;
            return Ok(e);
        }
        if self.eat_sym("?") {
            if !self.allow_params {
                return Err(Error::Eval(
                    "parameter placeholder '?' is only valid in a prepared statement \
                     (use PREPARE/EXECUTE)"
                        .into(),
                ));
            }
            let i = self.params;
            self.params += 1;
            return Ok(Expr::Param(i));
        }
        if self.eat_sym("-") {
            return Ok(Expr::Call(Func::Neg, Box::new(self.factor()?)));
        }
        match self.next()? {
            Token::Int(i) => Ok(Expr::lit(i)),
            Token::Float(f) => Ok(Expr::lit(f)),
            Token::Str(s) => Ok(Expr::lit(s)),
            Token::Word(w) => match w.as_str() {
                "null" => Ok(Expr::null()),
                "true" => Ok(Expr::lit(true)),
                "false" => Ok(Expr::lit(false)),
                "date" => Ok(Expr::Lit(Value::Date(self.int_literal()? as i32))),
                "timestamp" => Ok(Expr::Lit(Value::Timestamp(self.int_literal()?))),
                "extract" => {
                    self.sym("(")?;
                    self.keyword("day")?;
                    self.keyword("from")?;
                    let arg = self.additive()?;
                    self.sym(")")?;
                    Ok(Expr::Call(Func::ExtractDay, Box::new(arg)))
                }
                "abs" => {
                    self.sym("(")?;
                    let arg = self.additive()?;
                    self.sym(")")?;
                    Ok(Expr::Call(Func::Abs, Box::new(arg)))
                }
                _ => {
                    // Column reference: word or word.word.
                    if self.eat_sym(".") {
                        let col = self.ident()?;
                        Ok(Expr::Col(ColRef::new(w, col)))
                    } else {
                        Ok(Expr::Col(ColRef::bare(w)))
                    }
                }
            },
            other => Err(Error::Eval(format!("unexpected token {other:?}"))),
        }
    }

    pub(crate) fn int_literal(&mut self) -> Result<i64> {
        match self.next()? {
            Token::Int(i) => Ok(i),
            other => Err(Error::Eval(format!("expected integer, found {other:?}"))),
        }
    }

    // --- SELECT ---------------------------------------------------------------

    pub(crate) fn select(&mut self) -> Result<SelectSpec> {
        self.keyword("select")?;
        let mut spec = SelectSpec::new();
        // Select list.
        loop {
            if let Some((func, arg, distinct)) = self.try_aggregate()? {
                let name = self.alias_or(&format!("agg{}", spec.columns.len()))?;
                let func = match (func, distinct) {
                    ("count", true) => AggFunc::CountDistinct,
                    ("count", false) => AggFunc::Count,
                    ("sum", _) => AggFunc::Sum,
                    ("min", _) => AggFunc::Min,
                    ("max", _) => AggFunc::Max,
                    _ => unreachable!("try_aggregate filters"),
                };
                spec = spec.select_agg(name, func, arg);
            } else {
                let e = self.additive()?;
                let default = match &e {
                    Expr::Col(c) => c.column.clone(),
                    _ => format!("col{}", spec.columns.len()),
                };
                let name = self.alias_or(&default)?;
                spec = spec.select(name, e);
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        // FROM list.
        self.keyword("from")?;
        loop {
            let table = self.ident()?;
            let alias = match self.peek() {
                Some(Token::Word(w)) if !matches!(w.as_str(), "where" | "group" | "as" | "on") => {
                    self.ident()?
                }
                _ => {
                    if self.eat_word("as") {
                        self.ident()?
                    } else {
                        table.clone()
                    }
                }
            };
            spec = spec.from_table(table, alias);
            if !self.eat_sym(",") {
                break;
            }
        }
        // WHERE: split into join conditions and residual filters.
        if self.eat_word("where") {
            let pred = self.or_expr()?;
            for conjunct in bullfrog_query::conjuncts(&pred) {
                if let Expr::Cmp(CmpOp::Eq, a, b) = &conjunct {
                    if let (Expr::Col(ca), Expr::Col(cb)) = (a.as_ref(), b.as_ref()) {
                        let (ta, tb) = (ca.table.as_deref(), cb.table.as_deref());
                        if ta.is_some() && tb.is_some() && ta != tb {
                            spec = spec.join_on(ca.clone(), cb.clone());
                            continue;
                        }
                    }
                }
                spec = spec.filter(conjunct);
            }
        }
        // GROUP BY: must name exactly the scalar select items.
        if self.eat_word("group") {
            self.keyword("by")?;
            let mut keys = Vec::new();
            loop {
                keys.push(self.additive()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            let scalars: Vec<&Expr> = spec.group_key_exprs();
            if !spec.is_aggregate() {
                return Err(Error::Eval(
                    "GROUP BY without aggregate select items".into(),
                ));
            }
            for k in &keys {
                if !scalars.contains(&k) {
                    return Err(Error::Eval(format!(
                        "GROUP BY key {k} does not appear in the select list"
                    )));
                }
            }
            if keys.len() != scalars.len() {
                return Err(Error::Eval(format!(
                    "GROUP BY lists {} keys but the select list has {} non-aggregate \
                     items (they must match)",
                    keys.len(),
                    scalars.len()
                )));
            }
        } else if spec.is_aggregate() && !spec.group_key_exprs().is_empty() {
            return Err(Error::Eval(
                "aggregate select list with non-aggregate items requires GROUP BY".into(),
            ));
        }
        Ok(spec)
    }

    /// Matches `SUM(expr)`, `COUNT(*)`, `COUNT(DISTINCT expr)`, etc.
    fn try_aggregate(&mut self) -> Result<Option<(&'static str, Expr, bool)>> {
        let func = match self.peek().and_then(Token::word) {
            Some("sum") => "sum",
            Some("count") => "count",
            Some("min") => "min",
            Some("max") => "max",
            _ => return Ok(None),
        };
        // Only treat as aggregate when followed by '('.
        if !matches!(self.tokens.get(self.pos + 1), Some(Token::Sym("("))) {
            return Ok(None);
        }
        self.pos += 2; // word + '('
        let distinct = self.eat_word("distinct");
        let arg = if self.eat_sym("*") {
            Expr::lit(1)
        } else {
            self.additive()?
        };
        self.sym(")")?;
        Ok(Some((func, arg, distinct)))
    }

    fn alias_or(&mut self, default: &str) -> Result<String> {
        if self.eat_word("as") {
            self.ident()
        } else {
            Ok(default.to_owned())
        }
    }

    // --- CREATE TABLE ---------------------------------------------------------

    pub(crate) fn create_table(&mut self) -> Result<TableSchema> {
        self.keyword("create")?;
        self.keyword("table")?;
        let name = self.ident()?;
        self.sym("(")?;
        let mut schema = TableSchema::new(name, Vec::new());
        let mut n_unique = 0usize;
        let mut n_fk = 0usize;
        let mut n_check = 0usize;
        loop {
            let mut constraint_name: Option<String> = None;
            if self.eat_word("constraint") {
                constraint_name = Some(self.ident()?);
            }
            match self.peek().and_then(Token::word) {
                Some("primary") => {
                    self.pos += 1;
                    self.keyword("key")?;
                    schema.primary_key = self.paren_ident_list()?;
                }
                Some("unique") => {
                    self.pos += 1;
                    let cols = self.paren_ident_list()?;
                    n_unique += 1;
                    schema.uniques.push(bullfrog_common::UniqueConstraint {
                        name: constraint_name
                            .unwrap_or_else(|| format!("{}_unique_{n_unique}", schema.name)),
                        columns: cols,
                    });
                }
                Some("foreign") => {
                    self.pos += 1;
                    self.keyword("key")?;
                    let cols = self.paren_ident_list()?;
                    self.keyword("references")?;
                    let ref_table = self.ident()?;
                    let ref_cols = self.paren_ident_list()?;
                    n_fk += 1;
                    schema.foreign_keys.push(bullfrog_common::ForeignKey {
                        name: constraint_name
                            .unwrap_or_else(|| format!("{}_fk_{n_fk}", schema.name)),
                        columns: cols,
                        ref_table,
                        ref_columns: ref_cols,
                    });
                }
                Some("check") => {
                    self.pos += 1;
                    self.sym("(")?;
                    let expr = self.check_expr()?;
                    self.sym(")")?;
                    n_check += 1;
                    schema.checks.push(bullfrog_common::CheckConstraint {
                        name: constraint_name
                            .unwrap_or_else(|| format!("{}_check_{n_check}", schema.name)),
                        expr,
                    });
                }
                _ => {
                    if constraint_name.is_some() {
                        return Err(Error::Eval(
                            "CONSTRAINT must introduce UNIQUE/FOREIGN KEY/CHECK".into(),
                        ));
                    }
                    let col = self.ident()?;
                    let dtype = self.data_type()?;
                    let mut nullable = true;
                    if self.eat_word("not") {
                        self.keyword("null")?;
                        nullable = false;
                    } else {
                        let _ = self.eat_word("null");
                    }
                    schema.columns.push(ColumnDef {
                        name: col,
                        dtype,
                        nullable,
                    });
                }
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.sym(")")?;
        // PK columns are NOT NULL.
        let pk = schema.primary_key.clone();
        for c in &mut schema.columns {
            if pk.contains(&c.name) {
                c.nullable = false;
            }
        }
        Ok(schema)
    }

    /// The CHECK mini-language: `col op literal` with AND/OR/NOT.
    fn check_expr(&mut self) -> Result<CheckExpr> {
        let mut e = self.check_unary()?;
        loop {
            if self.eat_word("and") {
                e = CheckExpr::And(Box::new(e), Box::new(self.check_unary()?));
            } else if self.eat_word("or") {
                e = CheckExpr::Or(Box::new(e), Box::new(self.check_unary()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn check_unary(&mut self) -> Result<CheckExpr> {
        if self.eat_word("not") {
            return Ok(CheckExpr::Not(Box::new(self.check_unary()?)));
        }
        if self.eat_sym("(") {
            let e = self.check_expr()?;
            self.sym(")")?;
            return Ok(e);
        }
        let col = self.ident()?;
        if self.eat_word("is") {
            self.keyword("not")?;
            self.keyword("null")?;
            return Ok(CheckExpr::IsNotNull(col));
        }
        let op = match self.next()? {
            Token::Sym("=") => CheckOp::Eq,
            Token::Sym("<>") => CheckOp::Ne,
            Token::Sym("<") => CheckOp::Lt,
            Token::Sym("<=") => CheckOp::Le,
            Token::Sym(">") => CheckOp::Gt,
            Token::Sym(">=") => CheckOp::Ge,
            other => {
                return Err(Error::Eval(format!(
                    "expected comparison in CHECK, found {other:?}"
                )))
            }
        };
        let literal = match self.next()? {
            Token::Int(i) => Value::Int(i),
            Token::Float(f) => Value::Float(f),
            Token::Str(s) => Value::Text(s),
            other => {
                return Err(Error::Eval(format!(
                    "expected literal in CHECK, found {other:?}"
                )))
            }
        };
        Ok(CheckExpr::Cmp {
            column: col,
            op,
            literal,
        })
    }

    pub(crate) fn paren_ident_list(&mut self) -> Result<Vec<String>> {
        self.sym("(")?;
        let mut out = vec![self.ident()?];
        while self.eat_sym(",") {
            out.push(self.ident()?);
        }
        self.sym(")")?;
        Ok(out)
    }

    fn data_type(&mut self) -> Result<DataType> {
        let w = self.ident()?;
        let dt = match w.as_str() {
            "int" | "integer" | "bigint" | "smallint" => DataType::Int,
            "text" | "char" | "varchar" => {
                // Optional length: CHAR(6).
                if self.eat_sym("(") {
                    self.int_literal()?;
                    self.sym(")")?;
                }
                DataType::Text
            }
            "float" | "double" | "real" => DataType::Float,
            "decimal" | "numeric" => {
                if self.eat_sym("(") {
                    self.int_literal()?;
                    if self.eat_sym(",") {
                        self.int_literal()?;
                    }
                    self.sym(")")?;
                }
                DataType::Decimal
            }
            "date" => DataType::Date,
            "timestamp" => DataType::Timestamp,
            "bool" | "boolean" => DataType::Bool,
            other => return Err(Error::Eval(format!("unknown type {other}"))),
        };
        Ok(dt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_with_extract_and_strings() {
        let e = parse_predicate("FID = 'AA101' AND EXTRACT(DAY FROM FLIGHTDATE) = 9").unwrap();
        assert_eq!(
            e.to_string(),
            "((fid = 'AA101') AND (EXTRACT(DAY FROM flightdate) = 9))"
        );
    }

    #[test]
    fn predicate_precedence_and_not() {
        let e = parse_predicate("a = 1 OR b = 2 AND NOT c < 3").unwrap();
        assert_eq!(e.to_string(), "((a = 1) OR ((b = 2) AND (NOT (c < 3))))");
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_predicate("a + b * 2 >= c - 1").unwrap();
        assert_eq!(e.to_string(), "((a + (b * 2)) >= (c - 1))");
    }

    #[test]
    fn is_null_forms() {
        assert_eq!(
            parse_predicate("x IS NULL").unwrap().to_string(),
            "(x IS NULL)"
        );
        assert_eq!(
            parse_predicate("x IS NOT NULL").unwrap().to_string(),
            "(NOT (x IS NULL))"
        );
    }

    #[test]
    fn select_with_join_and_aliases() {
        let spec = parse_select(
            "SELECT F.FLIGHTID AS FID, FLIGHTDATE, PASSENGER_COUNT, \
             (CAPACITY - PASSENGER_COUNT) AS EMPTY_SEATS \
             FROM FLIGHTS F, FLEWON FI WHERE F.FLIGHTID = FI.FLIGHTID",
        )
        .unwrap();
        assert_eq!(spec.inputs.len(), 2);
        assert_eq!(spec.inputs[0].alias, "f");
        assert_eq!(spec.join_conds.len(), 1);
        assert!(spec.filter.is_none());
        assert_eq!(
            spec.output_names(),
            vec!["fid", "flightdate", "passenger_count", "empty_seats"]
        );
    }

    #[test]
    fn select_where_splits_joins_from_filters() {
        let spec =
            parse_select("SELECT a.x FROM t a, u b WHERE a.id = b.id AND a.x > 5 AND b.y = 'z'")
                .unwrap();
        assert_eq!(spec.join_conds.len(), 1);
        let filter = spec.filter.unwrap().to_string();
        assert!(filter.contains("(a.x > 5)"));
        assert!(filter.contains("(b.y = 'z')"));
    }

    #[test]
    fn select_group_by_aggregates() {
        let spec = parse_select(
            "SELECT OL_W_ID, OL_D_ID, OL_O_ID, SUM(OL_AMOUNT) AS OL_TOTAL \
             FROM ORDER_LINE GROUP BY OL_W_ID, OL_D_ID, OL_O_ID",
        )
        .unwrap();
        assert!(spec.is_aggregate());
        assert_eq!(spec.group_key_exprs().len(), 3);
        assert_eq!(spec.output_names()[3], "ol_total");
    }

    #[test]
    fn count_star_and_distinct() {
        let spec =
            parse_select("SELECT COUNT(*) AS n, COUNT(DISTINCT s_i_id) AS d FROM stock").unwrap();
        assert!(spec.is_aggregate());
        match &spec.columns[1] {
            bullfrog_query::OutputColumn::Agg { func, .. } => {
                assert_eq!(*func, AggFunc::CountDistinct)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn group_by_must_match_select_list() {
        assert!(parse_select("SELECT a, SUM(b) AS s FROM t GROUP BY c").is_err());
        assert!(parse_select("SELECT a, SUM(b) AS s FROM t").is_err());
        assert!(parse_select("SELECT a FROM t GROUP BY a").is_err());
    }

    #[test]
    fn create_table_full() {
        let s = parse_create_table(
            "CREATE TABLE flewon (\
               flightid CHAR(6) NOT NULL, \
               flightdate DATE, \
               passenger_count INT, \
               PRIMARY KEY (flightid, flightdate), \
               UNIQUE (passenger_count), \
               FOREIGN KEY (flightid) REFERENCES flights (flightid), \
               CHECK (passenger_count > 0))",
        )
        .unwrap();
        assert_eq!(s.name, "flewon");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.primary_key, vec!["flightid", "flightdate"]);
        assert!(!s.columns[1].nullable, "pk column forced NOT NULL");
        assert_eq!(s.uniques.len(), 1);
        assert_eq!(s.foreign_keys[0].ref_table, "flights");
        assert_eq!(s.checks.len(), 1);
    }

    #[test]
    fn create_table_named_constraints() {
        let s = parse_create_table(
            "CREATE TABLE t (a INT, CONSTRAINT a_pos CHECK (a > 0), \
             CONSTRAINT a_uni UNIQUE (a))",
        )
        .unwrap();
        assert_eq!(s.checks[0].name, "a_pos");
        assert_eq!(s.uniques[0].name, "a_uni");
    }

    #[test]
    fn parse_errors_are_loud() {
        assert!(parse_predicate("a = ").is_err());
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_create_table("CREATE TABLE t (a SOMETYPE)").is_err());
        assert!(parse_predicate("a = 1 extra").is_err());
    }
}
