//! A SQL front-end for BullFrog.
//!
//! The paper's interface is SQL: schema migrations arrive as DDL
//! (`CREATE TABLE ... AS SELECT ...`), and client requests carry `WHERE`
//! clauses that drive the lazy migration scope. This crate parses that
//! dialect into the workspace's structured forms:
//!
//! - [`parse_predicate`] — a `WHERE`-clause expression →
//!   [`Expr`](bullfrog_query::Expr);
//! - [`parse_select`] — `SELECT ... FROM ... [WHERE ...] [GROUP BY ...]`
//!   → [`SelectSpec`](bullfrog_query::SelectSpec) (equi-join conjuncts in
//!   the `WHERE` clause become join conditions, as in the paper's DDL);
//! - [`parse_create_table`] — `CREATE TABLE` with column types, `NOT
//!   NULL`, `PRIMARY KEY`, `UNIQUE`, `FOREIGN KEY ... REFERENCES`, and
//!   `CHECK (col op literal)` → [`TableSchema`](bullfrog_common::TableSchema);
//! - [`parse_migration`] — `CREATE TABLE <name> AS SELECT ...` → a
//!   [`MigrationStatement`](bullfrog_core::MigrationStatement), with the
//!   output schema's column types **inferred** from the input tables in
//!   the catalog (like `CREATE TABLE AS` in a real system).
//!
//! The dialect is deliberately the subset the paper uses — no subqueries,
//! no outer joins, no `OR` of join conditions — and every unsupported
//! construct is a clear parse error rather than a silent misreading.

mod infer;
mod lexer;
mod parser;
mod statement;

pub use infer::{infer_output_schema, qualify_spec};
pub use lexer::MAX_SQL_BYTES;
pub use parser::{parse_create_table, parse_migration, parse_predicate, parse_select};
pub use statement::{
    parse_statement, parse_template, reorder_insert_rows, PreparedTemplate, Statement,
};
