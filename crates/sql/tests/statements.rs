//! Robustness tests for the statement surface: malformed input must be a
//! clean `Err`, never a panic. Network sessions feed untrusted bytes
//! straight into these entry points.

use bullfrog_sql::{parse_create_table, parse_predicate, parse_select, parse_statement};

/// Statements whose every prefix (and single-char corruption) is thrown
/// at the parser.
const CORPUS: &[&str] = &[
    "SELECT f.flightid AS fid, (capacity - passenger_count) AS empty_seats \
     FROM flights f, flewon fi WHERE f.flightid = fi.flightid AND capacity > 100",
    "INSERT INTO accounts (id, owner, balance) VALUES (1, 'alice', 100), (2, 'bob', -5)",
    "UPDATE accounts SET balance = balance + 1, owner = 'x' WHERE id = 42 AND balance >= 0",
    "DELETE FROM accounts WHERE owner = 'O''Hare'",
    "CREATE TABLE t (a INT NOT NULL, b CHAR(6), PRIMARY KEY (a), \
     FOREIGN KEY (b) REFERENCES u (b), CHECK (a > 0))",
    "CREATE TABLE v2 AS (SELECT id, balance FROM accounts WHERE balance > 0) PRIMARY KEY (id)",
    "SELECT owner, SUM(balance) AS total, COUNT(DISTINCT id) AS n FROM accounts GROUP BY owner",
    "FINALIZE MIGRATION DROP OLD",
    "BEGIN; -- comment",
];

#[test]
fn every_prefix_parses_or_errs() {
    for sql in CORPUS {
        for (i, _) in sql.char_indices() {
            // Any prefix must produce Ok or Err — a panic fails the test.
            let _ = parse_statement(&sql[..i]);
        }
        parse_statement(sql).unwrap_or_else(|e| panic!("corpus entry failed: {sql}: {e}"));
    }
}

#[test]
fn single_char_corruptions_never_panic() {
    let junk = ['\'', '(', ')', '?', '\u{00e9}', '\u{2708}', ';', '9'];
    for sql in CORPUS {
        for (i, _) in sql.char_indices().step_by(3) {
            for j in junk {
                let mut s = String::with_capacity(sql.len() + 4);
                s.push_str(&sql[..i]);
                s.push(j);
                s.push_str(&sql[i..]);
                let _ = parse_statement(&s);
                let _ = parse_predicate(&s);
            }
        }
    }
}

#[test]
fn multibyte_identifiers_round_trip() {
    match parse_statement("INSERT INTO caf\u{00e9} VALUES ('\u{00fc}ber \u{2708}')").unwrap() {
        bullfrog_sql::Statement::Insert { table, rows, .. } => {
            assert_eq!(table, "caf\u{00e9}");
            assert_eq!(
                rows[0].0[0],
                bullfrog_common::Value::text("\u{00fc}ber \u{2708}")
            );
        }
        other => panic!("{other:?}"),
    }
    // Truncating inside a multi-byte string literal: clean error.
    assert!(parse_statement("INSERT INTO t VALUES ('\u{2708}").is_err());
}

#[test]
fn oversized_literals_are_errors() {
    assert!(parse_predicate("a = 99999999999999999999999999999").is_err());
    assert!(parse_statement("INSERT INTO t VALUES (123456789012345678901234567890)").is_err());
    // A huge-but-bounded string literal is fine.
    let s = format!("INSERT INTO t VALUES ('{}')", "x".repeat(100_000));
    assert!(parse_statement(&s).is_ok());
    // Anything beyond the input cap is rejected before tokenizing.
    let too_big = format!("SELECT a FROM t WHERE b = '{}'", "x".repeat(2 << 20));
    assert!(parse_select(&too_big).is_err());
}

#[test]
fn deep_nesting_is_an_error_not_a_stack_overflow() {
    // Each paren level descends through both unary_pred and factor, so
    // the usable paren depth is about half the raw guard.
    for depth in [10usize, 40] {
        let sql = format!("{}a = 1{}", "(".repeat(depth), ")".repeat(depth));
        assert!(parse_predicate(&sql).is_ok(), "depth {depth} should parse");
    }
    for depth in [200usize, 10_000] {
        let sql = format!("{}a = 1{}", "(".repeat(depth), ")".repeat(depth));
        assert!(
            parse_predicate(&sql).is_err(),
            "depth {depth} must be rejected"
        );
    }
    // Arithmetic nesting goes through the same guard.
    let arith = format!("a = {}1{}", "(1 + ".repeat(50_000), ")".repeat(50_000));
    assert!(parse_predicate(&arith).is_err());
    // NOT chains recurse through unary_pred.
    let nots = format!("{} a = 1", "NOT".repeat(50_000));
    assert!(parse_predicate(&nots).is_err());
}

#[test]
fn truncated_create_table_paths() {
    let full = "CREATE TABLE t (a INT, CONSTRAINT c CHECK (a > 0), UNIQUE (a))";
    for (i, _) in full.char_indices() {
        let _ = parse_create_table(&full[..i]);
    }
    assert!(parse_create_table("CREATE TABLE t (a SOMETYPE)").is_err());
    assert!(parse_create_table("CREATE TABLE t (CONSTRAINT x a INT)").is_err());
}
