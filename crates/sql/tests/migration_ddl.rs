//! End-to-end: the paper's §2.1 migration DDL, parsed from SQL text and
//! executed through BullFrog.

use std::sync::Arc;

use bullfrog_common::{row, DataType, Row, Value};
use bullfrog_core::{BackgroundConfig, Bullfrog, BullfrogConfig, ClientAccess, MigrationPlan};
use bullfrog_engine::{Database, LockPolicy};
use bullfrog_sql::{parse_create_table, parse_migration, parse_predicate};

#[test]
fn paper_ddl_end_to_end() {
    let db = Arc::new(Database::new());
    db.create_table(
        parse_create_table(
            "CREATE TABLE FLIGHTS (FLIGHTID CHAR(6) NOT NULL, SOURCE CHAR(3), \
             DEST CHAR(3), AIRLINEID CHAR(2), DEPARTURE_TIME TIMESTAMP, \
             ARRIVAL_TIME TIMESTAMP, CAPACITY INT, PRIMARY KEY (FLIGHTID))",
        )
        .unwrap(),
    )
    .unwrap();
    db.create_table(
        parse_create_table(
            "CREATE TABLE FLEWON (FLIGHTID CHAR(6), FLIGHTDATE DATE, \
             PASSENGER_COUNT INT, PRIMARY KEY (FLIGHTID, FLIGHTDATE), \
             CHECK (PASSENGER_COUNT > 0))",
        )
        .unwrap(),
    )
    .unwrap();
    for n in [101i64, 102] {
        let fid = format!("AA{n}");
        db.insert_unlogged(
            "flights",
            row![
                fid.clone(),
                "JFK",
                "SFO",
                "AA",
                Value::Timestamp(0),
                Value::Timestamp(1),
                180
            ],
        )
        .unwrap();
        for day in 0..15 {
            db.insert_unlogged(
                "flewon",
                Row(vec![
                    Value::text(fid.clone()),
                    Value::Date(day),
                    Value::Int(100 + day as i64),
                ]),
            )
            .unwrap();
        }
    }

    // The migration DDL, verbatim modulo formatting.
    let stmt = parse_migration(
        &db,
        "CREATE TABLE FLEWONINFO AS (
           SELECT F.FLIGHTID AS FID, FLIGHTDATE, PASSENGER_COUNT,
                  (CAPACITY - PASSENGER_COUNT) AS EMPTY_SEATS,
                  DEPARTURE_TIME AS EXPECTED_DEPARTURE_TIME,
                  NULL AS ACTUAL_DEPARTURE_TIME,
                  ARRIVAL_TIME AS EXPECTED_ARRIVAL_TIME,
                  NULL AS ACTUAL_ARRIVAL_TIME
           FROM FLIGHTS F, FLEWON FI
           WHERE F.FLIGHTID = FI.FLIGHTID)",
        &["fid", "flightdate"],
        &[
            ("actual_departure_time", DataType::Timestamp),
            ("actual_arrival_time", DataType::Timestamp),
        ],
    )
    .unwrap();
    assert_eq!(stmt.output.name, "flewoninfo");
    assert_eq!(stmt.output.arity(), 8);
    assert_eq!(stmt.output.primary_key, vec!["fid", "flightdate"]);

    let bf = Bullfrog::with_config(
        Arc::clone(&db),
        BullfrogConfig {
            // Deterministic test: no background threads; completion is
            // driven explicitly below.
            background: BackgroundConfig {
                enabled: false,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    bf.submit_migration(MigrationPlan::new("flewoninfo").with_statement(stmt))
        .unwrap();

    // The paper's client WHERE clause, parsed from text.
    let pred = parse_predicate("FID = 'AA101' AND EXTRACT(DAY FROM FLIGHTDATE) = 9").unwrap();
    let mut txn = db.begin();
    let rows = bf
        .select(&mut txn, "flewoninfo", Some(&pred), LockPolicy::Shared)
        .unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1[0], Value::text("AA101"));
    assert_eq!(db.table("flewoninfo").unwrap().live_count(), 1);

    // Explicit full sweep (the background threads' job).
    bf.ensure_migrated("flewoninfo", None).unwrap();
    assert_eq!(db.table("flewoninfo").unwrap().live_count(), 30);
}
