//! Property tests for the histogram: no lost samples under concurrent
//! recording, and snapshot merge that is associative, commutative, and
//! equal to single-recorder totals regardless of how samples are
//! sharded across histograms or threads.

use bullfrog_obs::{bucket_of, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Folds a list of snapshots left-to-right.
fn merge_all(snaps: &[HistogramSnapshot]) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::default();
    for s in snaps {
        out.merge(s);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concurrent recorders on one histogram lose nothing: the snapshot
    /// count, sum, and per-bucket totals equal the sequential ground
    /// truth of the same sample multiset.
    #[test]
    fn concurrent_recording_loses_no_samples(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..200), 1..8)
    ) {
        let h = Histogram::new();
        let href = &h;
        std::thread::scope(|s| {
            for samples in &per_thread {
                s.spawn(move || {
                    for &v in samples {
                        href.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        let all: Vec<u64> = per_thread.iter().flatten().copied().collect();
        prop_assert_eq!(snap.count(), all.len() as u64);
        prop_assert_eq!(snap.sum, all.iter().sum::<u64>());
        let mut want = vec![0u64; bullfrog_obs::NUM_BUCKETS];
        for &v in &all {
            want[bucket_of(v)] += 1;
        }
        prop_assert_eq!(&snap.buckets, &want);
    }

    /// Merge is associative and commutative, and sharding a sample set
    /// across any number of histograms then merging equals recording
    /// everything into a single one.
    #[test]
    fn merge_is_associative_commutative_and_shard_invariant(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..u64::MAX, 0..100), 1..6),
        perm_seed in 0usize..720
    ) {
        let hists: Vec<Histogram> = shards.iter().map(|_| Histogram::new()).collect();
        let single = Histogram::new();
        for (h, samples) in hists.iter().zip(&shards) {
            for &v in samples {
                h.record(v);
                single.record(v);
            }
        }
        let snaps: Vec<HistogramSnapshot> = hists.iter().map(|h| h.snapshot()).collect();

        // Shard-merge == single-recorder.
        let merged = merge_all(&snaps);
        prop_assert_eq!(&merged, &single.snapshot());

        // Commutative: any permutation folds to the same snapshot.
        let mut permuted = snaps.clone();
        let mut seed = perm_seed;
        for i in (1..permuted.len()).rev() {
            permuted.swap(i, seed % (i + 1));
            seed /= i + 1;
        }
        prop_assert_eq!(&merge_all(&permuted), &merged);

        // Associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) at every split point.
        for split in 0..snaps.len() {
            let mut left = merge_all(&snaps[..split]);
            let right = merge_all(&snaps[split..]);
            left.merge(&right);
            prop_assert_eq!(&left, &merged, "split at {}", split);
        }
    }

    /// The sparse wire form round-trips every snapshot exactly.
    #[test]
    fn sparse_wire_form_round_trips(
        samples in proptest::collection::vec(0u64..u64::MAX, 0..300)
    ) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(
            HistogramSnapshot::from_sparse(snap.sum, &snap.sparse()),
            snap
        );
    }
}
