//! The process-wide sampling switch (its own test binary: it mutates
//! global state, so it must not run beside tests that record samples).

use bullfrog_obs::{set_enabled, Counter, Histogram, Registry};

#[test]
fn disable_gates_sampling_but_not_counters() {
    let c = Counter::new();
    let h = Histogram::new();
    let reg = Registry::new();
    set_enabled(false);
    c.inc();
    h.record(100);
    reg.tracer().record("gated", 0, 1, 2);
    set_enabled(true);
    assert_eq!(c.get(), 1, "counters ignore the sampling switch");
    assert_eq!(h.snapshot().count(), 0, "histograms honour it");
    assert_eq!(reg.tracer().events().0.len(), 0, "spans honour it");
    h.record(100);
    assert_eq!(h.snapshot().count(), 1);
}
