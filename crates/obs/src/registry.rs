//! The per-instance metric registry and its snapshot.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::{Histogram, HistogramSnapshot};
use crate::tracer::{SpanSnapshot, Tracer};
use crate::{Counter, Gauge};

/// One database instance's metrics: named counters, gauges, and
/// histograms, plus the span [`Tracer`]. Handles are `Arc`s — hot paths
/// look a metric up once and keep the handle; the registry lock is
/// only taken at registration and snapshot time.
///
/// Names are `&'static str`. Dynamic names (per-shard, per-peer) go
/// through [`intern`](Registry::intern), which leaks each distinct name
/// once — bounded by the metric namespace, and what lets `STATUS` serve
/// every key without per-request string allocation.
pub struct Registry {
    start: Instant,
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
    interned: Mutex<BTreeSet<&'static str>>,
    tracer: Tracer,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry whose clock starts now.
    pub fn new() -> Self {
        let start = Instant::now();
        Registry {
            start,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            interned: Mutex::new(BTreeSet::new()),
            tracer: Tracer::new(start),
        }
    }

    /// Microseconds since the registry was created (the clock every
    /// span timestamp uses).
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Returns `name` as a `&'static str`, leaking each distinct name
    /// at most once per registry.
    pub fn intern(&self, name: &str) -> &'static str {
        let mut set = self.interned.lock().unwrap();
        if let Some(s) = set.get(name) {
            return s;
        }
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        set.insert(leaked);
        leaked
    }

    /// The counter registered as `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge registered as `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram registered as `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(
            self.hists
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Every registered metric plus the retained spans, as one
    /// mergeable snapshot — the `METRICS` wire payload.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect();
        let histograms = self
            .hists
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .collect();
        let (spans, spans_dropped) = self.tracer.events();
        MetricsSnapshot {
            uptime_us: self.now_us(),
            counters,
            gauges,
            histograms,
            spans,
            spans_dropped,
        }
    }
}

/// A point-in-time view of a whole [`Registry`] — what the BFNET1
/// `METRICS` opcode returns. All four sections are sorted by name
/// (snapshot order is registry iteration order, which is a `BTreeMap`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Microseconds the registry has been alive.
    pub uptime_us: u64,
    /// Counter totals by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained span events, oldest first.
    pub spans: Vec<SpanSnapshot>,
    /// Spans that scrolled off the ring before this snapshot.
    pub spans_dropped: u64,
}

impl MetricsSnapshot {
    /// The counter total named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// The gauge level named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The histogram snapshot named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// Spans named `name`, oldest first.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanSnapshot> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Folds `other` into `self`: counters and histogram buckets add,
    /// gauges keep the element-wise maximum (levels from different
    /// nodes cannot meaningfully sum), spans concatenate, and uptime
    /// keeps the maximum. Used by the cluster aggregator.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.uptime_us = self.uptime_us.max(other.uptime_us);
        self.spans_dropped += other.spans_dropped;
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(k, _)| k == name) {
                Some((_, cur)) => *cur += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(k, _)| k == name) {
                Some((_, cur)) => *cur = (*cur).max(*v),
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(k, _)| k == name) {
                Some((_, cur)) => cur.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self.spans.extend(other.spans.iter().cloned());
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshot_sees_them() {
        let reg = Registry::new();
        let a = reg.counter("x.total");
        let b = reg.counter("x.total");
        a.add(2);
        b.inc();
        reg.gauge("x.level").set(-4);
        reg.histogram("x.lat_us").record(100);
        reg.tracer().record("x.span", 7, 1, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x.total"), Some(3));
        assert_eq!(snap.gauge("x.level"), Some(-4));
        assert_eq!(snap.histogram("x.lat_us").unwrap().count(), 1);
        assert_eq!(snap.spans_named("x.span").count(), 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn intern_is_stable_and_deduplicated() {
        let reg = Registry::new();
        let a = reg.intern(&format!("wal.shard{}.flushes", 0));
        let b = reg.intern("wal.shard0.flushes");
        assert!(std::ptr::eq(a, b), "same allocation for the same name");
    }

    #[test]
    fn snapshot_merge_aggregates() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter("c").add(5);
        r2.counter("c").add(7);
        r2.counter("only2").add(1);
        r1.gauge("g").set(3);
        r2.gauge("g").set(9);
        r1.histogram("h").record(10);
        r2.histogram("h").record(1000);
        let mut m = r1.snapshot();
        m.merge(&r2.snapshot());
        assert_eq!(m.counter("c"), Some(12));
        assert_eq!(m.counter("only2"), Some(1));
        assert_eq!(m.gauge("g"), Some(9));
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 1010);
    }
}
