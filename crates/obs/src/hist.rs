//! Fixed log-bucket latency histograms with mergeable snapshots.
//!
//! ## Bucket layout
//!
//! Values (typically microseconds) map to one of [`NUM_BUCKETS`] fixed
//! buckets: values below 4 get exact unit buckets, and every power of
//! two above that is split into 4 sub-buckets keyed by the two bits
//! under the most significant bit. Bucket width therefore grows
//! geometrically with ≤ 25 % relative error — enough for p50/p99
//! reporting across nine orders of magnitude — while the layout stays
//! *fixed*: two histograms always share bucket boundaries, so merging
//! is element-wise addition (associative and commutative by
//! construction) with no rebinning.
//!
//! ## Recording
//!
//! `record` is two relaxed `fetch_add`s (bucket + sum) on one of
//! [`RECORD_SHARDS`] per-thread-striped bucket arrays — no locks, no
//! CAS loops, and threads that stay on their stripe never contend.
//! `snapshot` folds the stripes with the same merge the wire layer and
//! the cluster aggregator use, which is what the proptests pin down:
//! shard-merge must equal single-recorder.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sub-bucket bits per power of two.
const SUB_BITS: u32 = 2;
/// Sub-buckets per power of two (4).
const SUB: usize = 1 << SUB_BITS;
/// Total buckets. Index 251 is the last reachable bucket
/// (`bucket_of(u64::MAX)`); the spare tail keeps the arithmetic simple.
pub const NUM_BUCKETS: usize = 256;
/// Recording stripes. Threads hash onto a stripe at first use; eight
/// stripes de-contend the common server shapes (worker pool + flushers)
/// without bloating snapshots.
const RECORD_SHARDS: usize = 8;

/// The bucket index for `v`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let o = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (o - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (o - SUB_BITS + 1) as usize * SUB + sub
}

/// The inclusive lower bound of bucket `i` (the inverse of
/// [`bucket_of`]: `bucket_of(bucket_low(i)) == i` for reachable `i`).
#[inline]
pub fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let g = (i / SUB) as u32; // the bucket's octave minus one
    let sub = (i % SUB) as u64;
    (SUB as u64 + sub) << (g - 1)
}

/// The last reachable bucket index (`bucket_of(u64::MAX)`).
const TOP_BUCKET: usize = (63 - SUB_BITS as usize + 1) * SUB + (SUB - 1);

/// The exclusive upper bound of bucket `i` (saturating for the top
/// bucket, whose `bucket_low(i + 1)` would overflow u64).
#[inline]
fn bucket_high(i: usize) -> u64 {
    if i >= TOP_BUCKET {
        u64::MAX
    } else {
        bucket_low(i + 1)
    }
}

/// One recording stripe: a full bucket array plus the running sum.
struct Stripe {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Which stripe this thread records on. Assigned round-robin at first
/// use so pool workers spread out even when thread ids cluster.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % RECORD_SHARDS;
    }
    IDX.with(|i| *i)
}

/// A lock-free log-bucket histogram. See the module docs for the
/// layout; construction is [`Registry::histogram`](crate::Registry) in
/// normal use.
pub struct Histogram {
    stripes: Box<[Stripe]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, unregistered histogram.
    pub fn new() -> Self {
        Histogram {
            stripes: (0..RECORD_SHARDS).map(|_| Stripe::new()).collect(),
        }
    }

    /// Records one sample. Two relaxed `fetch_add`s when sampling is
    /// enabled; a load + branch when it is not (see
    /// [`set_enabled`](crate::set_enabled)).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let s = &self.stripes[stripe_index()];
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds — the unit every latency
    /// histogram in the system uses.
    #[inline]
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Folds the stripes into one mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for s in self.stripes.iter() {
            for (i, b) in s.buckets.iter().enumerate() {
                out.buckets[i] += b.load(Ordering::Relaxed);
            }
            // Wrapping, like the atomic adds that feed it: a sum that
            // laps u64 misreports the mean but must never panic.
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
        }
        out
    }
}

/// A point-in-time view of a [`Histogram`]: the full fixed bucket array
/// plus the sample sum. Merging is element-wise addition, so any
/// grouping of recorders (stripes, nodes, seconds) folds to the same
/// totals in any order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sum of every recorded sample.
    pub sum: u64,
    /// Per-bucket sample counts (`NUM_BUCKETS` entries; see
    /// [`bucket_low`] for boundaries).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            sum: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Adds `other` into `self` element-wise (sums wrap, matching the
    /// recorder's atomic adds).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.sum = self.sum.wrapping_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) as the midpoint of
    /// the bucket holding that rank — exact for values below 4, within
    /// the ≤ 25 % bucket width above. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let low = bucket_low(i);
                return low + (bucket_high(i) - low) / 2;
            }
        }
        bucket_low(NUM_BUCKETS - 1)
    }

    /// The non-empty buckets as `(index, count)` pairs — the wire form.
    pub fn sparse(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuilds a snapshot from its wire form. Out-of-range indices are
    /// ignored (a newer peer with a larger layout, not an error).
    pub fn from_sparse(sum: u64, pairs: &[(u32, u64)]) -> Self {
        let mut out = HistogramSnapshot {
            sum,
            ..Default::default()
        };
        for &(i, c) in pairs {
            if let Some(b) = out.buckets.get_mut(i as usize) {
                *b += c;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_and_low_agree() {
        // Every reachable bucket's lower bound maps back to it.
        for i in 0..=TOP_BUCKET {
            assert_eq!(bucket_of(bucket_low(i)), i, "bucket {i}");
        }
        // Exhaustive small range plus boundaries: monotone, total.
        let mut prev = 0;
        for v in 0..4096u64 {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket_of must be monotone at {v}");
            assert!(bucket_low(b) <= v && v < bucket_high(b), "v={v} b={b}");
            prev = b;
        }
        assert_eq!(bucket_of(u64::MAX), TOP_BUCKET);
        assert!(TOP_BUCKET < NUM_BUCKETS);
    }

    #[test]
    fn quantiles_track_known_distributions() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        // Bucket width at ~500 is 128, at ~990 is 256: generous bounds.
        assert!((350..=700).contains(&p50), "p50={p50}");
        assert!((800..=1400).contains(&p99), "p99={p99}");
        assert!(s.quantile(0.0) >= 1);
        assert!(s.quantile(1.0) >= p99);
    }

    #[test]
    fn sparse_round_trips() {
        let h = Histogram::new();
        for v in [0, 1, 7, 100, 5000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(HistogramSnapshot::from_sparse(s.sum, &s.sparse()), s);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);
    }
}
