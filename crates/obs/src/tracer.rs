//! Ring-buffered span events for the migration lifecycle.
//!
//! Spans are *rare* relative to statements — per-granule copies, the
//! flip quiesce, cluster exchange legs, finalize — so the ring trades a
//! short mutex hold for exact ordering and bounded memory: the newest
//! [`RING_CAPACITY`] events win, and a dropped-event counter records
//! what scrolled off. Timestamps are microseconds on the owning
//! [`Registry`](crate::Registry)'s monotonic clock, so span windows and
//! histogram samples line up in one timeline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Events retained before the oldest scroll off.
const RING_CAPACITY: usize = 4096;

/// One completed span in wire-friendly form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// What happened (`migrate.granule`, `migrate.flip`, …).
    pub name: String,
    /// Free per-span payload: granule index, row count, shard id.
    pub detail: u64,
    /// Start, microseconds on the registry clock.
    pub start_us: u64,
    /// End, microseconds on the registry clock.
    pub end_us: u64,
}

/// Internal ring entry — the name stays `&'static` until snapshot time.
#[derive(Clone, Copy)]
struct Event {
    name: &'static str,
    detail: u64,
    start_us: u64,
    end_us: u64,
}

/// The span ring. One per [`Registry`](crate::Registry).
pub struct Tracer {
    start: Instant,
    ring: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl Tracer {
    pub(crate) fn new(start: Instant) -> Self {
        Tracer {
            start,
            ring: Mutex::new(VecDeque::with_capacity(RING_CAPACITY)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since the registry was created.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Appends one completed span (no-op while sampling is disabled).
    pub fn record(&self, name: &'static str, detail: u64, start_us: u64, end_us: u64) {
        if !crate::enabled() {
            return;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == RING_CAPACITY {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Event {
            name,
            detail,
            start_us,
            end_us,
        });
    }

    /// Opens a span that records itself when finished or dropped.
    pub fn span(&self, name: &'static str, detail: u64) -> Span<'_> {
        Span {
            tracer: self,
            name,
            detail,
            start_us: self.now_us(),
            done: false,
        }
    }

    /// The retained events (oldest first) and how many were dropped.
    pub fn events(&self) -> (Vec<SpanSnapshot>, u64) {
        let ring = self.ring.lock().unwrap();
        let events = ring
            .iter()
            .map(|e| SpanSnapshot {
                name: e.name.to_string(),
                detail: e.detail,
                start_us: e.start_us,
                end_us: e.end_us,
            })
            .collect();
        (events, self.dropped.load(Ordering::Relaxed))
    }
}

/// An open span; records on [`finish`](Span::finish) or drop.
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    detail: u64,
    start_us: u64,
    done: bool,
}

impl Span<'_> {
    /// Updates the free-form payload before the span closes.
    pub fn set_detail(&mut self, detail: u64) {
        self.detail = detail;
    }

    /// Closes the span now and returns its duration in microseconds.
    pub fn finish(mut self) -> u64 {
        let end = self.tracer.now_us();
        self.tracer
            .record(self.name, self.detail, self.start_us, end);
        self.done = true;
        end.saturating_sub(self.start_us)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.done {
            let end = self.tracer.now_us();
            self.tracer
                .record(self.name, self.detail, self.start_us, end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_order_and_ring_bounds() {
        let t = Tracer::new(Instant::now());
        t.record("a", 1, 0, 10);
        t.span("b", 2).finish();
        {
            let _guard = t.span("c", 3); // records on drop
        }
        let (events, dropped) = t.events();
        assert_eq!(dropped, 0);
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
        assert!(events.iter().all(|e| e.end_us >= e.start_us));

        for i in 0..(RING_CAPACITY as u64 + 10) {
            t.record("spam", i, i, i);
        }
        let (events, dropped) = t.events();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(dropped, 13, "3 originals + 10 overflow scrolled off");
    }
}
