//! # bullfrog-obs — unified observability for every subsystem
//!
//! BullFrog's claim is about *latency during the lazy-migration window*:
//! the paper's headline figures are tail-latency timelines across the
//! flip, drain, and finalize phases. Flat counters cannot produce those
//! figures, so this crate adds the three primitives every layer shares:
//!
//! - **[`Counter`] / [`Gauge`]** — plain relaxed atomics, registered by
//!   `&'static` name so `STATUS` serves keys without per-request string
//!   allocation.
//! - **[`Histogram`]** — a fixed log-bucket latency histogram (4
//!   sub-buckets per power of two, ≤ 25 % relative bucket width) whose
//!   recording path is two relaxed `fetch_add`s on a thread-sharded
//!   bucket array: a few nanoseconds, safe on the WAL-append and
//!   statement hot paths. Snapshots are plain bucket vectors that
//!   [merge](HistogramSnapshot::merge) associatively and commutatively,
//!   so per-shard, per-node, and per-second views all aggregate with the
//!   same element-wise add.
//! - **[`Tracer`]** — a bounded ring of start/end-stamped span events
//!   for the migration lifecycle (per-granule copy, flip quiesce,
//!   exchange, finalize). Span rates are migration-bounded, so the ring
//!   trades a short mutex hold for exact ordering; the metrics hot path
//!   never touches it.
//!
//! A [`Registry`] ties the three together per database instance (tests
//! and `loadgen` run several servers in one process, so there is no
//! process-global registry) and produces a [`MetricsSnapshot`] — the
//! payload of the BFNET1 `METRICS` opcode.
//!
//! [`set_enabled(false)`](set_enabled) turns histogram recording and
//! span capture into a single relaxed load + branch, which is how
//! `micro_net` demonstrates the instrumentation overhead. Counters and
//! gauges ignore the switch: `STATUS` totals must stay exact.

mod hist;
mod registry;
mod tracer;

pub use hist::{bucket_low, bucket_of, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{MetricsSnapshot, Registry};
pub use tracer::{Span, SpanSnapshot, Tracer};

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Process-wide switch for *sampling* instrumentation (histograms and
/// tracer spans). Counters and gauges stay live regardless — they back
/// `STATUS` totals, which must not change when sampling is off.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables histogram recording and span capture
/// process-wide. Used by benches to measure instrumentation overhead.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether sampling instrumentation is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing event count. One relaxed `fetch_add` to
/// bump; always live (see [`set_enabled`]).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh, unregistered counter (use [`Registry::counter`] for a
    /// named one).
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time level (lag, queue depth, remaining lease). Signed so
/// it can also carry deltas.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh, unregistered gauge (use [`Registry::gauge`] for a named
    /// one).
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Replaces the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `d`.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }
}
